//! Pole-zero structure and stability margins of the 741 reduced models.

use awesym_awe::AweAnalysis;
use awesym_circuit::generators::opamp741;

#[test]
fn opamp_rom_zero_structure() {
    let amp = opamp741();
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).unwrap();
    let rom = awe.rom_stable(3).unwrap();
    let zeros = rom.zeros().unwrap();
    // An order-n pole-residue model has at most n−1 finite zeros.
    assert!(zeros.len() < rom.order());
    // The reduced model's zeros must not sit on top of its poles
    // (that would mean a wasted order).
    for z in &zeros {
        for p in rom.poles() {
            assert!(
                (*z - *p).abs() > 1e-3 * p.abs(),
                "zero {z} cancels pole {p}"
            );
        }
    }
}

#[test]
fn opamp_margins_are_consistent() {
    let amp = opamp741();
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).unwrap();
    let rom = awe.rom_stable(2).unwrap();
    let pm = rom.phase_margin_deg().unwrap();
    // The compensated 741 has a healthy phase margin.
    assert!(pm > 30.0 && pm < 120.0, "pm {pm}");
    // With a 2-pole model the unwrapped phase approaches −180° only
    // asymptotically, so the gain margin is unbounded (None) or large.
    if let Some(gm) = rom.gain_margin_db() {
        assert!(gm > 0.0, "gm {gm}");
    }
    // Bode table is monotone-decreasing in magnitude past the dominant pole.
    let wd = rom.dominant_pole().unwrap().abs();
    let mags: Vec<f64> = rom
        .bode(&[10.0 * wd, 100.0 * wd, 1000.0 * wd])
        .iter()
        .map(|(m, _)| *m)
        .collect();
    assert!(mags[0] > mags[1] && mags[1] > mags[2], "{mags:?}");
}

#[test]
fn shifted_rom_matches_frequency_response_near_hop() {
    // A shifted expansion is most accurate near its expansion point; check
    // |H| agreement against the direct AC analysis there.
    let amp = opamp741();
    let mna = awesym_mna::Mna::build(&amp.circuit).unwrap();
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).unwrap();
    let rom0 = awe.rom_stable(2).unwrap();
    let wu = rom0.unity_gain_omega().unwrap();
    // Hop to a *positive* real-axis point of crossover magnitude: the
    // circuit has no right-half-plane natural frequencies, so G + s₀C
    // stays comfortably nonsingular there.
    let rom_hop = awe.rom_shifted(2, wu).unwrap();
    let truth = mna.ac_transfer(amp.input, amp.output, &[wu]).unwrap()[0];
    let h_hop = rom_hop.eval_jw(wu);
    let err_hop = (h_hop - truth).abs() / truth.abs();
    // The shifted model must be accurate in its own neighborhood (a few
    // percent at the crossover). Far from the hop — e.g. at DC, four
    // decades below — a single low-order hop is *not* expected to be
    // accurate; multipoint AWE merges several expansions for that. The
    // "hop beats the Maclaurin expansion at far poles" property is
    // asserted separately in the analysis unit tests.
    assert!(err_hop < 0.05, "crossover error {err_hop}");
    let _ = rom0;
}
