//! The linearized 741 through AWE: sanity of DC gain, dominant pole,
//! unity-gain frequency and phase margin, and the AWEsensitivity-based
//! symbol selection the paper relies on.

use awesym_awe::sensitivity::SensitivityAnalysis;
use awesym_awe::AweAnalysis;
use awesym_circuit::generators::opamp741;

#[test]
fn opamp_dc_gain_and_bandwidth_are_plausible() {
    let amp = opamp741();
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).expect("analysis");
    let rom = awe.rom_stable(2).expect("rom");
    let a0 = rom.dc_gain().abs();
    // A 741 has tens of thousands of V/V; our linearization must land in
    // the high-gain regime (>1e3) for the experiments to be meaningful.
    assert!(a0 > 1e3, "dc gain {a0}");
    // Dominant (Miller) pole: a few Hz to a few hundred Hz.
    let p1 = rom.dominant_pole().expect("pole").abs() / (2.0 * std::f64::consts::PI);
    assert!(p1 > 0.05 && p1 < 1e4, "dominant pole {p1} Hz");
    // Unity-gain frequency in the hundreds of kHz to tens of MHz.
    let fu = rom.unity_gain_omega().expect("crossover") / (2.0 * std::f64::consts::PI);
    assert!(fu > 5e4 && fu < 5e7, "unity gain {fu} Hz");
    let pm = rom.phase_margin_deg().expect("pm");
    assert!(pm > 0.0 && pm < 180.0, "phase margin {pm}");
}

#[test]
fn compensation_cap_ranks_among_most_sensitive_capacitors() {
    let amp = opamp741();
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).expect("analysis");
    let sens = SensitivityAnalysis::new(awe.engine(), 2).expect("sens");
    let ranked = sens.rank_elements(&amp.circuit);
    assert!(!ranked.is_empty());
    // c_comp must appear in the top tier of capacitor sensitivities — it
    // sets the dominant pole, which is why the paper selects it as symbol.
    let caps: Vec<&str> = ranked
        .iter()
        .filter(|(id, _)| amp.circuit.element(*id).kind == awesym_circuit::ElementKind::Capacitor)
        .map(|(id, _)| amp.circuit.element(*id).name.as_str())
        .collect();
    let pos = caps.iter().position(|n| *n == "c_comp").expect("ranked");
    assert!(pos < 5, "c_comp rank among caps: {pos} ({caps:?})");
}
