//! Sampled timing profile of the two numeric AWE kernels: the moment
//! recursion ([`crate::MomentEngine::compute`]) and the Padé solve
//! ([`crate::pade_rom`]).
//!
//! Same design as `awesym_symbolic::profile`: always compiled, no
//! feature gate, one relaxed atomic increment per call in the steady
//! state, and one call in [`SAMPLE_EVERY`] pays for two clock reads.
//! These are the stages behind the serving layer's `rom`/`step`/`delays`
//! outputs, so the serve and tape benches drain this profile into their
//! `results/BENCH_*.json` reports.

use awesym_obs::{Counter, Sampler};
use std::time::Duration;

/// One profiled call per this many kernel calls.
pub const SAMPLE_EVERY: u64 = 16;

pub(crate) static MOMENTS_SAMPLER: Sampler = Sampler::new(SAMPLE_EVERY);
pub(crate) static PADE_SAMPLER: Sampler = Sampler::new(SAMPLE_EVERY);

static MOMENTS_CALLS: Counter = Counter::new();
static MOMENTS_NANOS: Counter = Counter::new();
static PADE_CALLS: Counter = Counter::new();
static PADE_NANOS: Counter = Counter::new();

pub(crate) fn record_moments(elapsed: Duration) {
    MOMENTS_CALLS.inc();
    MOMENTS_NANOS.add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

pub(crate) fn record_pade(elapsed: Duration) {
    PADE_CALLS.inc();
    PADE_NANOS.add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// Point-in-time view of the sampled kernel profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AweProfile {
    /// Sampled moment-recursion calls.
    pub moments_calls: u64,
    /// Wall-clock nanoseconds across the sampled moment calls.
    pub moments_nanos: u64,
    /// Sampled Padé-solve calls.
    pub pade_calls: u64,
    /// Wall-clock nanoseconds across the sampled Padé calls.
    pub pade_nanos: u64,
}

impl AweProfile {
    /// Mean nanoseconds per sampled moment-recursion call.
    pub fn moments_mean_ns(&self) -> f64 {
        if self.moments_calls == 0 {
            0.0
        } else {
            self.moments_nanos as f64 / self.moments_calls as f64
        }
    }

    /// Mean nanoseconds per sampled Padé call.
    pub fn pade_mean_ns(&self) -> f64 {
        if self.pade_calls == 0 {
            0.0
        } else {
            self.pade_nanos as f64 / self.pade_calls as f64
        }
    }
}

/// Reads the global profile.
pub fn snapshot() -> AweProfile {
    AweProfile {
        moments_calls: MOMENTS_CALLS.get(),
        moments_nanos: MOMENTS_NANOS.get(),
        pade_calls: PADE_CALLS.get(),
        pade_nanos: PADE_NANOS.get(),
    }
}

/// Zeroes the global profile (bench phase boundaries).
pub fn reset() {
    MOMENTS_CALLS.take();
    MOMENTS_NANOS.take();
    PADE_CALLS.take();
    PADE_NANOS.take();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_means_follow() {
        let before = snapshot();
        record_moments(Duration::from_nanos(100));
        record_pade(Duration::from_nanos(300));
        let after = snapshot();
        assert_eq!(after.moments_calls - before.moments_calls, 1);
        assert!(after.moments_nanos - before.moments_nanos >= 100);
        assert_eq!(after.pade_calls - before.pade_calls, 1);
        assert!(after.pade_nanos - before.pade_nanos >= 300);
        assert!(after.moments_mean_ns() > 0.0);
        assert!(after.pade_mean_ns() > 0.0);
    }

    #[test]
    fn sampler_admits_pade_calls() {
        let before = snapshot();
        for _ in 0..2 * SAMPLE_EVERY {
            crate::pade_rom(&[1.0, -1.0, 1.0, -1.0], 1, true).unwrap();
        }
        let after = snapshot();
        assert!(after.pade_calls >= before.pade_calls + 2);
    }
}
