//! High-level AWE driver: circuit in, reduced-order model out.

use crate::{pade_rom, AweError, MomentEngine, Moments, Rom};
use awesym_circuit::{Circuit, ElementId, Node};
use awesym_mna::Mna;

/// One-stop AWE analysis of a circuit: builds the MNA system, factors `G`,
/// and produces reduced-order models of any requested order.
///
/// # Example
///
/// ```
/// use awesym_circuit::generators::rc_ladder;
/// use awesym_awe::AweAnalysis;
///
/// # fn main() -> Result<(), awesym_awe::AweError> {
/// let w = rc_ladder(30, 20.0, 0.5e-12);
/// let awe = AweAnalysis::new(&w.circuit, w.input, w.output)?;
/// let rom = awe.rom_stable(4)?;
/// assert!(rom.is_stable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AweAnalysis {
    engine: MomentEngine,
}

impl AweAnalysis {
    /// Builds the analysis for a circuit, input source, and output node.
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Mna`] for formulation failures (singular `G`,
    /// bad input reference).
    pub fn new(circuit: &Circuit, input: ElementId, output: Node) -> Result<Self, AweError> {
        let mna = Mna::build(circuit)?;
        let engine = MomentEngine::new(mna, input, output)?;
        Ok(AweAnalysis { engine })
    }

    /// Builds the analysis for an arbitrary probe — e.g. the current
    /// through a voltage source (transfer admittance) or a differential
    /// voltage.
    ///
    /// # Errors
    ///
    /// As [`AweAnalysis::new`], plus a bad-reference error for branch
    /// probes on elements without explicit currents.
    pub fn new_probe(
        circuit: &Circuit,
        input: ElementId,
        probe: &awesym_mna::Probe,
    ) -> Result<Self, AweError> {
        let mna = Mna::build(circuit)?;
        let engine = MomentEngine::with_probe(mna, input, probe)?;
        Ok(AweAnalysis { engine })
    }

    /// Builds the analysis from an existing MNA system.
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Mna`] when `G` is singular or `input` is not an
    /// independent source.
    pub fn from_mna(mna: Mna, input: ElementId, output: Node) -> Result<Self, AweError> {
        Ok(AweAnalysis {
            engine: MomentEngine::new(mna, input, output)?,
        })
    }

    /// Access to the moment engine (for sensitivity analysis).
    pub fn engine(&self) -> &MomentEngine {
        &self.engine
    }

    /// Computes the first `count` moments.
    ///
    /// # Errors
    ///
    /// See [`MomentEngine::compute`].
    pub fn moments(&self, count: usize) -> Result<Moments, AweError> {
        self.engine.compute(count)
    }

    /// A `q`-pole reduced-order model (2q moments are computed).
    ///
    /// # Errors
    ///
    /// See [`pade_rom`].
    pub fn rom(&self, q: usize) -> Result<Rom, AweError> {
        let m = self.engine.compute(2 * q)?;
        pade_rom(&m.m, q, true)
    }

    /// A `q`-pole model from a *shifted* expansion about `s₀` (frequency
    /// hop): the series is matched about `s = s₀` and the resulting poles
    /// are mapped back to the `s` plane. Accuracy concentrates near `s₀`,
    /// which resolves far-from-DC poles the Maclaurin series misses.
    ///
    /// # Errors
    ///
    /// See [`MomentEngine::compute_shifted`] and [`pade_rom`].
    pub fn rom_shifted(&self, q: usize, s0: f64) -> Result<Rom, AweError> {
        let m = self.engine.compute_shifted(s0, 2 * q)?;
        let local = pade_rom(&m.m, q, true)?;
        // Shift poles back; residues are invariant under the substitution
        // s ← s − s₀.
        let poles: Vec<_> = local.poles().iter().map(|&p| p + s0).collect();
        let residues = local.residues().to_vec();
        // Recompute H(0) so dc_gain() remains meaningful.
        let h0: f64 = poles
            .iter()
            .zip(residues.iter())
            .map(|(&p, &k)| (-(k / p)).re)
            .sum();
        Ok(Rom::from_parts(
            poles,
            residues,
            vec![h0],
            local.time_scale(),
        ))
    }

    /// A reduced-order model of order at most `q_max` that is guaranteed
    /// stable: the order is lowered (and RHP poles are discarded with a
    /// residue refit) until all poles lie in the left half plane.
    ///
    /// # Errors
    ///
    /// Returns the last Padé failure when no stable model of any order
    /// down to 1 can be built.
    pub fn rom_stable(&self, q_max: usize) -> Result<Rom, AweError> {
        let m = self.engine.compute(2 * q_max)?;
        let mut last_err = None;
        for q in (1..=q_max).rev() {
            match pade_rom(&m.m[..2 * q], q, true) {
                Ok(rom) => {
                    if rom.is_stable() {
                        return Ok(rom);
                    }
                    if let Some(fixed) = rom.stabilized() {
                        return Ok(fixed);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(AweError::ZeroResponse))
    }

    /// Adaptive order selection: raises the order until the dominant pole
    /// moves by less than `rel_tol` between successive orders (or `q_max`
    /// is hit), returning the converged stable model.
    ///
    /// # Errors
    ///
    /// Propagates Padé failures when not even an order-1 model exists.
    pub fn rom_adaptive(&self, q_max: usize, rel_tol: f64) -> Result<Rom, AweError> {
        let m = self.engine.compute(2 * q_max)?;
        let mut best: Option<Rom> = None;
        for q in 1..=q_max {
            let rom = match pade_rom(&m.m[..2 * q], q, true) {
                Ok(r) => match r.is_stable() {
                    true => r,
                    false => match r.stabilized() {
                        Some(f) => f,
                        None => continue,
                    },
                },
                Err(_) => continue,
            };
            if let Some(prev) = &best {
                let (Some(a), Some(b)) = (prev.dominant_pole(), rom.dominant_pole()) else {
                    best = Some(rom);
                    continue;
                };
                if (a - b).abs() <= rel_tol * b.abs() {
                    return Ok(rom);
                }
            }
            best = Some(rom);
        }
        best.ok_or(AweError::ZeroResponse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::{fig1_rc, rc_ladder};
    use awesym_linalg::quadratic_roots;

    #[test]
    fn fig1_exact_poles_at_order_two() {
        let (g1, g2, c1, c2) = (1e-3, 1e-3, 1e-9, 2e-9);
        let w = fig1_rc(g1, g2, c1, c2);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let rom = awe.rom(2).unwrap();
        // True poles from the exact quadratic denominator.
        let (r1, r2) = quadratic_roots(g1 * g2, g2 * c1 + g2 * c2 + g1 * c2, c1 * c2);
        for truth in [r1, r2] {
            let best = rom
                .poles()
                .iter()
                .map(|p| (*p - truth).abs() / truth.abs())
                .fold(f64::MAX, f64::min);
            assert!(best < 1e-9, "pole {truth} missing from {:?}", rom.poles());
        }
        assert!((rom.dc_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_rom_matches_ac_analysis() {
        let w = rc_ladder(40, 25.0, 1e-12);
        let mna = awesym_mna::Mna::build(&w.circuit).unwrap();
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let rom = awe.rom_stable(4).unwrap();
        // Compare |H| against direct AC analysis up to the dominant corner.
        let wc = rom.dominant_pole().unwrap().abs();
        let omegas: Vec<f64> = (0..10).map(|i| wc * (i as f64 + 0.5) / 5.0).collect();
        let truth = mna.ac_transfer(w.input, w.output, &omegas).unwrap();
        for (h_rom, h_ac) in omegas.iter().map(|&o| rom.eval_jw(o)).zip(truth.iter()) {
            assert!(
                (h_rom - *h_ac).abs() < 0.02 * h_ac.abs().max(1e-3),
                "{h_rom} vs {h_ac}"
            );
        }
    }

    #[test]
    fn ladder_step_matches_transient() {
        let w = rc_ladder(30, 100.0, 1e-12);
        let mna = awesym_mna::Mna::build(&w.circuit).unwrap();
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let rom = awe.rom_stable(3).unwrap();
        let tau = 1.0 / rom.dominant_pole().unwrap().abs();
        let opts = awesym_mna::TransientOptions {
            t_stop: 5.0 * tau,
            dt: tau / 400.0,
            method: awesym_mna::IntegrationMethod::Trapezoidal,
        };
        let res = awesym_mna::transient(
            &mna,
            w.input,
            &awesym_mna::Waveform::Step { amplitude: 1.0 },
            &opts,
            &[w.output],
        )
        .unwrap();
        for (t, v) in res.times.iter().zip(res.traces[0].iter()).step_by(50) {
            let v_rom = rom.step_response(*t);
            assert!((v_rom - v).abs() < 0.02, "t={t}: rom {v_rom} vs sim {v}");
        }
    }

    #[test]
    fn rom_stable_backs_off_order() {
        // Single-pole circuit: q=3 is unobtainable, rom_stable returns q=1.
        let mut c = awesym_circuit::Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let v = c.add(awesym_circuit::Element::vsource(
            "V1",
            n1,
            awesym_circuit::Circuit::GROUND,
            1.0,
        ));
        c.add(awesym_circuit::Element::resistor("R1", n1, n2, 1e3));
        c.add(awesym_circuit::Element::capacitor(
            "C1",
            n2,
            awesym_circuit::Circuit::GROUND,
            1e-9,
        ));
        let awe = AweAnalysis::new(&c, v, n2).unwrap();
        let rom = awe.rom_stable(3).unwrap();
        assert_eq!(rom.order(), 1);
        assert!((rom.poles()[0].re + 1e6).abs() < 1.0);
    }

    #[test]
    fn shifted_expansion_recovers_exact_poles() {
        // Order-2 circuit: any expansion point gives the exact poles.
        let (g1, g2, c1, c2) = (1e-3, 1e-3, 1e-9, 2e-9);
        let w = fig1_rc(g1, g2, c1, c2);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let exact = awe.rom(2).unwrap();
        let mut truth: Vec<f64> = exact.poles().iter().map(|p| p.re).collect();
        truth.sort_by(f64::total_cmp);
        for s0 in [-1e5, -3e6, 2e5] {
            let rom = awe.rom_shifted(2, s0).unwrap();
            let mut got: Vec<f64> = rom.poles().iter().map(|p| p.re).collect();
            got.sort_by(f64::total_cmp);
            for (a, b) in got.iter().zip(truth.iter()) {
                assert!((a - b).abs() < 1e-6 * b.abs(), "s0={s0}: {a} vs {b}");
            }
            // H(0) is restored for dc_gain().
            assert!((rom.dc_gain() - 1.0).abs() < 1e-6, "s0={s0}");
        }
    }

    #[test]
    fn shifted_expansion_resolves_far_pole() {
        // Large ladder: a single shifted q=1 expansion near a fast pole
        // estimates it far better than the q=1 Maclaurin expansion, which
        // only sees the dominant pole.
        let w = rc_ladder(30, 100.0, 1e-12);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let reference = awe.rom_stable(4).unwrap();
        let mut ps: Vec<f64> = reference.poles().iter().map(|p| p.re).collect();
        ps.sort_by(f64::total_cmp);
        let fast = ps[0]; // most negative observable pole of the q=4 model
        let rom0 = awe.rom(1).unwrap();
        let rom_hop = awe.rom_shifted(1, fast * 1.2).unwrap();
        let err0 = (rom0.poles()[0].re - fast).abs();
        let err_hop = (rom_hop.poles()[0].re - fast).abs();
        // The ladder's fast poles cluster, so a q=1 probe stays blurry —
        // but the hop must still be several times closer than Maclaurin.
        assert!(
            err_hop < 0.5 * err0,
            "hop {err_hop:.3e} vs maclaurin {err0:.3e} (fast pole {fast:.3e})"
        );
    }

    #[test]
    fn adaptive_order_converges() {
        let w = rc_ladder(60, 10.0, 2e-12);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let rom = awe.rom_adaptive(6, 1e-4).unwrap();
        assert!(rom.is_stable());
        assert!(rom.order() >= 2);
    }
}
