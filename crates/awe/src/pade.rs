//! The moment-matching (Padé) step: moments → poles and residues.

use crate::{AweError, Rom};
use awesym_linalg::{solve_hankel, solve_vandermonde_complex, Complex64, Poly};

/// Builds a `q`-pole reduced-order model from at least `2q` moments.
///
/// The moments are rescaled by the dominant time constant `τ = |m₁/m₀|`
/// before the Hankel solve so that the system stays well-conditioned even
/// when the circuit time constants are nanoseconds (raw moments then span
/// tens of orders of magnitude). Poles and residues are unscaled on the way
/// out. Set `scale: false` to disable (exposed for the ablation benchmark).
///
/// # Errors
///
/// - [`AweError::NotEnoughMoments`] when fewer than `2q` moments are given;
/// - [`AweError::Pade`] when the Hankel system is singular (fewer than `q`
///   observable poles) or root finding fails;
/// - [`AweError::ZeroResponse`] for an all-zero moment sequence.
///
/// # Example
///
/// ```
/// use awesym_awe::pade_rom;
///
/// // H(s) = 1/(1+s): moments 1, −1, 1, −1.
/// let rom = pade_rom(&[1.0, -1.0, 1.0, -1.0], 1, true)?;
/// assert!((rom.poles()[0].re + 1.0).abs() < 1e-9);
/// # Ok::<(), awesym_awe::AweError>(())
/// ```
pub fn pade_rom(moments: &[f64], q: usize, scale: bool) -> Result<Rom, AweError> {
    // Sampled profiling hook (see `crate::profile`): one relaxed atomic
    // increment per call, clock reads only when admitted.
    let t0 = crate::profile::PADE_SAMPLER
        .sample()
        .then(std::time::Instant::now);
    let result = pade_rom_inner(moments, q, scale);
    if let Some(t0) = t0 {
        crate::profile::record_pade(t0.elapsed());
    }
    result
}

fn pade_rom_inner(moments: &[f64], q: usize, scale: bool) -> Result<Rom, AweError> {
    if moments.len() < 2 * q {
        return Err(AweError::NotEnoughMoments {
            needed: 2 * q,
            got: moments.len(),
        });
    }
    if moments.iter().any(|m| !m.is_finite()) {
        return Err(AweError::NonFinite { what: "moments" });
    }
    if moments.iter().all(|&m| m == 0.0) {
        return Err(AweError::ZeroResponse);
    }
    if q == 0 {
        return Err(AweError::Pade {
            order: 0,
            source: awesym_linalg::LinalgError::DegeneratePolynomial,
        });
    }
    // Frequency scaling: s' = τ·s with τ the dominant time constant,
    // estimated from the first consecutive pair of nonzero moments (m₀ can
    // legitimately be zero, e.g. purely capacitive cross-coupling).
    let tau = if scale {
        moments
            .windows(2)
            .find(|w| w[0] != 0.0 && w[1] != 0.0)
            .map_or(1.0, |w| (w[1] / w[0]).abs())
    } else {
        1.0
    };
    let scaled: Vec<f64> = moments
        .iter()
        .enumerate()
        .map(|(k, &m)| m / tau.powi(k as i32))
        .collect();

    let b = solve_hankel(&scaled, q).map_err(|source| AweError::Pade { order: q, source })?;
    // Denominator 1 + b₁ s' + … + b_q s'^q.
    let mut den = vec![1.0];
    den.extend_from_slice(&b);
    let poly = Poly::new(den);
    let scaled_poles = poly
        .roots()
        .map_err(|source| AweError::Pade { order: q, source })?;
    // Residues from the scaled moments/poles, then unscale both.
    let scaled_res = solve_vandermonde_complex(&scaled_poles, &scaled[..q.min(scaled.len())])
        .map_err(|source| AweError::Pade { order: q, source })?;
    let poles: Vec<Complex64> = scaled_poles.iter().map(|&p| p / tau).collect();
    let residues: Vec<Complex64> = scaled_res.iter().map(|&k| k / tau).collect();
    // A near-singular Hankel/Vandermonde solve that slips past the exact
    // singularity checks surfaces as Inf/NaN here; reject it as a typed
    // health failure rather than returning a poisoned model.
    if poles.iter().any(|p| !p.re.is_finite() || !p.im.is_finite()) {
        return Err(AweError::NonFinite { what: "poles" });
    }
    if residues
        .iter()
        .any(|k| !k.re.is_finite() || !k.im.is_finite())
    {
        return Err(AweError::NonFinite { what: "residues" });
    }
    Ok(Rom::from_parts(poles, residues, moments.to_vec(), tau))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments_of(poles: &[f64], residues: &[f64], count: usize) -> Vec<f64> {
        // m_j = −Σ k_i / p_i^{j+1}
        (0..count)
            .map(|j| {
                -poles
                    .iter()
                    .zip(residues)
                    .map(|(&p, &k)| k / p.powi(j as i32 + 1))
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn recovers_two_real_poles() {
        let poles = [-1e6, -5e7];
        let res = [2e6, -3e7];
        let m = moments_of(&poles, &res, 4);
        let rom = pade_rom(&m, 2, true).unwrap();
        let mut got: Vec<f64> = rom.poles().iter().map(|p| p.re).collect();
        got.sort_by(f64::total_cmp);
        assert!((got[0] + 5e7).abs() / 5e7 < 1e-9, "{got:?}");
        assert!((got[1] + 1e6).abs() / 1e6 < 1e-9);
        assert!(rom.is_stable());
    }

    #[test]
    fn recovers_widely_separated_poles_with_scaling() {
        // Raw moments for these poles span ~40 orders of magnitude at q=3;
        // without scaling the Hankel solve is garbage.
        let poles = [-1e3, -1e6, -1e9];
        let res = [1e3, 1e6, 1e9];
        let m = moments_of(&poles, &res, 6);
        let rom = pade_rom(&m, 3, true).unwrap();
        let mut got: Vec<f64> = rom.poles().iter().map(|p| p.re).collect();
        got.sort_by(f64::total_cmp);
        assert!((got[2] + 1e3).abs() / 1e3 < 1e-6, "{got:?}");
        assert!((got[1] + 1e6).abs() / 1e6 < 1e-3, "{got:?}");
    }

    #[test]
    fn moment_scaling_matters() {
        // Document the conditioning benefit: with scaling the dominant pole
        // error is tiny; unscaled it is visibly worse (or fails outright).
        let poles = [-1e4, -1e7, -1e10];
        let res = [1.0, 10.0, 100.0];
        let m = moments_of(&poles, &res, 6);
        let dom_err = |rom: &Rom| {
            rom.poles()
                .iter()
                .map(|p| ((p.re + 1e4) / 1e4).abs())
                .fold(f64::MAX, f64::min)
        };
        let scaled = pade_rom(&m, 3, true).unwrap();
        let e_scaled = dom_err(&scaled);
        // outright failure of the unscaled solve is the expected alternative
        if let Ok(unscaled) = pade_rom(&m, 3, false) {
            assert!(e_scaled <= dom_err(&unscaled) * 10.0);
        }
        assert!(e_scaled < 1e-6);
    }

    #[test]
    fn too_few_moments_is_an_error() {
        assert!(matches!(
            pade_rom(&[1.0, -1.0], 2, true),
            Err(AweError::NotEnoughMoments { needed: 4, got: 2 })
        ));
    }

    #[test]
    fn non_finite_moments_are_an_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                pade_rom(&[1.0, bad, 1.0, -1.0], 2, true),
                Err(AweError::NonFinite { what: "moments" })
            ));
        }
    }

    #[test]
    fn zero_moments_is_an_error() {
        assert!(matches!(
            pade_rom(&[0.0, 0.0], 1, true),
            Err(AweError::ZeroResponse)
        ));
    }

    #[test]
    fn order_zero_is_an_error() {
        assert!(pade_rom(&[1.0, -1.0], 0, true).is_err());
    }

    #[test]
    fn overfitting_single_pole_fails_cleanly() {
        let m = [2.0, -6.0, 18.0, -54.0]; // single pole at −1/3… (τ=3)
        assert!(matches!(pade_rom(&m, 2, true), Err(AweError::Pade { .. })));
        let rom = pade_rom(&m, 1, true).unwrap();
        assert!((rom.poles()[0].re + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_pole_pair() {
        // H with poles −1 ± 5i (underdamped), residues conjugate.
        let p = Complex64::new(-1.0, 5.0);
        let k = Complex64::new(0.5, -1.5);
        let m: Vec<f64> = (0..4)
            .map(|j| {
                let mut num = Complex64::ZERO;
                for (pp, kk) in [(p, k), (p.conj(), k.conj())] {
                    let mut d = Complex64::ONE;
                    for _ in 0..=j {
                        d *= pp;
                    }
                    num += kk / d;
                }
                -num.re
            })
            .collect();
        let rom = pade_rom(&m, 2, true).unwrap();
        let got = rom.poles();
        assert!((got[0].im.abs() - 5.0).abs() < 1e-6);
        assert!((got[0].re + 1.0).abs() < 1e-6);
        assert!((got[0] - got[1].conj()).abs() < 1e-6);
    }
}
