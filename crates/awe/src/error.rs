//! Error type for AWE analyses.

use awesym_linalg::LinalgError;
use awesym_mna::MnaError;
use std::fmt;

/// Errors produced by AWE moment computation and model reduction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AweError {
    /// The underlying MNA formulation or solve failed.
    Mna(MnaError),
    /// A dense solve inside the Padé step failed — usually the circuit has
    /// fewer observable poles than the requested approximation order.
    Pade {
        /// Requested approximation order.
        order: usize,
        /// Underlying failure.
        source: LinalgError,
    },
    /// Not enough moments were supplied/computed for the requested order.
    NotEnoughMoments {
        /// Moments required.
        needed: usize,
        /// Moments available.
        got: usize,
    },
    /// The transfer function is identically zero (no input-output coupling).
    ZeroResponse,
    /// A quantity that must be finite (a moment, pole, or residue) came
    /// out NaN or infinite — the numeric health signal the serving layer
    /// degrades on.
    NonFinite {
        /// Which quantity was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for AweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AweError::Mna(e) => write!(f, "mna failure: {e}"),
            AweError::Pade { order, source } => {
                write!(f, "pade approximation of order {order} failed: {source}")
            }
            AweError::NotEnoughMoments { needed, got } => {
                write!(f, "need {needed} moments, only {got} available")
            }
            AweError::ZeroResponse => write!(f, "transfer function is identically zero"),
            AweError::NonFinite { what } => write!(f, "non-finite {what}"),
        }
    }
}

impl std::error::Error for AweError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AweError::Mna(e) => Some(e),
            AweError::Pade { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MnaError> for AweError {
    fn from(e: MnaError) -> Self {
        AweError::Mna(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = AweError::NotEnoughMoments { needed: 4, got: 2 };
        assert!(e.to_string().contains("need 4"));
        assert!(AweError::ZeroResponse.to_string().contains("zero"));
        let p = AweError::Pade {
            order: 3,
            source: LinalgError::Singular { step: 1 },
        };
        assert!(p.to_string().contains("order 3"));
    }
}
