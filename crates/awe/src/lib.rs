//! Asymptotic Waveform Evaluation (AWE) — the cornerstone of AWEsymbolic.
//!
//! AWE (Pillage & Rohrer, 1990) approximates the response of a large linear
//! circuit by matching the leading *moments* of its transfer function with a
//! low-order Padé model:
//!
//! 1. [`MomentEngine`] factors the MNA conductance matrix `G` once and
//!    computes moment vectors `X_0 = G⁻¹ b`, `X_k = −G⁻¹ C X_{k−1}`; the
//!    output moments are `m_k = lᵀ X_k`.
//! 2. [`pade_rom`] turns `2q` moments into a `q`-pole reduced-order model
//!    ([`Rom`]) through a frequency-scaled Hankel solve, polynomial root
//!    extraction and a residue (Vandermonde) solve.
//! 3. [`Rom`] evaluates frequency responses, impulse/step responses and the
//!    performance metrics the paper plots (DC gain, dominant pole,
//!    unity-gain frequency, phase margin, delay, cross-talk peak).
//! 4. [`sensitivity`] implements AWEsensitivity: adjoint moment
//!    sensitivities chained into pole/zero sensitivities, used to select
//!    the symbolic elements automatically.
//!
//! # Example
//!
//! ```
//! use awesym_circuit::generators::rc_ladder;
//! use awesym_awe::AweAnalysis;
//!
//! # fn main() -> Result<(), awesym_awe::AweError> {
//! let w = rc_ladder(50, 10.0, 1e-12);
//! let awe = AweAnalysis::new(&w.circuit, w.input, w.output)?;
//! let rom = awe.rom(2)?;
//! assert!((rom.dc_gain() - 1.0).abs() < 1e-9);
//! assert!(rom.is_stable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod analysis;
pub mod delay;
mod error;
mod moments;
mod pade;
pub mod profile;
mod rom;
pub mod sensitivity;

pub use analysis::AweAnalysis;
pub use delay::{delay_estimates, DelayEstimates};
pub use error::AweError;
pub use moments::{MomentEngine, Moments};
pub use pade::pade_rom;
pub use rom::Rom;
