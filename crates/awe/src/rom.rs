//! The reduced-order model produced by AWE and its performance metrics.

use awesym_linalg::{solve_vandermonde_complex, Complex64};

/// A pole-residue reduced-order model
/// `H(s) ≈ Σ_i k_i / (s − p_i)`.
///
/// Produced by [`crate::pade_rom`]; evaluates frequency responses, time
/// responses, and the circuit performance metrics plotted in the paper.
#[derive(Debug, Clone)]
pub struct Rom {
    poles: Vec<Complex64>,
    residues: Vec<Complex64>,
    moments: Vec<f64>,
    tau: f64,
}

impl Rom {
    /// Assembles a model from parts (used by the Padé step and by the
    /// compiled symbolic models).
    pub fn from_parts(
        poles: Vec<Complex64>,
        residues: Vec<Complex64>,
        moments: Vec<f64>,
        tau: f64,
    ) -> Self {
        Rom {
            poles,
            residues,
            moments,
            tau,
        }
    }

    /// Approximation order (number of poles).
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// The model poles.
    pub fn poles(&self) -> &[Complex64] {
        &self.poles
    }

    /// The model residues, ordered like [`Rom::poles`].
    pub fn residues(&self) -> &[Complex64] {
        &self.residues
    }

    /// The moments the model was built from.
    pub fn moments(&self) -> &[f64] {
        &self.moments
    }

    /// The frequency-scaling time constant used during construction.
    pub fn time_scale(&self) -> f64 {
        self.tau
    }

    /// DC gain `H(0) = m₀`.
    pub fn dc_gain(&self) -> f64 {
        self.moments.first().copied().unwrap_or(0.0)
    }

    /// The dominant pole (smallest magnitude).
    pub fn dominant_pole(&self) -> Option<Complex64> {
        self.poles
            .iter()
            .copied()
            .min_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap())
    }

    /// True when every pole lies strictly in the left half plane.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// Returns a model with right-half-plane poles discarded and the
    /// remaining residues refit against the leading moments — the standard
    /// AWE remedy for unstable Padé artifacts. Returns `None` when no
    /// stable pole remains or the refit fails.
    pub fn stabilized(&self) -> Option<Rom> {
        if self.is_stable() {
            return Some(self.clone());
        }
        let stable: Vec<Complex64> = self.poles.iter().copied().filter(|p| p.re < 0.0).collect();
        if stable.is_empty() || self.moments.len() < stable.len() {
            return None;
        }
        let res = solve_vandermonde_complex(&stable, &self.moments[..stable.len()]).ok()?;
        Some(Rom {
            poles: stable,
            residues: res,
            moments: self.moments.clone(),
            tau: self.tau,
        })
    }

    /// Frequency response `H(jω)`.
    pub fn eval_jw(&self, omega: f64) -> Complex64 {
        let s = Complex64::new(0.0, omega);
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &k)| k / (s - p))
            .fold(Complex64::ZERO, |a, b| a + b)
    }

    /// Impulse response `h(t) = Σ k_i e^{p_i t}` for `t ≥ 0`.
    pub fn impulse_response(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &k)| (k * (p * t).exp()).re)
            .sum()
    }

    /// Unit-step response `y(t) = Σ (k_i/p_i)(e^{p_i t} − 1)` for `t ≥ 0`.
    pub fn step_response(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &k)| {
                let e = (p * t).exp();
                (k / p * (e - Complex64::ONE)).re
            })
            .sum()
    }

    /// Step response sampled at many time points.
    pub fn step_response_series(&self, times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.step_response(t)).collect()
    }

    /// Time at which the step response first crosses `fraction` of its
    /// final value (`H(0)`), found by scan plus bisection. Returns `None`
    /// for unstable models or when no crossing exists within
    /// `10·τ_dominant`.
    pub fn delay_to_fraction(&self, fraction: f64) -> Option<f64> {
        if !self.is_stable() {
            return None;
        }
        let target = fraction * self.dc_gain();
        let p_dom = self.dominant_pole()?;
        let t_max = 10.0 / p_dom.re.abs().max(f64::MIN_POSITIVE);
        let rising = self.dc_gain() >= 0.0;
        let crossed = |v: f64| if rising { v >= target } else { v <= target };
        let n = 2000;
        let mut prev_t = 0.0;
        let mut prev_v = self.step_response(0.0);
        if crossed(prev_v) {
            return Some(0.0);
        }
        for i in 1..=n {
            let t = t_max * i as f64 / n as f64;
            let v = self.step_response(t);
            if crossed(v) {
                // Bisect between prev_t and t.
                let (mut lo, mut hi) = (prev_t, t);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if crossed(self.step_response(mid)) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                return Some(0.5 * (lo + hi));
            }
            prev_t = t;
            prev_v = v;
        }
        let _ = prev_v;
        None
    }

    /// The 50 % delay of the step response.
    pub fn delay_50(&self) -> Option<f64> {
        self.delay_to_fraction(0.5)
    }

    /// Peak absolute value of the step response within `10·τ_dominant`
    /// (used for cross-talk amplitude). Returns `(time, value)`.
    pub fn step_peak(&self) -> Option<(f64, f64)> {
        let p_dom = self.dominant_pole()?;
        if !self.is_stable() {
            return None;
        }
        let t_max = 10.0 / p_dom.re.abs().max(f64::MIN_POSITIVE);
        let n = 4000;
        let mut best = (0.0, 0.0f64);
        for i in 0..=n {
            let t = t_max * i as f64 / n as f64;
            let v = self.step_response(t);
            if v.abs() > best.1.abs() {
                best = (t, v);
            }
        }
        Some(best)
    }

    /// Zeros of the reduced model: roots of the numerator
    /// `N(s) = Σ_i k_i·Π_{j≠i}(s − p_j)`.
    ///
    /// The paper uses pole *and* zero symbolic forms for the op-amp plots;
    /// zeros also drive the zero-sensitivity ranking.
    ///
    /// # Errors
    ///
    /// Returns root-finding failures for degenerate numerators (e.g. an
    /// all-pole model of order 1 has no zeros — that returns an empty
    /// vector, not an error).
    pub fn zeros(&self) -> Result<Vec<Complex64>, awesym_linalg::LinalgError> {
        let n = self.poles.len();
        if n <= 1 {
            return Ok(Vec::new());
        }
        // Accumulate N(s) = Σ_i k_i Π_{j≠i} (s − p_j) in coefficient form.
        let mut num = vec![Complex64::ZERO; n]; // degree ≤ n−1
        for i in 0..n {
            // Build Π_{j≠i} (s − p_j).
            let mut prod = vec![Complex64::ZERO; n];
            prod[0] = Complex64::ONE;
            let mut deg = 0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                // prod *= (s − p_j)
                for k in (0..=deg).rev() {
                    let c = prod[k];
                    prod[k + 1] += c;
                    prod[k] = -self.poles[j] * c;
                }
                deg += 1;
            }
            for k in 0..n {
                num[k] += self.residues[i] * prod[k];
            }
        }
        // Trim trailing ~zero coefficients (all-pole responses).
        let scale = num.iter().map(|c| c.abs()).fold(0.0, f64::max);
        while matches!(num.last(), Some(c) if c.abs() <= 1e-12 * scale) {
            num.pop();
        }
        if num.len() <= 1 {
            return Ok(Vec::new());
        }
        awesym_linalg::roots_aberth(&num)
    }

    /// Gain margin in dB: `−20·log₁₀|H(jω₁₈₀)|` at the lowest frequency
    /// where the phase crosses −180°. `None` when the phase never reaches
    /// −180° in the scanned range (then the margin is effectively
    /// infinite).
    pub fn gain_margin_db(&self) -> Option<f64> {
        let p_min = self.poles.iter().map(|p| p.abs()).fold(f64::MAX, f64::min);
        let p_max = self.poles.iter().map(|p| p.abs()).fold(0.0, f64::max);
        if !(p_min.is_finite() && p_max > 0.0) {
            return None;
        }
        let lo = p_min * 1e-4;
        let hi = p_max * 1e4;
        let n = 800;
        // Track unwrapped phase relative to the DC phase.
        let base = self.eval_jw(lo).arg();
        let mut prev_w = lo;
        let mut prev_phase = 0.0f64;
        let mut last = self.eval_jw(lo).arg();
        for i in 1..=n {
            let w = lo * (hi / lo).powf(i as f64 / n as f64);
            let raw = self.eval_jw(w).arg();
            let mut d = raw - last;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            let phase = prev_phase + d;
            last = raw;
            if phase <= -std::f64::consts::PI && prev_phase > -std::f64::consts::PI {
                // Bisect in log-ω for the crossing.
                let (mut a, mut b) = (prev_w, w);
                for _ in 0..60 {
                    let mid = (a * b).sqrt();
                    // Re-derive unwrapped phase at mid by linear blend of
                    // the bracket (adequate over a tiny interval).
                    let fa = prev_phase;
                    let fb = phase;
                    let t = (mid.ln() - a.ln()) / (b.ln() - a.ln());
                    if fa + t * (fb - fa) > -std::f64::consts::PI {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
                let w180 = (a * b).sqrt();
                let mag = self.eval_jw(w180).abs();
                let _ = base;
                return Some(-20.0 * mag.log10());
            }
            prev_w = w;
            prev_phase = phase;
        }
        None
    }

    /// Unit-ramp response `y(t) = Σ (k_i/p_i²)(e^{p_i t} − 1) − Σ (k_i/p_i)·t`
    /// for `t ≥ 0` (integral of the step response) — the ramp-input delay
    /// models of the interconnect literature build on this.
    pub fn ramp_response(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &k)| {
                let e = (p * t).exp();
                let a = k / (p * p) * (e - Complex64::ONE);
                let b = k / p * t;
                (a - b).re
            })
            .sum()
    }

    /// Magnitude/phase pairs over a frequency list (a Bode table).
    pub fn bode(&self, omegas: &[f64]) -> Vec<(f64, f64)> {
        omegas
            .iter()
            .map(|&w| {
                let h = self.eval_jw(w);
                (h.abs(), h.arg().to_degrees())
            })
            .collect()
    }

    /// Human-readable closed form of the impulse response,
    /// `h(t) = Σ k_i·e^{p_i t}` — the paper's "transient response …
    /// expressed symbolically".
    pub fn impulse_expression(&self) -> String {
        let mut out = String::from("h(t) =");
        for (i, (p, k)) in self.poles.iter().zip(&self.residues).enumerate() {
            if i > 0 {
                out.push_str(" +");
            }
            if p.im == 0.0 && k.im == 0.0 {
                out.push_str(&format!(" {:.6e}*exp({:.6e}*t)", k.re, p.re));
            } else {
                out.push_str(&format!(
                    " ({:.6e}{:+.6e}i)*exp(({:.6e}{:+.6e}i)*t)",
                    k.re, k.im, p.re, p.im
                ));
            }
        }
        out
    }

    /// Unity-gain (0 dB crossover) angular frequency: the lowest `ω` where
    /// `|H(jω)| = 1`, found by log-spaced scan plus bisection. `None` when
    /// `|H|` never crosses 1 in the scanned range.
    pub fn unity_gain_omega(&self) -> Option<f64> {
        let p_min = self.poles.iter().map(|p| p.abs()).fold(f64::MAX, f64::min);
        let p_max = self.poles.iter().map(|p| p.abs()).fold(0.0, f64::max);
        if !(p_min.is_finite() && p_max > 0.0) {
            return None;
        }
        let lo = p_min * 1e-4;
        let hi = p_max * 1e4;
        let n = 600;
        let mut prev_w = lo;
        let mut prev_above = self.eval_jw(lo).abs() > 1.0;
        if !prev_above {
            return None; // already below unity at DC-ish frequency
        }
        for i in 1..=n {
            let w = lo * (hi / lo).powf(i as f64 / n as f64);
            let above = self.eval_jw(w).abs() > 1.0;
            if above != prev_above {
                let (mut a, mut b) = (prev_w, w);
                for _ in 0..80 {
                    let mid = (a * b).sqrt();
                    if (self.eval_jw(mid).abs() > 1.0) == prev_above {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
                return Some((a * b).sqrt());
            }
            prev_w = w;
            prev_above = above;
        }
        None
    }

    /// Phase margin in degrees: `180° + ∠H(jω_u)` at the unity-gain
    /// frequency. `None` when there is no crossover.
    pub fn phase_margin_deg(&self) -> Option<f64> {
        let wu = self.unity_gain_omega()?;
        let phase = self.eval_jw(wu).arg().to_degrees();
        Some(180.0 + phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole(p: f64, k: f64) -> Rom {
        Rom::from_parts(
            vec![Complex64::from_re(p)],
            vec![Complex64::from_re(k)],
            vec![-k / p, -k / (p * p)],
            1.0,
        )
    }

    #[test]
    fn single_pole_responses() {
        // H(s) = 1/(1+s) → pole −1, residue 1.
        let rom = single_pole(-1.0, 1.0);
        assert!((rom.dc_gain() - 1.0).abs() < 1e-12);
        assert!((rom.eval_jw(0.0).re - 1.0).abs() < 1e-12);
        assert!((rom.eval_jw(1.0).abs() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((rom.impulse_response(0.0) - 1.0).abs() < 1e-12);
        assert!((rom.step_response(1.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
        assert_eq!(rom.step_response(-1.0), 0.0);
        assert!(rom.is_stable());
        assert_eq!(rom.order(), 1);
    }

    #[test]
    fn delay_of_single_pole() {
        let rom = single_pole(-1.0, 1.0);
        // 50% delay of 1−e^{−t} is ln 2.
        let d = rom.delay_50().unwrap();
        assert!((d - std::f64::consts::LN_2).abs() < 1e-6);
        // 0-fraction crossing is immediate.
        assert_eq!(rom.delay_to_fraction(0.0), Some(0.0));
    }

    #[test]
    fn unity_gain_and_phase_margin_single_pole() {
        // H(s) = A/(1 + s/p): with A=1000, p=1 → ω_u ≈ A·p, PM ≈ 90°.
        let a = 1000.0;
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0)],
            vec![Complex64::from_re(a)],
            vec![a, -a],
            1.0,
        );
        let wu = rom.unity_gain_omega().unwrap();
        assert!((wu - (a * a - 1.0).sqrt()).abs() / a < 1e-6);
        let pm = rom.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 0.2, "pm {pm}");
    }

    #[test]
    fn two_pole_phase_margin_lower() {
        // Second pole at the crossover reduces PM toward 45°.
        let a = 1000.0;
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0), Complex64::from_re(-1000.0)],
            vec![Complex64::from_re(a), Complex64::from_re(0.0)],
            vec![a, -a],
            1.0,
        );
        // H = a/(s+1) exactly (zero residue on second pole) — now couple it:
        let rom2 = Rom::from_parts(
            rom.poles().to_vec(),
            vec![Complex64::from_re(a * 0.999), Complex64::from_re(-800.0)],
            vec![a, -a],
            1.0,
        );
        let pm2 = rom2.phase_margin_deg();
        if let (Some(p1), Some(p2)) = (rom.phase_margin_deg(), pm2) {
            assert!(p2 < p1 + 1.0);
        }
    }

    #[test]
    fn stabilized_drops_rhp_pole() {
        // One good pole, one spurious RHP pole.
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0), Complex64::from_re(2.0)],
            vec![Complex64::from_re(1.0), Complex64::from_re(0.001)],
            vec![1.0, -1.0],
            1.0,
        );
        assert!(!rom.is_stable());
        let fixed = rom.stabilized().unwrap();
        assert!(fixed.is_stable());
        assert_eq!(fixed.order(), 1);
        // Refit keeps the DC gain: m0 preserved by residue solve.
        assert!((fixed.dc_gain() - 1.0).abs() < 1e-12);
        let h0 = fixed.eval_jw(0.0).re;
        assert!((h0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stabilized_with_no_stable_pole_is_none() {
        let rom = Rom::from_parts(
            vec![Complex64::from_re(2.0)],
            vec![Complex64::from_re(1.0)],
            vec![1.0],
            1.0,
        );
        assert!(rom.stabilized().is_none());
    }

    #[test]
    fn step_peak_sees_overshoot() {
        // Underdamped pair: peak > DC gain.
        let p = Complex64::new(-0.2, 2.0);
        let k = Complex64::new(-0.1, -1.01); // ≈ −H0·p/2 style residue
        let m0 = -2.0 * (k / p).re;
        let rom = Rom::from_parts(vec![p, p.conj()], vec![k, k.conj()], vec![m0, 0.0], 1.0);
        let (tp, vp) = rom.step_peak().unwrap();
        assert!(tp > 0.0);
        assert!(vp > m0, "peak {vp} vs dc {m0}");
    }

    #[test]
    fn zeros_of_known_two_pole_one_zero() {
        // H(s) = (s+3)/((s+1)(s+2)) = 2/(s+1) − 1/(s+2).
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0), Complex64::from_re(-2.0)],
            vec![Complex64::from_re(2.0), Complex64::from_re(-1.0)],
            vec![1.5, -1.75],
            1.0,
        );
        let z = rom.zeros().unwrap();
        assert_eq!(z.len(), 1);
        assert!((z[0].re + 3.0).abs() < 1e-9, "{z:?}");
        assert!(z[0].im.abs() < 1e-9);
    }

    #[test]
    fn all_pole_model_has_no_zeros() {
        // H(s) = 1/((s+1)(s+2)) = 1/(s+1) − 1/(s+2): numerator constant.
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0), Complex64::from_re(-2.0)],
            vec![Complex64::from_re(1.0), Complex64::from_re(-1.0)],
            vec![0.5],
            1.0,
        );
        assert!(rom.zeros().unwrap().is_empty());
        assert!(single_pole(-1.0, 1.0).zeros().unwrap().is_empty());
    }

    #[test]
    fn ramp_response_is_integral_of_step() {
        let rom = single_pole(-2.0, 3.0);
        // Numeric integral of step vs ramp_response.
        let t_end = 2.0;
        let n = 20000;
        let dt = t_end / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let t = (i as f64 + 0.5) * dt;
            acc += rom.step_response(t) * dt;
        }
        let r = rom.ramp_response(t_end);
        assert!((acc - r).abs() < 1e-4 * r.abs().max(1.0), "{acc} vs {r}");
        assert_eq!(rom.ramp_response(-1.0), 0.0);
    }

    #[test]
    fn gain_margin_of_three_pole_loop() {
        // Three coincident poles: phase hits −180° well before the gain
        // runs out when A0 is large → finite positive gain margin; a
        // single pole never reaches −180° → None.
        let a = 100.0;
        let rom3 = {
            // (a)/((s+1)^3) expanded in partial fractions has repeated
            // poles; approximate with slightly split poles.
            let p = [-1.0, -1.01, -0.99];
            let poles: Vec<Complex64> = p.iter().map(|&x| Complex64::from_re(x)).collect();
            // Residues for H = Π a/(s−p_i): use Vandermonde vs moments of
            // the true function a/((s+1)(s+1.01)(s+0.99)).
            let m: Vec<f64> = (0..3)
                .map(|j| {
                    // moments of product form via series: crude numeric
                    // differentiation of H at 0.
                    let h = |s: f64| a / ((s + 1.0) * (s + 1.01) * (s + 0.99));
                    match j {
                        0 => h(0.0),
                        1 => (h(1e-5) - h(-1e-5)) / 2e-5,
                        _ => (h(1e-4) - 2.0 * h(0.0) + h(-1e-4)) / 1e-8 / 2.0,
                    }
                })
                .collect();
            let res = awesym_linalg::solve_vandermonde_complex(&poles, &m).unwrap();
            Rom::from_parts(poles, res, m, 1.0)
        };
        let gm = rom3.gain_margin_db().unwrap();
        // |H| at w180 (= √3 rad/s for a triple pole) is a/8 = 12.5 →
        // gm = −20·log10(12.5) ≈ −21.9 dB (unstable in closed loop).
        assert!((gm + 21.9).abs() < 1.5, "gm {gm}");
        assert!(single_pole(-1.0, 100.0).gain_margin_db().is_none());
    }

    #[test]
    fn bode_table_and_expression() {
        let rom = single_pole(-1.0, 1.0);
        let table = rom.bode(&[0.0, 1.0]);
        assert!((table[0].0 - 1.0).abs() < 1e-12);
        assert!((table[1].1 + 45.0).abs() < 1e-9);
        let text = rom.impulse_expression();
        assert!(text.starts_with("h(t) ="), "{text}");
        assert!(text.contains("exp"), "{text}");
    }

    #[test]
    fn zeros_of_complex_pole_model() {
        // H(s) = (s + 4) / (s² + 2s + 5): poles −1 ± 2i,
        // residues k = (p + 4)/(p − p̄) at each pole.
        let p = Complex64::new(-1.0, 2.0);
        let k1 = (p + 4.0) / (p - p.conj());
        let rom = Rom::from_parts(
            vec![p, p.conj()],
            vec![k1, k1.conj()],
            vec![0.8, -0.12],
            1.0,
        );
        let z = rom.zeros().unwrap();
        assert_eq!(z.len(), 1);
        assert!((z[0].re + 4.0).abs() < 1e-9, "{z:?}");
        assert!(z[0].im.abs() < 1e-9);
        // Sanity: H(0) = 4/5.
        assert!((rom.eval_jw(0.0).re - 0.8).abs() < 1e-12);
    }

    #[test]
    fn time_scale_is_retained() {
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-1.0)],
            vec![Complex64::from_re(1.0)],
            vec![1.0, -1.0],
            2.5,
        );
        assert_eq!(rom.time_scale(), 2.5);
        assert_eq!(rom.moments(), &[1.0, -1.0]);
        assert_eq!(rom.residues().len(), 1);
    }

    #[test]
    fn dominant_pole_selection() {
        let rom = Rom::from_parts(
            vec![Complex64::from_re(-100.0), Complex64::from_re(-1.0)],
            vec![Complex64::ONE, Complex64::ONE],
            vec![1.01, -1.0001],
            1.0,
        );
        assert_eq!(rom.dominant_pole().unwrap().re, -1.0);
    }
}
