//! AWEsensitivity: adjoint moment sensitivities chained into pole and zero
//! sensitivities, and the normalized-element ranking used to select symbols.
//!
//! For the MNA system `(G + sC)x = b`, the moment vectors are
//! `X_k = (−G⁻¹C)^k G⁻¹ b` and the adjoint vectors are
//! `Y_j = (−G⁻ᵀCᵀ)^j G⁻ᵀ l`. Perturbing an element value `p` gives
//!
//! ```text
//! ∂m_k/∂p = − Σ_{j=0}^{k}   Y_jᵀ (∂G/∂p) X_{k−j}
//!           − Σ_{j=0}^{k−1} Y_jᵀ (∂C/∂p) X_{k−1−j}
//! ```
//!
//! Pole sensitivities follow by differentiating the moment-matching (Hankel)
//! system and the denominator polynomial: `∂p_i/∂α = −(Σ_j ∂b_j/∂α · p_i^j)
//! / b′(p_i)`. All of this costs a handful of back-substitutions on the
//! already-factored `G` — the "little additional cost" the paper highlights.

use crate::moments::dot;
use crate::{AweError, MomentEngine, Moments};
use awesym_circuit::{Circuit, ElementId};
use awesym_linalg::{solve_hankel, Complex64, Mat, Poly};

/// Adjoint-based sensitivity analysis at a fixed approximation order `q`.
#[derive(Debug)]
pub struct SensitivityAnalysis<'a> {
    engine: &'a MomentEngine,
    moments: Moments,
    adjoints: Vec<Vec<f64>>,
    q: usize,
    tau: f64,
}

impl<'a> SensitivityAnalysis<'a> {
    /// Prepares moment and adjoint vectors for order-`q` sensitivities.
    ///
    /// # Errors
    ///
    /// Propagates moment-computation failures.
    pub fn new(engine: &'a MomentEngine, q: usize) -> Result<Self, AweError> {
        let moments = engine.compute(2 * q)?;
        let adjoints = engine.adjoint_vectors(2 * q);
        let tau = if moments.m[0] != 0.0 && moments.m.len() > 1 && moments.m[1] != 0.0 {
            (moments.m[1] / moments.m[0]).abs()
        } else {
            1.0
        };
        Ok(SensitivityAnalysis {
            engine,
            moments,
            adjoints,
            q,
            tau,
        })
    }

    /// The moments underlying this analysis.
    pub fn moments(&self) -> &[f64] {
        &self.moments.m
    }

    /// `∂m_k/∂p` for `k = 0 … 2q−1`, where `p` is the stored value of the
    /// element (ohms for resistors, farads for capacitors, …).
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Mna`] when the element id is invalid.
    pub fn moment_sensitivities(
        &self,
        circuit: &Circuit,
        id: ElementId,
    ) -> Result<Vec<f64>, AweError> {
        if id.0 >= circuit.num_elements() {
            return Err(AweError::Mna(awesym_mna::MnaError::BadReference {
                what: format!("element #{}", id.0),
            }));
        }
        let e = circuit.element(id);
        let (dg, dc) = self.engine.mna().stamp_derivative(e)?;
        let n = self.moments.m.len();
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for j in 0..=k {
                for &(r, c, v) in &dg {
                    s -= self.adjoints[j][r] * v * self.moments.x[k - j][c];
                }
            }
            for j in 0..k {
                for &(r, c, v) in &dc {
                    s -= self.adjoints[j][r] * v * self.moments.x[k - 1 - j][c];
                }
            }
            *slot = s;
        }
        Ok(out)
    }

    /// Poles of the order-`q` model together with `∂p_i/∂α` for element
    /// value `α`.
    ///
    /// # Errors
    ///
    /// Propagates Padé failures (singular Hankel system) and bad element
    /// references.
    pub fn pole_sensitivities(
        &self,
        circuit: &Circuit,
        id: ElementId,
    ) -> Result<Vec<(Complex64, Complex64)>, AweError> {
        let dm = self.moment_sensitivities(circuit, id)?;
        self.pole_sensitivities_from_dm(&dm)
    }

    /// Pole sensitivities from a pre-computed `∂m/∂α` vector.
    ///
    /// # Errors
    ///
    /// Propagates Padé failures.
    pub fn pole_sensitivities_from_dm(
        &self,
        dm: &[f64],
    ) -> Result<Vec<(Complex64, Complex64)>, AweError> {
        let q = self.q;
        let wrap = |source| AweError::Pade { order: q, source };
        // Work in the τ-scaled domain with τ treated as a constant.
        let ms: Vec<f64> = scale_seq(&self.moments.m, self.tau);
        let dms: Vec<f64> = scale_seq(dm, self.tau);
        let b = solve_hankel(&ms, q).map_err(wrap)?;
        // db from A·db = dr − dA·b with A[r][j] = m_{q+r−j−1}.
        let a = Mat::from_fn(q, q, |r, j| ms[q + r - (j + 1)]);
        let rhs: Vec<f64> = (0..q)
            .map(|r| {
                let mut v = -dms[q + r];
                for j in 0..q {
                    v -= dms[q + r - (j + 1)] * b[j];
                }
                v
            })
            .collect();
        let db = a.solve(&rhs).map_err(wrap)?;
        // Denominator and its roots in the scaled domain.
        let mut den = vec![1.0];
        den.extend_from_slice(&b);
        let poly = Poly::new(den);
        let dpoly = poly.derivative();
        let scaled_poles = poly.roots().map_err(wrap)?;
        let mut out = Vec::with_capacity(q);
        for &ps in &scaled_poles {
            // Σ_j db_j p^j  (note db indexes coefficients 1..q).
            let mut num = Complex64::ZERO;
            let mut pw = ps;
            for &dbj in &db {
                num += dbj * pw;
                pw *= ps;
            }
            let deriv = dpoly.eval_complex(ps);
            let dps = -num / deriv;
            // Unscale: p = p_scaled/τ, and dτ = 0 by convention.
            out.push((ps / self.tau, dps / self.tau));
        }
        Ok(out)
    }

    /// Zeros of the order-`q` model together with `∂z_i/∂α` for element
    /// value `α`, obtained by differentiating the numerator coefficients
    /// `a_j = Σ_{i≤j} b_i·m'_{j−i}` of the Padé form.
    ///
    /// # Errors
    ///
    /// Propagates Padé failures and bad element references.
    pub fn zero_sensitivities(
        &self,
        circuit: &Circuit,
        id: ElementId,
    ) -> Result<Vec<(Complex64, Complex64)>, AweError> {
        let dm = self.moment_sensitivities(circuit, id)?;
        let q = self.q;
        let wrap = |source| AweError::Pade { order: q, source };
        let ms = scale_seq(&self.moments.m, self.tau);
        let dms = scale_seq(&dm, self.tau);
        let b = solve_hankel(&ms, q).map_err(wrap)?;
        let a = Mat::from_fn(q, q, |r, j| ms[q + r - (j + 1)]);
        let rhs: Vec<f64> = (0..q)
            .map(|r| {
                let mut v = -dms[q + r];
                for j in 0..q {
                    v -= dms[q + r - (j + 1)] * b[j];
                }
                v
            })
            .collect();
        let db = a.solve(&rhs).map_err(wrap)?;
        // Numerator a_j = Σ_{i=0..j} b_i m'_{j−i} with b_0 = 1 (j < q).
        let b_full: Vec<f64> = std::iter::once(1.0).chain(b.iter().copied()).collect();
        let db_full: Vec<f64> = std::iter::once(0.0).chain(db.iter().copied()).collect();
        let mut a_c = vec![0.0; q];
        let mut da_c = vec![0.0; q];
        for j in 0..q {
            for i in 0..=j {
                a_c[j] += b_full[i] * ms[j - i];
                da_c[j] += db_full[i] * ms[j - i] + b_full[i] * dms[j - i];
            }
        }
        let num = Poly::new(a_c.clone());
        if num.degree() == 0 || num.is_zero() {
            return Ok(Vec::new());
        }
        let dnum = num.derivative();
        let zeros = num.roots().map_err(wrap)?;
        let mut out = Vec::with_capacity(zeros.len());
        for &zs in &zeros {
            let mut dnval = Complex64::ZERO;
            let mut pw = Complex64::ONE;
            for &daj in &da_c {
                dnval += daj * pw;
                pw *= zs;
            }
            let deriv = dnum.eval_complex(zs);
            if deriv.abs() == 0.0 {
                continue;
            }
            let dzs = -dnval / deriv;
            out.push((zs / self.tau, dzs / self.tau));
        }
        Ok(out)
    }

    /// Residues of the order-`q` model together with `∂k_i/∂α`, by
    /// differentiating the Vandermonde residue system
    /// `Σ_i k_i/p_i^{j+1} = −m_j`:
    ///
    /// ```text
    /// V·dk = −dm − dV·k,   dV[j][i] = −(j+1)·dp_i / p_i^{j+2}
    /// ```
    ///
    /// Returned tuples are `(pole, residue, ∂residue/∂α)` aligned with
    /// [`SensitivityAnalysis::pole_sensitivities`].
    ///
    /// # Errors
    ///
    /// Propagates Padé failures and bad element references.
    pub fn residue_sensitivities(
        &self,
        circuit: &Circuit,
        id: ElementId,
    ) -> Result<Vec<(Complex64, Complex64, Complex64)>, AweError> {
        use awesym_linalg::CMat;
        let dm = self.moment_sensitivities(circuit, id)?;
        let pole_info = self.pole_sensitivities_from_dm(&dm)?;
        let q = self.q;
        let wrap = |source| AweError::Pade { order: q, source };
        let poles: Vec<Complex64> = pole_info.iter().map(|(p, _)| *p).collect();
        let dpoles: Vec<Complex64> = pole_info.iter().map(|(_, dp)| *dp).collect();
        let residues =
            awesym_linalg::solve_vandermonde_complex(&poles, &self.moments.m[..q]).map_err(wrap)?;
        // Assemble V and the RHS −dm − dV·k (note our convention stores
        // V[j][i] = −1/p^{j+1}, matching solve_vandermonde_complex).
        let n = q;
        let mut v = CMat::zeros(n, n);
        let mut rhs = vec![Complex64::ZERO; n];
        for j in 0..n {
            rhs[j] = Complex64::from_re(dm[j]);
        }
        for (i, (&p, &dp)) in poles.iter().zip(dpoles.iter()).enumerate() {
            let inv = p.recip();
            let mut w = inv; // 1/p^{j+1}, starting at j = 0
            for j in 0..n {
                v[(j, i)] = -w;
                // dV[j][i] = (j+1)·dp/p^{j+2}  (derivative of −p^{−(j+1)}).
                let dv = (j as f64 + 1.0) * dp * w * inv;
                rhs[j] -= dv * residues[i];
                w *= inv;
            }
        }
        let dk = v.solve(&rhs).map_err(wrap)?;
        Ok(poles
            .into_iter()
            .zip(residues)
            .zip(dk)
            .map(|((p, k), d)| (p, k, d))
            .collect())
    }

    /// Normalized pole sensitivity score of one element:
    /// `max_i |α · ∂p_i/∂α| / |p_i|`.
    ///
    /// # Errors
    ///
    /// Propagates Padé failures and bad references.
    pub fn normalized_score(&self, circuit: &Circuit, id: ElementId) -> Result<f64, AweError> {
        let alpha = circuit.element(id).value;
        let ps = self.pole_sensitivities(circuit, id)?;
        Ok(ps
            .iter()
            .map(|(p, dp)| {
                let pa = p.abs();
                if pa > 0.0 {
                    (*dp * alpha).abs() / pa
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max))
    }

    /// Ranks every non-source element by normalized pole sensitivity,
    /// descending — the paper's automatic mechanism for choosing symbolic
    /// elements. Elements whose sensitivities cannot be computed are
    /// skipped.
    pub fn rank_elements(&self, circuit: &Circuit) -> Vec<(ElementId, f64)> {
        let mut scores: Vec<(ElementId, f64)> = (0..circuit.num_elements())
            .filter_map(|i| {
                let id = ElementId(i);
                let e = circuit.element(id);
                use awesym_circuit::ElementKind::*;
                if matches!(e.kind, Vsource | Isource) {
                    return None;
                }
                self.normalized_score(circuit, id)
                    .ok()
                    .filter(|s| s.is_finite())
                    .map(|s| (id, s))
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scores
    }

    /// Sum `lᵀ·X_k` consistency check value (used in tests).
    #[doc(hidden)]
    pub fn check_m0(&self) -> f64 {
        dot(self.engine.selector(), &self.moments.x[0])
    }
}

fn scale_seq(m: &[f64], tau: f64) -> Vec<f64> {
    m.iter()
        .enumerate()
        .map(|(k, &v)| v / tau.powi(k as i32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;
    use awesym_circuit::{Circuit, Element};
    use awesym_mna::Mna;

    fn engine_for(c: &Circuit, input: ElementId, out: awesym_circuit::Node) -> MomentEngine {
        MomentEngine::new(Mna::build(c).unwrap(), input, out).unwrap()
    }

    /// Finite-difference reference for ∂m/∂value.
    fn fd_moments(
        c: &Circuit,
        input: ElementId,
        out: awesym_circuit::Node,
        id: ElementId,
        count: usize,
    ) -> Vec<f64> {
        let v0 = c.element(id).value;
        let h = v0.abs() * 1e-6;
        let mut cp = c.clone();
        cp.set_value(id, v0 + h);
        let mp = engine_for(&cp, input, out).compute(count).unwrap().m;
        let mut cm = c.clone();
        cm.set_value(id, v0 - h);
        let mm = engine_for(&cm, input, out).compute(count).unwrap().m;
        mp.iter()
            .zip(mm.iter())
            .map(|(a, b)| (a - b) / (2.0 * h))
            .collect()
    }

    #[test]
    fn moment_sensitivity_matches_finite_difference() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let eng = engine_for(&w.circuit, w.input, w.output);
        let sens = SensitivityAnalysis::new(&eng, 2).unwrap();
        for name in ["R1", "R2", "C1", "C2"] {
            let id = w.circuit.find(name).unwrap();
            let adj = sens.moment_sensitivities(&w.circuit, id).unwrap();
            let fd = fd_moments(&w.circuit, w.input, w.output, id, 4);
            // Exact-zero sensitivities (e.g. ∂m₀/∂R) only show central-
            // difference rounding noise ≈ ε·|m_k|/h; tolerate that floor.
            let v0 = w.circuit.element(id).value;
            let h = v0.abs() * 1e-6;
            let mom = sens.moments();
            for (k, (a, f)) in adj.iter().zip(fd.iter()).enumerate() {
                let noise = 1e-13 * mom[k].abs() / h;
                assert!(
                    (a - f).abs() < 1e-4 * f.abs() + noise,
                    "{name} m{k}: adjoint {a} vs fd {f}"
                );
            }
        }
    }

    #[test]
    fn vccs_sensitivity_matches_finite_difference() {
        // gm stage: V1 → R → node a, VCCS(a) → node b with load R‖C.
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let na = c.node("a");
        let nb = c.node("b");
        let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("Rs", n1, na, 1e3));
        c.add(Element::capacitor("Ca", na, Circuit::GROUND, 1e-12));
        let g = c.add(Element::vccs(
            "G1",
            nb,
            Circuit::GROUND,
            na,
            Circuit::GROUND,
            2e-3,
        ));
        c.add(Element::resistor("RL", nb, Circuit::GROUND, 5e3));
        c.add(Element::capacitor("CL", nb, Circuit::GROUND, 2e-12));
        let eng = engine_for(&c, v, nb);
        let sens = SensitivityAnalysis::new(&eng, 2).unwrap();
        let adj = sens.moment_sensitivities(&c, g).unwrap();
        let fd = fd_moments(&c, v, nb, g, 4);
        for (a, f) in adj.iter().zip(fd.iter()) {
            assert!((a - f).abs() / f.abs().max(1e-30) < 1e-4, "{a} vs {f}");
        }
    }

    #[test]
    fn pole_sensitivity_matches_finite_difference() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let eng = engine_for(&w.circuit, w.input, w.output);
        let sens = SensitivityAnalysis::new(&eng, 2).unwrap();
        let id = w.circuit.find("C1").unwrap();
        let ps = sens.pole_sensitivities(&w.circuit, id).unwrap();
        // Finite difference on the true poles.
        let poles_of = |c1: f64| {
            let (g1, g2, c2) = (1e-3, 2e-3, 3e-9);
            let (r1, r2) =
                awesym_linalg::quadratic_roots(g1 * g2, g2 * c1 + g2 * c2 + g1 * c2, c1 * c2);
            let mut v = [r1.re, r2.re];
            v.sort_by(f64::total_cmp);
            v
        };
        let h = 1e-15;
        let pp = poles_of(1e-9 + h);
        let pm = poles_of(1e-9 - h);
        let fd: Vec<f64> = pp
            .iter()
            .zip(pm.iter())
            .map(|(a, b)| (a - b) / (2.0 * h))
            .collect();
        for (p, dp) in &ps {
            // Match each computed pole with the closest truth slot.
            let truth_poles = poles_of(1e-9);
            let idx = if (p.re - truth_poles[0]).abs() < (p.re - truth_poles[1]).abs() {
                0
            } else {
                1
            };
            assert!(
                (dp.re - fd[idx]).abs() / fd[idx].abs().max(1e-30) < 1e-3,
                "pole {p}: {dp} vs fd {}",
                fd[idx]
            );
        }
    }

    #[test]
    fn ranking_separates_significant_elements() {
        // A huge shunt resistor barely matters; C1 dominates the pole.
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1e3));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-9));
        c.add(Element::resistor("Rhuge", n2, Circuit::GROUND, 1e12));
        let _ = v;
        let eng = engine_for(&c, v, n2);
        let sens = SensitivityAnalysis::new(&eng, 1).unwrap();
        let ranked = sens.rank_elements(&c);
        assert_eq!(ranked.len(), 3);
        let pos = |name: &str| {
            ranked
                .iter()
                .position(|(id, _)| c.element(*id).name == name)
                .unwrap()
        };
        assert!(pos("Rhuge") > pos("C1"));
        assert!(pos("Rhuge") > pos("R1"));
        // C1 and R1 both set the single pole 1/(R1·C1): equal normalized scores.
        let s_c1 = ranked[pos("C1")].1;
        let s_r1 = ranked[pos("R1")].1;
        assert!((s_c1 - s_r1).abs() / s_c1 < 1e-6);
        assert!(ranked[pos("Rhuge")].1 < 1e-6);
    }

    #[test]
    fn residue_sensitivity_matches_finite_difference() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let eng = engine_for(&w.circuit, w.input, w.output);
        let sens = SensitivityAnalysis::new(&eng, 2).unwrap();
        let id = w.circuit.find("C2").unwrap();
        let triples = sens.residue_sensitivities(&w.circuit, id).unwrap();
        assert_eq!(triples.len(), 2);
        // Finite difference on the residues of the order-2 ROM.
        let residues_at = |c2: f64| -> Vec<(Complex64, Complex64)> {
            let mut ckt = w.circuit.clone();
            ckt.set_value(id, c2);
            let eng = engine_for(&ckt, w.input, w.output);
            let m = eng.compute(4).unwrap().m;
            let rom = crate::pade_rom(&m, 2, true).unwrap();
            rom.poles()
                .iter()
                .copied()
                .zip(rom.residues().iter().copied())
                .collect()
        };
        let h = 3e-9 * 1e-6;
        let plus = residues_at(3e-9 + h);
        let minus = residues_at(3e-9 - h);
        for (p, k, dk) in &triples {
            // Match by pole.
            let find = |set: &Vec<(Complex64, Complex64)>, target: Complex64| {
                set.iter()
                    .min_by(|a, b| {
                        (a.0 - target)
                            .abs()
                            .partial_cmp(&(b.0 - target).abs())
                            .unwrap()
                    })
                    .unwrap()
                    .1
            };
            let fd = (find(&plus, *p) - find(&minus, *p)) / (2.0 * h);
            assert!(
                (*dk - fd).abs() < 1e-3 * fd.abs().max(k.abs() * 1e-6),
                "pole {p}: dk {dk} vs fd {fd}"
            );
        }
    }

    #[test]
    fn zero_sensitivity_matches_finite_difference() {
        // Two-stage RC with a feed-forward capacitor: H has a finite zero
        // whose location moves with Cf.
        fn build(cf: f64) -> (Circuit, ElementId, awesym_circuit::Node) {
            let mut c = Circuit::new();
            let n1 = c.node("1");
            let n2 = c.node("2");
            let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
            c.add(Element::resistor("R1", n1, n2, 1e3));
            c.add(Element::capacitor("Cf", n1, n2, cf));
            c.add(Element::capacitor("C1", n2, Circuit::GROUND, 2e-9));
            c.add(Element::resistor("R2", n2, Circuit::GROUND, 5e3));
            (c, v, n2)
        }
        // True zero: current into n2 through R1 ‖ Cf: zero at s = −1/(R1·Cf).
        let cf = 1e-9;
        let (c, v, out) = build(cf);
        let eng = engine_for(&c, v, out);
        let sens = SensitivityAnalysis::new(&eng, 2).unwrap();
        let id = c.find("Cf").unwrap();
        let zs = sens.zero_sensitivities(&c, id).unwrap();
        assert_eq!(zs.len(), 1);
        let (z, dz) = zs[0];
        assert!(
            (z.re + 1.0 / (1e3 * cf)).abs() < 1e-3 * z.re.abs(),
            "zero {z}"
        );
        // dz/dCf = +1/(R1·Cf²).
        let truth = 1.0 / (1e3 * cf * cf);
        assert!(
            (dz.re - truth).abs() < 1e-3 * truth,
            "dz {dz} vs truth {truth}"
        );
    }

    #[test]
    fn bad_element_reference_is_error() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let eng = engine_for(&w.circuit, w.input, w.output);
        let sens = SensitivityAnalysis::new(&eng, 1).unwrap();
        assert!(sens
            .moment_sensitivities(&w.circuit, ElementId(999))
            .is_err());
        assert!(sens.check_m0().is_finite());
    }
}
