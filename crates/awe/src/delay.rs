//! Closed-form interconnect delay metrics built on circuit moments.
//!
//! The paper's conclusion positions AWEsymbolic as a modeling methodology
//! for "interconnect delay in physical CAD design tools". This module
//! collects the classical moment-based delay estimates that grew out of
//! AWE, so compiled models can feed timing engines without a full
//! pole/residue evaluation:
//!
//! - **Elmore**: `T_D = −m₁` — the mean of the impulse response, an upper
//!   bound for the 50 % delay of RC trees;
//! - **ln2·Elmore**: the step-delay heuristic `T₅₀ ≈ ln2·(−m₁)`;
//! - **D2M**: `ln2 · m₁²/√m₂` (Ismail et al.) — two moments, markedly
//!   better accuracy near-resistance-dominated nodes;
//! - **two-pole**: fit `p₁, p₂` from `m₁…m₃` and solve the 50 % crossing
//!   of the resulting two-pole step response numerically.

use crate::{pade_rom, AweError};

/// Moment-based delay estimates for one node, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayEstimates {
    /// Elmore delay `−m₁` (mean of the impulse response).
    pub elmore: f64,
    /// `ln2 · (−m₁)` step-delay heuristic.
    pub ln2_elmore: f64,
    /// The D2M two-moment metric `ln2 · m₁² / √m₂`.
    pub d2m: f64,
    /// 50 % delay of the two-pole (q = 2) reduced model, when it exists.
    pub two_pole: Option<f64>,
}

/// Computes the delay metric family from transfer-function moments
/// (`m[0] = DC gain`, unit step assumed, at least 2 moments; 4 for the
/// two-pole entry).
///
/// # Errors
///
/// Returns [`AweError::NotEnoughMoments`] when fewer than two moments are
/// supplied. A failed two-pole fit degrades to `two_pole: None` rather
/// than erroring — monotone RC nodes sometimes expose only one pole.
pub fn delay_estimates(moments: &[f64]) -> Result<DelayEstimates, AweError> {
    if moments.len() < 2 {
        return Err(AweError::NotEnoughMoments {
            needed: 2,
            got: moments.len(),
        });
    }
    let m1 = moments[1];
    let elmore = -m1;
    let ln2 = std::f64::consts::LN_2;
    let d2m = if moments.len() >= 3 && moments[2] > 0.0 {
        ln2 * m1 * m1 / moments[2].sqrt()
    } else {
        ln2 * elmore
    };
    // Two-pole fit, degrading to one pole when the circuit exposes only
    // one (singular q = 2 Hankel system).
    let two_pole = if moments.len() >= 4 {
        pade_rom(&moments[..4], 2, true)
            .ok()
            .or_else(|| pade_rom(&moments[..2], 1, true).ok())
            .and_then(|rom| rom.stabilized())
            .and_then(|rom| rom.delay_50())
    } else {
        None
    };
    Ok(DelayEstimates {
        elmore,
        ln2_elmore: ln2 * elmore,
        d2m,
        two_pole,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AweAnalysis, MomentEngine};
    use awesym_circuit::generators::{rc_ladder, rc_tree};
    use awesym_mna::Mna;

    fn moments_of(w: &awesym_circuit::generators::Workload, count: usize) -> Vec<f64> {
        let mna = Mna::build(&w.circuit).unwrap();
        MomentEngine::new(mna, w.input, w.output)
            .unwrap()
            .compute(count)
            .unwrap()
            .m
    }

    #[test]
    fn single_pole_metrics_are_exact_family() {
        // H = 1/(1+sτ): Elmore = τ, true 50% delay = ln2·τ, D2M = ln2·τ.
        let tau = 1e-9;
        let m = [1.0, -tau, tau * tau, -tau * tau * tau];
        let d = delay_estimates(&m).unwrap();
        assert!((d.elmore - tau).abs() < 1e-21);
        assert!((d.ln2_elmore - std::f64::consts::LN_2 * tau).abs() < 1e-21);
        assert!((d.d2m - std::f64::consts::LN_2 * tau).abs() < 1e-15);
        let tp = d.two_pole.unwrap();
        assert!(
            (tp - std::f64::consts::LN_2 * tau).abs() < 1e-3 * tau,
            "{tp}"
        );
    }

    #[test]
    fn metric_accuracy_ordering_on_ladder() {
        // Reference: the 50% delay of a high-order (q=4) AWE model.
        let w = rc_ladder(30, 50.0, 0.5e-12);
        let m = moments_of(&w, 8);
        let d = delay_estimates(&m).unwrap();
        let truth = AweAnalysis::new(&w.circuit, w.input, w.output)
            .unwrap()
            .rom_stable(4)
            .unwrap()
            .delay_50()
            .unwrap();
        let err = |x: f64| (x - truth).abs() / truth;
        // Elmore over-estimates the far-end 50% delay; ln2·Elmore and D2M
        // both land close; the two-pole fit is the best of the family.
        assert!(d.elmore > truth, "elmore {} vs truth {truth}", d.elmore);
        assert!(err(d.d2m) < 0.25, "d2m err {}", err(d.d2m));
        let tp = d.two_pole.unwrap();
        assert!(err(tp) < 0.05, "two-pole err {}", err(tp));
        assert!(err(tp) <= err(d.d2m) + 1e-9);
    }

    #[test]
    fn tree_leaf_metrics_behave() {
        let w = rc_tree(4, 40.0, 0.3e-12);
        let m = moments_of(&w, 4);
        let d = delay_estimates(&m).unwrap();
        assert!(d.elmore > 0.0);
        assert!(d.d2m > 0.0);
        assert!(d.two_pole.unwrap() > 0.0);
    }

    #[test]
    fn not_enough_moments_is_an_error() {
        assert!(matches!(
            delay_estimates(&[1.0]),
            Err(AweError::NotEnoughMoments { .. })
        ));
        // Two moments degrade gracefully (no m2 → D2M falls back).
        let d = delay_estimates(&[1.0, -1e-9]).unwrap();
        assert!(d.two_pole.is_none());
        assert!((d.d2m - d.ln2_elmore).abs() < 1e-21);
    }
}
