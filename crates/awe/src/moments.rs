//! Moment computation by recursive DC solves.

use crate::AweError;
use awesym_circuit::{ElementId, Node};
use awesym_mna::Mna;
use awesym_sparse::{LuOptions, SparseLu};

/// Computed moments of a transfer function together with the moment vectors
/// needed by sensitivity analysis.
#[derive(Debug, Clone)]
pub struct Moments {
    /// Output moments `m_k = lᵀ X_k`.
    pub m: Vec<f64>,
    /// Moment vectors `X_k` (state-space moments of the whole circuit).
    pub x: Vec<Vec<f64>>,
}

/// Factors `G` once and produces moments on demand.
///
/// The moment recursion is `G X_0 = b`, `G X_k = −C X_{k−1}`; each
/// additional moment costs one sparse matrix-vector product and one
/// forward/backward substitution — this is why AWE is more than an order of
/// magnitude cheaper than transient simulation.
#[derive(Debug)]
pub struct MomentEngine {
    lu: SparseLu<f64>,
    mna: Mna,
    b: Vec<f64>,
    l: Vec<f64>,
}

impl MomentEngine {
    /// Builds the engine: formulates the circuit (if not already done) and
    /// factors `G`.
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Mna`] when `G` is singular or the input is not an
    /// independent source.
    pub fn new(mna: Mna, input: ElementId, output: Node) -> Result<Self, AweError> {
        Self::with_probe(mna, input, &awesym_mna::Probe::NodeVoltage(output))
    }

    /// Builds the engine for an arbitrary probe (node voltage, branch
    /// current, or differential voltage).
    ///
    /// # Errors
    ///
    /// As [`MomentEngine::new`], plus [`AweError::Mna`] for a probe that
    /// names a branch without an explicit current.
    pub fn with_probe(
        mna: Mna,
        input: ElementId,
        probe: &awesym_mna::Probe,
    ) -> Result<Self, AweError> {
        let b = mna.unit_source_vector(input)?;
        let l = mna.probe_selector(probe)?;
        let lu =
            SparseLu::factor(mna.g(), LuOptions::default()).map_err(awesym_mna::MnaError::from)?;
        Ok(MomentEngine { lu, mna, b, l })
    }

    /// The underlying MNA system.
    pub fn mna(&self) -> &Mna {
        &self.mna
    }

    /// The factored `G` (shared with sensitivity analysis, which needs
    /// transposed solves on the same factors).
    pub fn lu(&self) -> &SparseLu<f64> {
        &self.lu
    }

    /// Output selector `l`.
    pub fn selector(&self) -> &[f64] {
        &self.l
    }

    /// Computes the first `count` moments (`m_0 … m_{count−1}`).
    ///
    /// # Errors
    ///
    /// Returns [`AweError::ZeroResponse`] when every computed moment is
    /// exactly zero.
    pub fn compute(&self, count: usize) -> Result<Moments, AweError> {
        // Sampled profiling hook (see `crate::profile`): one relaxed
        // atomic increment per call, clock reads only when admitted.
        let t0 = crate::profile::MOMENTS_SAMPLER
            .sample()
            .then(std::time::Instant::now);
        let result = (|| {
            let mut x = Vec::with_capacity(count);
            let mut m = Vec::with_capacity(count);
            let mut current = self.lu.solve(&self.b);
            for _ in 0..count {
                m.push(dot(&self.l, &current));
                x.push(current.clone());
                let rhs: Vec<f64> = self.mna.c().mul_vec(&current).iter().map(|v| -v).collect();
                current = self.lu.solve(&rhs);
            }
            if m.iter().all(|v| *v == 0.0) {
                return Err(AweError::ZeroResponse);
            }
            Ok(Moments { m, x })
        })();
        if let Some(t0) = t0 {
            crate::profile::record_moments(t0.elapsed());
        }
        result
    }

    /// Moments of the expansion about a *shifted* point `s₀` (real axis):
    /// `H(s) = Σ_k m_k^{(s₀)}·(s − s₀)^k`, computed from
    /// `(G + s₀C) X_0 = b`, `(G + s₀C) X_k = −C X_{k−1}`.
    ///
    /// Shifted expansions (frequency hops) are the classical AWE remedy
    /// when the `s = 0` Maclaurin series converges too slowly to resolve
    /// high-frequency poles; the Padé poles come out relative to `s₀`.
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Mna`] when `G + s₀C` is singular (i.e. `s₀` is
    /// a natural frequency of the circuit) and [`AweError::ZeroResponse`]
    /// for an all-zero sequence.
    pub fn compute_shifted(&self, s0: f64, count: usize) -> Result<Moments, AweError> {
        let a = self.mna.g().linear_combination(1.0, self.mna.c(), s0);
        let lu = SparseLu::factor(&a, LuOptions::default()).map_err(awesym_mna::MnaError::from)?;
        let mut x = Vec::with_capacity(count);
        let mut m = Vec::with_capacity(count);
        let mut current = lu.solve(&self.b);
        for _ in 0..count {
            m.push(dot(&self.l, &current));
            x.push(current.clone());
            let rhs: Vec<f64> = self.mna.c().mul_vec(&current).iter().map(|v| -v).collect();
            current = lu.solve(&rhs);
        }
        if m.iter().all(|v| *v == 0.0) {
            return Err(AweError::ZeroResponse);
        }
        Ok(Moments { m, x })
    }

    /// Adjoint moment vectors `Y_0 = G⁻ᵀ l`, `Y_{j+1} = −G⁻ᵀ Cᵀ Y_j`,
    /// used by the sensitivity chain rule.
    pub fn adjoint_vectors(&self, count: usize) -> Vec<Vec<f64>> {
        let mut ys = Vec::with_capacity(count);
        let mut current = self.lu.solve_transposed(&self.l);
        for _ in 0..count {
            ys.push(current.clone());
            let rhs: Vec<f64> = self
                .mna
                .c()
                .mul_vec_transposed(&current)
                .iter()
                .map(|v| -v)
                .collect();
            current = self.lu.solve_transposed(&rhs);
        }
        ys
    }
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::{Circuit, Element};

    /// Single-pole RC: H(s) = 1/(1 + sRC), m_k = (−RC)^k.
    fn single_rc(r: f64, c: f64) -> (Circuit, ElementId, Node) {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("1");
        let n2 = ckt.node("2");
        let v = ckt.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        ckt.add(Element::resistor("R1", n1, n2, r));
        ckt.add(Element::capacitor("C1", n2, Circuit::GROUND, c));
        (ckt, v, n2)
    }

    #[test]
    fn single_pole_moments_analytic() {
        let (ckt, v, out) = single_rc(1e3, 1e-9);
        let mna = Mna::build(&ckt).unwrap();
        let eng = MomentEngine::new(mna, v, out).unwrap();
        let mom = eng.compute(5).unwrap();
        let tau: f64 = 1e3 * 1e-9;
        for (k, &mk) in mom.m.iter().enumerate() {
            let truth = (-tau).powi(k as i32);
            assert!(
                (mk - truth).abs() < 1e-12 * truth.abs().max(1.0),
                "m{k} = {mk}, expected {truth}"
            );
        }
    }

    #[test]
    fn fig1_moments_match_series_expansion() {
        // Fig. 1 circuit: H = G1G2 / (C1C2 s² + (G2C1+G2C2+G1C2) s + G1G2).
        let (g1, g2, c1, c2) = (1e-3, 2e-3, 1e-9, 3e-9);
        let w = awesym_circuit::generators::fig1_rc(g1, g2, c1, c2);
        let mna = Mna::build(&w.circuit).unwrap();
        let eng = MomentEngine::new(mna, w.input, w.output).unwrap();
        let mom = eng.compute(4).unwrap();
        // Series of 1/(1 + a1 s + a2 s²): m0=1, m1=−a1, m2=a1²−a2,
        // m3=−a1³+2a1a2.
        let a1 = (g2 * c1 + g2 * c2 + g1 * c2) / (g1 * g2);
        let a2 = c1 * c2 / (g1 * g2);
        let truth = [1.0, -a1, a1 * a1 - a2, -a1 * a1 * a1 + 2.0 * a1 * a2];
        for (k, (&mk, &tk)) in mom.m.iter().zip(truth.iter()).enumerate() {
            assert!((mk - tk).abs() < 1e-12 * tk.abs().max(1.0), "m{k}");
        }
    }

    #[test]
    fn adjoint_consistency() {
        // Y_jᵀ b must equal m_j (both equal lᵀ (−G⁻¹C)^j G⁻¹ b).
        let (ckt, v, out) = single_rc(2e3, 1e-9);
        let mna = Mna::build(&ckt).unwrap();
        let eng = MomentEngine::new(mna, v, out).unwrap();
        let mom = eng.compute(4).unwrap();
        let ys = eng.adjoint_vectors(4);
        let b = eng.b.clone();
        for (j, y) in ys.iter().enumerate().take(4) {
            let yb = dot(y, &b);
            assert!((yb - mom.m[j]).abs() < 1e-12 * mom.m[j].abs().max(1.0));
        }
    }

    #[test]
    fn zero_response_detected() {
        // Output node disconnected from the input path (separate island with
        // its own ground return so G stays nonsingular).
        let mut ckt = Circuit::new();
        let n1 = ckt.node("1");
        let n2 = ckt.node("2");
        let v = ckt.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        ckt.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        ckt.add(Element::resistor("R2", n2, Circuit::GROUND, 1.0));
        let mna = Mna::build(&ckt).unwrap();
        let eng = MomentEngine::new(mna, v, n2).unwrap();
        assert!(matches!(eng.compute(4), Err(AweError::ZeroResponse)));
    }

    #[test]
    fn ladder_m1_is_minus_elmore_delay() {
        // For an RC ladder driven by a voltage source, −m1 at the far end is
        // the Elmore delay Σ_i R_path(i)·C_i.
        let w = awesym_circuit::generators::rc_ladder(4, 100.0, 1e-12);
        let mna = Mna::build(&w.circuit).unwrap();
        let eng = MomentEngine::new(mna, w.input, w.output).unwrap();
        let mom = eng.compute(2).unwrap();
        let elmore: f64 = (1..=4).map(|i| (i as f64) * 100.0 * 1e-12).sum();
        assert!((mom.m[0] - 1.0).abs() < 1e-12);
        assert!((-mom.m[1] - elmore).abs() < 1e-15);
    }
}
