//! Rational functions: quotients of multivariate polynomials.

use crate::{MPoly, SymbolSet};
use std::fmt;

/// A rational function `num/den` over a shared symbol set.
///
/// Normalization is light-weight (no multivariate GCD): zero numerators
/// collapse the denominator, shared *monomial* content cancels, and the
/// denominator's leading coefficient is scaled to 1 so structurally equal
/// quotients compare equal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ratio {
    num: MPoly,
    den: MPoly,
}

impl Ratio {
    /// Creates `num/den`.
    ///
    /// # Panics
    ///
    /// Panics when `den` is identically zero or when the operands range
    /// over different symbol counts.
    pub fn new(num: MPoly, den: MPoly) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        assert_eq!(num.nvars(), den.nvars(), "nvars mismatch");
        let mut r = Ratio { num, den };
        r.normalize();
        r
    }

    /// A polynomial as a ratio with denominator 1.
    pub fn from_poly(p: MPoly) -> Self {
        let n = p.nvars();
        Ratio {
            num: p,
            den: MPoly::one(n),
        }
    }

    /// A constant.
    pub fn constant(nvars: usize, c: f64) -> Self {
        Ratio::from_poly(MPoly::constant(nvars, c))
    }

    /// Numerator.
    pub fn num(&self) -> &MPoly {
        &self.num
    }

    /// Denominator.
    pub fn den(&self) -> &MPoly {
        &self.den
    }

    /// True when the numerator is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Sum (over the common denominator).
    pub fn add(&self, rhs: &Ratio) -> Ratio {
        if self.den == rhs.den {
            return Ratio::new(self.num.add(&rhs.num), self.den.clone());
        }
        Ratio::new(
            self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den)),
            self.den.mul(&rhs.den),
        )
    }

    /// Difference.
    pub fn sub(&self, rhs: &Ratio) -> Ratio {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Ratio {
        Ratio {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// Product.
    pub fn mul(&self, rhs: &Ratio) -> Ratio {
        Ratio::new(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }

    /// Quotient.
    ///
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    pub fn div(&self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero ratio");
        Ratio::new(self.num.mul(&rhs.den), self.den.mul(&rhs.num))
    }

    /// Evaluates at a point.
    ///
    /// # Panics
    ///
    /// Panics when `vals` has the wrong length.
    pub fn eval(&self, vals: &[f64]) -> f64 {
        self.num.eval(vals) / self.den.eval(vals)
    }

    /// Renders with symbol names as `(num)/(den)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolSet) -> impl fmt::Display + 'a {
        DisplayRatio { r: self, syms }
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = MPoly::one(self.den.nvars());
            return;
        }
        // Cancel the common monomial content (g.c.d. of monomials).
        let content = |p: &MPoly| -> Vec<u8> {
            let mut it = p.terms();
            let mut acc: Vec<u8> = it.next().map(|(e, _)| e.to_vec()).unwrap_or_default();
            for (e, _) in it {
                for (a, &b) in acc.iter_mut().zip(e.iter()) {
                    *a = (*a).min(b);
                }
            }
            acc
        };
        let cn = content(&self.num);
        let cd = content(&self.den);
        let shared: Vec<u8> = cn.iter().zip(cd.iter()).map(|(&a, &b)| a.min(b)).collect();
        if shared.iter().any(|&e| e > 0) {
            self.num = divide_monomial(&self.num, &shared);
            self.den = divide_monomial(&self.den, &shared);
        }
        // Scale so the denominator's first (lexicographically smallest
        // exponent) coefficient is 1.
        let lead = self.den.terms().next().map(|(_, c)| c);
        if let Some(c) = lead {
            if c != 0.0 && c != 1.0 {
                let inv = 1.0 / c;
                self.num = self.num.scale(inv);
                self.den = self.den.scale(inv);
            }
        }
    }
}

fn divide_monomial(p: &MPoly, m: &[u8]) -> MPoly {
    let nv = p.nvars();
    let mut out = MPoly::zero(nv);
    for (e, c) in p.terms() {
        let e2: Vec<u8> = e.iter().zip(m.iter()).map(|(&a, &b)| a - b).collect();
        out = out.add(&MPoly::monomial(nv, &e2, c));
    }
    out
}

struct DisplayRatio<'a> {
    r: &'a Ratio,
    syms: &'a SymbolSet,
}

impl fmt::Display for DisplayRatio<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.r.den.is_constant() && (self.r.den.constant_term() - 1.0).abs() < 1e-15 {
            write!(f, "{}", self.r.num.display(self.syms))
        } else {
            write!(
                f,
                "({}) / ({})",
                self.r.num.display(self.syms),
                self.r.den.display(self.syms)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolSet;

    fn xy() -> (SymbolSet, MPoly, MPoly) {
        let mut s = SymbolSet::new();
        let x = s.intern("x");
        let y = s.intern("y");
        (s.clone(), MPoly::var(&s, x), MPoly::var(&s, y))
    }

    #[test]
    fn field_identities_at_points() {
        let (_, x, y) = xy();
        let a = Ratio::new(x.clone(), y.add(&MPoly::one(2)));
        let b = Ratio::new(y.clone(), x.add(&MPoly::constant(2, 2.0)));
        let p = [1.3, 0.7];
        let check = |r: &Ratio, v: f64| assert!((r.eval(&p) - v).abs() < 1e-12);
        check(&a.add(&b), a.eval(&p) + b.eval(&p));
        check(&a.sub(&b), a.eval(&p) - b.eval(&p));
        check(&a.mul(&b), a.eval(&p) * b.eval(&p));
        check(&a.div(&b), a.eval(&p) / b.eval(&p));
    }

    #[test]
    fn same_denominator_addition_stays_small() {
        let (_, x, y) = xy();
        let d = x.add(&y);
        let a = Ratio::new(x.clone(), d.clone());
        let b = Ratio::new(y.clone(), d.clone());
        let s = a.add(&b);
        // (x+y)/(x+y) → monomial content won't cancel this (needs real GCD),
        // but the denominator must not square.
        assert_eq!(s.den(), &d);
    }

    #[test]
    fn monomial_content_cancels() {
        let (_, x, y) = xy();
        // (x²y)/(xy) → x/1
        let r = Ratio::new(x.pow(2).mul(&y), x.mul(&y));
        assert_eq!(r.num(), &x);
        assert!(r.den().is_constant());
    }

    #[test]
    fn zero_numerator_collapses() {
        let (_, x, y) = xy();
        let r = Ratio::new(MPoly::zero(2), x.mul(&y));
        assert!(r.is_zero());
        assert!(r.den().is_constant());
    }

    #[test]
    fn normalized_leading_one_makes_equality_structural() {
        let (_, x, y) = xy();
        let a = Ratio::new(x.scale(2.0), y.scale(2.0));
        let b = Ratio::new(x.clone(), y.clone());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let (_, x, _) = xy();
        let _ = Ratio::new(x, MPoly::zero(2));
    }

    #[test]
    fn display_forms() {
        let (s, x, y) = xy();
        let poly = Ratio::from_poly(x.clone());
        assert_eq!(format!("{}", poly.display(&s)), "x");
        let frac = Ratio::new(x, y);
        assert_eq!(format!("{}", frac.display(&s)), "(x) / (y)");
    }
}
