//! Always-compiled, sampled profile of tape evaluation.
//!
//! Every [`Evaluator`](crate::Evaluator) call passes a cheap
//! [`Sampler`] guard (one relaxed atomic increment); one call in
//! [`SAMPLE_EVERY`] additionally pays for two clock reads and a single
//! walk of the tape's instruction list to tally per-op-kind counts. No
//! feature gate: the profile you read is from the same binary that
//! served the traffic, and the steady-state overhead is one uncontended
//! `fetch_add` per call.
//!
//! The counters are process-global (tape evaluation happens on many
//! short-lived worker evaluators, so per-instance counters would vanish
//! with their workers). [`snapshot`] reads them; [`reset`] zeroes them
//! between bench phases.

use crate::{Tape, TapeOp};
use awesym_obs::{Counter, Sampler};
use std::time::Duration;

/// One profiled call per this many evaluator calls.
pub const SAMPLE_EVERY: u64 = 64;

/// Names of the tape op kinds, in `kind_index` order.
pub const OP_KINDS: [&str; 9] = [
    "const", "sym", "add", "sub", "mul", "div", "neg", "sqrt", "muladd",
];

pub(crate) static SAMPLER: Sampler = Sampler::new(SAMPLE_EVERY);

static SAMPLED_CALLS: Counter = Counter::new();
static POINTS: Counter = Counter::new();
static TAPE_OPS: Counter = Counter::new();
static NANOS: Counter = Counter::new();
static BY_KIND: [Counter; 9] = [
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
];

fn kind_index(op: &TapeOp) -> usize {
    match op {
        TapeOp::Const(_) => 0,
        TapeOp::Sym(_) => 1,
        TapeOp::Add(..) => 2,
        TapeOp::Sub(..) => 3,
        TapeOp::Mul(..) => 4,
        TapeOp::Div(..) => 5,
        TapeOp::Neg(_) => 6,
        TapeOp::Sqrt(_) => 7,
        TapeOp::MulAdd(..) => 8,
    }
}

/// Folds one sampled call into the profile: `points` tape replays of
/// `tape` took `elapsed`. One pass over the instruction list, scaled by
/// the point count — never a per-point cost.
pub(crate) fn record(tape: &Tape, points: usize, elapsed: Duration) {
    let points = points as u64;
    let mut kind_counts = [0u64; 9];
    for op in tape.ops() {
        kind_counts[kind_index(op)] += 1;
    }
    for (counter, count) in BY_KIND.iter().zip(kind_counts) {
        counter.add(count * points);
    }
    SAMPLED_CALLS.inc();
    POINTS.add(points);
    TAPE_OPS.add(tape.len() as u64 * points);
    NANOS.add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// Point-in-time view of the sampled evaluation profile.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalProfile {
    /// Calls that were admitted by the sampler and timed.
    pub sampled_calls: u64,
    /// Points evaluated across the sampled calls.
    pub points: u64,
    /// Tape instructions executed across the sampled calls.
    pub tape_ops: u64,
    /// Wall-clock nanoseconds across the sampled calls.
    pub nanos: u64,
    /// Executed-instruction tally per op kind (same order as
    /// [`OP_KINDS`]).
    pub ops_by_kind: [(&'static str, u64); 9],
}

impl EvalProfile {
    /// Tape instructions per second over the sampled calls (0 when no
    /// time was recorded).
    pub fn ops_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.tape_ops as f64 * 1e9 / self.nanos as f64
        }
    }

    /// Points per second over the sampled calls (0 when no time was
    /// recorded).
    pub fn points_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.points as f64 * 1e9 / self.nanos as f64
        }
    }
}

/// Reads the global profile.
pub fn snapshot() -> EvalProfile {
    let mut ops_by_kind = [("", 0u64); 9];
    for (slot, (name, counter)) in ops_by_kind.iter_mut().zip(OP_KINDS.iter().zip(&BY_KIND)) {
        *slot = (name, counter.get());
    }
    EvalProfile {
        sampled_calls: SAMPLED_CALLS.get(),
        points: POINTS.get(),
        tape_ops: TAPE_OPS.get(),
        nanos: NANOS.get(),
        ops_by_kind,
    }
}

/// Zeroes the global profile (bench phase boundaries).
pub fn reset() {
    SAMPLED_CALLS.take();
    POINTS.take();
    TAPE_OPS.take();
    NANOS.take();
    for c in &BY_KIND {
        c.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprGraph;

    #[test]
    fn record_tallies_ops_points_and_kinds() {
        // Exactness is asserted through `record` directly (the counters
        // are process-global, so sampled admissions from other tests
        // running in parallel make delta equality on the public path
        // racy; inequalities cover that path below).
        let mut g = ExprGraph::new(2);
        let (x, y) = (g.sym(0), g.sym(1));
        let e = g.mul(x, y);
        let f = g.compile(&[e]);
        let before = snapshot();
        record(f.tape(), 10, Duration::from_nanos(500));
        let after = snapshot();
        assert_eq!(after.sampled_calls - before.sampled_calls, 1);
        assert_eq!(after.points - before.points, 10);
        // The tape is sym, sym, mul: 3 ops per point.
        assert_eq!(after.tape_ops - before.tape_ops, 30);
        assert_eq!(after.ops_by_kind[4].0, "mul");
        assert_eq!(after.ops_by_kind[4].1 - before.ops_by_kind[4].1, 10);
        assert_eq!(after.ops_by_kind[1].0, "sym");
        assert_eq!(after.ops_by_kind[1].1 - before.ops_by_kind[1].1, 20);
        assert!(after.nanos - before.nanos >= 500);
        assert!(after.ops_per_sec() > 0.0);
        assert!(after.points_per_sec() > 0.0);
    }

    #[test]
    fn sampler_admits_eval_batch_calls() {
        let mut g = ExprGraph::new(2);
        let (x, y) = (g.sym(0), g.sym(1));
        let e = g.mul(x, y);
        let f = g.compile(&[e]);
        let ev = f.evaluator();
        let points: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64, 2.0]).collect();
        let mut out = vec![0.0; points.len()];
        let before = snapshot();
        // 2·SAMPLE_EVERY calls guarantee ≥ 2 admissions no matter where
        // the shared tick currently stands (other tests tick it too).
        for _ in 0..2 * SAMPLE_EVERY {
            ev.eval_batch(&points, &mut out);
        }
        let after = snapshot();
        assert!(after.sampled_calls >= before.sampled_calls + 2);
        assert!(after.points >= before.points + 2 * 16);
        assert!(after.tape_ops >= before.tape_ops + 2 * 16 * 3);
    }
}
