//! Interned symbol names.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned symbol (index into its [`SymbolSet`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Sym(pub u32);

/// An ordered set of symbol names. Polynomials and compiled tapes refer to
/// symbols by index, and evaluation takes a value slice in the same order.
///
/// # Example
///
/// ```
/// use awesym_symbolic::SymbolSet;
///
/// let mut s = SymbolSet::new();
/// let a = s.intern("g_out_q14");
/// let b = s.intern("c_comp");
/// assert_eq!(s.intern("g_out_q14"), a); // stable
/// assert_eq!(s.name(b), "c_comp");
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SymbolSet {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, Sym>,
}

impl SymbolSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SymbolSet::default()
    }

    /// Interns a name, returning the existing handle when already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), s);
        s
    }

    /// Looks up a name without interning.
    pub fn find(&self, name: &str) -> Option<Sym> {
        // The index map may be empty after deserialization; fall back to a
        // linear scan in that case.
        if let Some(&s) = self.index.get(name) {
            return Some(s);
        }
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Sym(i as u32))
    }

    /// Name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the handle does not belong to this set.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over the names in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

impl fmt::Display for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut s = SymbolSet::new();
        let a = s.intern("x");
        let b = s.intern("y");
        assert_eq!(s.intern("x"), a);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.find("y"), Some(b));
        assert_eq!(s.find("z"), None);
    }

    #[test]
    fn display_lists_names() {
        let mut s = SymbolSet::new();
        s.intern("a");
        s.intern("b");
        assert_eq!(s.to_string(), "[a, b]");
    }

    #[test]
    fn serde_round_trip_preserves_lookup() {
        let mut s = SymbolSet::new();
        s.intern("g1");
        s.intern("c1");
        let json = serde_json::to_string(&s).unwrap();
        let back: SymbolSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name(Sym(1)), "c1");
        assert_eq!(back.find("g1"), Some(Sym(0)));
    }
}
