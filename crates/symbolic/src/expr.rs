//! Hash-consed expression DAG and the compiled evaluation tape.
//!
//! This is the "compilation" in *AWEsymbolic: Compiled Analysis…*: symbolic
//! moments (polynomials and quotients in the symbols) are lowered once into
//! a flat register program; each subsequent evaluation at concrete symbol
//! values replays the tape — a handful of multiply-adds instead of a full
//! circuit analysis.
//!
//! Compilation runs the [`crate::opt`] pass pipeline by default (constant
//! folding, CSE, neg/sub and mul-add fusion, dead-op elimination, and
//! liveness-based register reuse); [`CompileOptions`] is the escape hatch
//! for inspecting the raw lowering.

use crate::opt::{self, CompileOptions, OptLevel};
use crate::{AffineTail, Evaluator, MPoly};
use std::collections::HashMap;

/// Handle to a node of an [`ExprGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    Const(f64),
    Sym(u32),
    Add(ExprId, ExprId),
    Mul(ExprId, ExprId),
    Div(ExprId, ExprId),
    Neg(ExprId),
    Sqrt(ExprId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Sym(u32),
    Add(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    Sqrt(u32),
}

/// A hash-consed expression DAG with constant folding.
///
/// Structurally identical subexpressions share one node (common-
/// subexpression elimination by construction), so compiling several
/// symbolic moments that share the determinant `D` and its powers costs
/// each shared piece once.
///
/// # Example
///
/// ```
/// use awesym_symbolic::ExprGraph;
///
/// let mut g = ExprGraph::new(2);
/// let x = g.sym(0);
/// let y = g.sym(1);
/// let xy = g.mul(x, y);
/// let e = g.add(xy, xy); // shares the xy node
/// let f = g.compile(&[e]);
/// assert_eq!(f.eval(&[3.0, 4.0])[0], 24.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprGraph {
    nodes: Vec<Node>,
    cache: HashMap<Key, ExprId>,
    n_syms: usize,
}

impl ExprGraph {
    /// Creates a graph over `n_syms` symbols.
    pub fn new(n_syms: usize) -> Self {
        ExprGraph {
            nodes: Vec::new(),
            cache: HashMap::new(),
            n_syms,
        }
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn intern(&mut self, key: Key, node: Node) -> ExprId {
        if let Some(&id) = self.cache.get(&key) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.cache.insert(key, id);
        id
    }

    /// A constant node.
    pub fn constant(&mut self, c: f64) -> ExprId {
        self.intern(Key::Const(c.to_bits()), Node::Const(c))
    }

    /// A symbol node.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn sym(&mut self, i: u32) -> ExprId {
        assert!((i as usize) < self.n_syms, "symbol index out of range");
        self.intern(Key::Sym(i), Node::Sym(i))
    }

    fn const_of(&self, id: ExprId) -> Option<f64> {
        match self.nodes[id.0 as usize] {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Sum with folding (`0 + x = x`, const + const folds).
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x + y),
            (Some(0.0), None) => return b,
            (None, Some(0.0)) => return a,
            _ => {}
        }
        // Canonical operand order for better sharing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern(Key::Add(a.0, b.0), Node::Add(a, b))
    }

    /// Difference (`a + (−b)`).
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let nb = self.neg(b);
        self.add(a, nb)
    }

    /// Product with folding (`0·x = 0`, `1·x = x`, const·const folds).
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x * y),
            (Some(0.0), None) | (None, Some(0.0)) => return self.constant(0.0),
            (Some(1.0), None) => return b,
            (None, Some(1.0)) => return a,
            _ => {}
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern(Key::Mul(a.0, b.0), Node::Mul(a, b))
    }

    /// Quotient with folding.
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x / y),
            (None, Some(1.0)) => return a,
            _ => {}
        }
        self.intern(Key::Div(a.0, b.0), Node::Div(a, b))
    }

    /// Negation with folding (`−(−x) = x`).
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        if let Some(c) = self.const_of(a) {
            return self.constant(-c);
        }
        if let Node::Neg(inner) = self.nodes[a.0 as usize] {
            return inner;
        }
        self.intern(Key::Neg(a.0), Node::Neg(a))
    }

    /// Square root.
    pub fn sqrt(&mut self, a: ExprId) -> ExprId {
        if let Some(c) = self.const_of(a) {
            if c >= 0.0 {
                return self.constant(c.sqrt());
            }
        }
        self.intern(Key::Sqrt(a.0), Node::Sqrt(a))
    }

    /// Integer power by binary decomposition (shares squarings).
    pub fn powi(&mut self, a: ExprId, mut n: u32) -> ExprId {
        if n == 0 {
            return self.constant(1.0);
        }
        let mut base = a;
        let mut acc: Option<ExprId> = None;
        while n > 0 {
            if n & 1 == 1 {
                acc = Some(match acc {
                    None => base,
                    Some(x) => self.mul(x, base),
                });
            }
            n >>= 1;
            if n > 0 {
                base = self.mul(base, base);
            }
        }
        acc.expect("n > 0")
    }

    /// Lowers a polynomial into the graph.
    ///
    /// # Panics
    ///
    /// Panics when the polynomial ranges over a different symbol count.
    pub fn poly(&mut self, p: &MPoly) -> ExprId {
        assert_eq!(p.nvars(), self.n_syms, "nvars mismatch");
        let mut acc = self.constant(0.0);
        for (exps, coeff) in p.terms() {
            let mut term = self.constant(coeff);
            for (i, &e) in exps.iter().enumerate() {
                if e > 0 {
                    let s = self.sym(i as u32);
                    let pw = self.powi(s, e as u32);
                    term = self.mul(term, pw);
                }
            }
            acc = self.add(acc, term);
        }
        acc
    }

    /// Direct recursive evaluation (reference implementation for tests;
    /// prefer [`ExprGraph::compile`] + [`CompiledFn::eval`] in hot paths).
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the graph's symbol count.
    pub fn eval(&self, id: ExprId, vals: &[f64]) -> f64 {
        assert_eq!(vals.len(), self.n_syms, "value vector length mismatch");
        let mut memo = vec![f64::NAN; self.nodes.len()];
        self.eval_rec(id, vals, &mut memo)
    }

    fn eval_rec(&self, id: ExprId, vals: &[f64], memo: &mut [f64]) -> f64 {
        let i = id.0 as usize;
        if !memo[i].is_nan() {
            return memo[i];
        }
        let v = match self.nodes[i] {
            Node::Const(c) => c,
            Node::Sym(s) => vals[s as usize],
            Node::Add(a, b) => self.eval_rec(a, vals, memo) + self.eval_rec(b, vals, memo),
            Node::Mul(a, b) => self.eval_rec(a, vals, memo) * self.eval_rec(b, vals, memo),
            Node::Div(a, b) => self.eval_rec(a, vals, memo) / self.eval_rec(b, vals, memo),
            Node::Neg(a) => -self.eval_rec(a, vals, memo),
            Node::Sqrt(a) => self.eval_rec(a, vals, memo).sqrt(),
        };
        memo[i] = v;
        v
    }

    /// Compiles the subgraph reachable from `outputs` into a flat tape,
    /// running the full optimizing pass pipeline ([`OptLevel::Full`]).
    pub fn compile(&self, outputs: &[ExprId]) -> CompiledFn {
        self.compile_with(outputs, &CompileOptions::new())
    }

    /// Compiles with explicit [`CompileOptions`] — the escape hatch for
    /// inspecting the raw lowering or ablating individual pass levels.
    pub fn compile_with(&self, outputs: &[ExprId], options: &CompileOptions) -> CompiledFn {
        let (ops, outs) = self.lower(outputs);
        let raw_ops = ops.len();
        let (tape, outs) = opt::optimize(ops, outs, options.opt_level);
        CompiledFn {
            tape,
            outputs: outs,
            n_syms: self.n_syms,
            raw_ops,
            opt_level: options.opt_level,
        }
    }

    /// Lowers the subgraph reachable from `outputs` into SSA tape ops
    /// (each op's destination is its own index).
    fn lower(&self, outputs: &[ExprId]) -> (Vec<TapeOp>, Vec<u32>) {
        // Mark reachable nodes.
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<ExprId> = outputs.to_vec();
        while let Some(id) = stack.pop() {
            let i = id.0 as usize;
            if needed[i] {
                continue;
            }
            needed[i] = true;
            match self.nodes[i] {
                Node::Add(a, b) | Node::Mul(a, b) | Node::Div(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Node::Neg(a) | Node::Sqrt(a) => stack.push(a),
                _ => {}
            }
        }
        // Emit in index order (children always have smaller indices than
        // parents because nodes are appended after their operands).
        let mut reg_of = vec![u32::MAX; self.nodes.len()];
        let mut ops = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            let reg = ops.len() as u32;
            reg_of[i] = reg;
            let op = match *node {
                Node::Const(c) => TapeOp::Const(c),
                Node::Sym(s) => TapeOp::Sym(s),
                Node::Add(a, b) => TapeOp::Add(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Mul(a, b) => TapeOp::Mul(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Div(a, b) => TapeOp::Div(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Neg(a) => TapeOp::Neg(reg_of[a.0 as usize]),
                Node::Sqrt(a) => TapeOp::Sqrt(reg_of[a.0 as usize]),
            };
            ops.push(op);
        }
        let outs = outputs.iter().map(|o| reg_of[o.0 as usize]).collect();
        (ops, outs)
    }
}

/// One instruction of a compiled tape; operands are register indices.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TapeOp {
    /// Load a constant.
    Const(f64),
    /// Load symbol `i` from the input slice.
    Sym(u32),
    /// `r[a] + r[b]`.
    Add(u32, u32),
    /// `r[a] − r[b]` (neg/sub fusion).
    Sub(u32, u32),
    /// `r[a] · r[b]`.
    Mul(u32, u32),
    /// `r[a] / r[b]`.
    Div(u32, u32),
    /// `−r[a]`.
    Neg(u32),
    /// `√r[a]`.
    Sqrt(u32),
    /// `r[a] · r[b] + r[c]` (mul-add fusion).
    MulAdd(u32, u32, u32),
}

/// A flat register program.
///
/// Instruction `i` writes register `dst[i]`; liveness-based register
/// allocation lets destinations be reused, so the register file
/// (`n_regs`) is typically much smaller than the instruction count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tape {
    ops: Vec<TapeOp>,
    dst: Vec<u32>,
    n_regs: u32,
}

impl Tape {
    /// Assembles a tape from parts (crate-internal; used by the pass
    /// pipeline).
    pub(crate) fn from_parts(ops: Vec<TapeOp>, dst: Vec<u32>, n_regs: u32) -> Self {
        debug_assert_eq!(ops.len(), dst.len());
        Tape { ops, dst, n_regs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instructions.
    pub fn ops(&self) -> &[TapeOp] {
        &self.ops
    }

    /// Destination register of each instruction.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Size of the register file the tape runs in.
    pub fn n_regs(&self) -> usize {
        self.n_regs as usize
    }

    /// Replays the tape over a register file (`regs.len() >= n_regs`).
    #[inline]
    pub(crate) fn replay(&self, vals: &[f64], regs: &mut [f64]) {
        for (op, &d) in self.ops.iter().zip(&self.dst) {
            regs[d as usize] = match *op {
                TapeOp::Const(c) => c,
                TapeOp::Sym(s) => vals[s as usize],
                TapeOp::Add(a, b) => regs[a as usize] + regs[b as usize],
                TapeOp::Sub(a, b) => regs[a as usize] - regs[b as usize],
                TapeOp::Mul(a, b) => regs[a as usize] * regs[b as usize],
                TapeOp::Div(a, b) => regs[a as usize] / regs[b as usize],
                TapeOp::Neg(a) => -regs[a as usize],
                TapeOp::Sqrt(a) => regs[a as usize].sqrt(),
                TapeOp::MulAdd(a, b, c) => regs[a as usize] * regs[b as usize] + regs[c as usize],
            };
        }
    }
}

// Hand-written serde: pre-optimizer artifacts carry only `ops` (with the
// implicit destination `dst[i] = i`), and the vendored serde derive has no
// `#[serde(default)]`, so missing `dst`/`n_regs` fields must fall back
// here for backward-compatible loading.
impl serde::Serialize for Tape {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("ops".to_string(), self.ops.to_content()),
            ("dst".to_string(), self.dst.to_content()),
            ("n_regs".to_string(), self.n_regs.to_content()),
        ])
    }
}

impl serde::Deserialize for Tape {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        let m = c
            .as_map_slice()
            .ok_or_else(|| serde::Error::custom("expected map for struct Tape"))?;
        let ops: Vec<TapeOp> = serde::de_field(m, "ops")?;
        let dst: Vec<u32> = match c.get("dst") {
            Some(v) => serde::Deserialize::from_content(v)?,
            None => (0..ops.len() as u32).collect(),
        };
        if dst.len() != ops.len() {
            return Err(serde::Error::custom("tape dst/ops length mismatch"));
        }
        let n_regs: u32 = match c.get("n_regs") {
            Some(v) => serde::Deserialize::from_content(v)?,
            None => ops.len() as u32,
        };
        if dst.iter().any(|&d| d >= n_regs.max(1)) && !ops.is_empty() {
            return Err(serde::Error::custom("tape dst out of register range"));
        }
        Ok(Tape { ops, dst, n_regs })
    }
}

/// A compiled multi-output function of the symbols.
///
/// Produced by [`ExprGraph::compile`]; serializable with serde so compiled
/// models can be stored and reloaded.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFn {
    tape: Tape,
    outputs: Vec<u32>,
    n_syms: usize,
    raw_ops: usize,
    opt_level: OptLevel,
}

impl CompiledFn {
    /// Number of input symbols.
    pub fn n_syms(&self) -> usize {
        self.n_syms
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of tape instructions after optimization (the paper's
    /// "reduced set of operations").
    pub fn op_count(&self) -> usize {
        self.tape.len()
    }

    /// Number of tape instructions the raw lowering emitted, before the
    /// pass pipeline ran.
    pub fn raw_op_count(&self) -> usize {
        self.raw_ops
    }

    /// The optimization level the tape was compiled at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The underlying tape.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Registers holding each output after a replay.
    pub(crate) fn output_regs(&self) -> &[u32] {
        &self.outputs
    }

    /// An [`Evaluator`] with its own scratch space — the preferred
    /// evaluation API.
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::new(self, None)
    }

    /// An [`Evaluator`] that appends affine tail outputs (e.g. the
    /// partial-Padé Taylor extension) after the tape outputs.
    pub fn evaluator_with_tail(&self, tail: AffineTail) -> Evaluator<'_> {
        Evaluator::new(self, Some(tail))
    }

    /// Evaluates the tape, allocating the result vector.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len() != self.n_syms()`.
    pub fn eval(&self, vals: &[f64]) -> Vec<f64> {
        assert_eq!(vals.len(), self.n_syms, "value vector length mismatch");
        let mut regs = vec![0.0; self.tape.n_regs()];
        self.tape.replay(vals, &mut regs);
        self.outputs.iter().map(|&r| regs[r as usize]).collect()
    }

    /// Evaluates into caller-provided scratch space.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths do not match the compiled shapes.
    #[deprecated(since = "0.2.0", note = "use `evaluator()` and `Evaluator::eval_into`")]
    pub fn eval_into(&self, vals: &[f64], regs: &mut [f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.n_syms, "value vector length mismatch");
        assert!(regs.len() >= self.tape.n_regs(), "scratch too small");
        assert_eq!(out.len(), self.outputs.len(), "output slice mismatch");
        self.tape.replay(vals, regs);
        for (o, &r) in out.iter_mut().zip(self.outputs.iter()) {
            *o = regs[r as usize];
        }
    }

    /// Required scratch length for the deprecated
    /// [`CompiledFn::eval_into`]; [`Evaluator`] manages this internally.
    #[deprecated(since = "0.2.0", note = "use `evaluator()`; it owns its scratch")]
    pub fn scratch_len(&self) -> usize {
        self.tape.n_regs()
    }
}

// Hand-written serde: `raw_ops` and `opt_level` are absent from
// pre-optimizer payloads and default to the unoptimized reading.
impl serde::Serialize for CompiledFn {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("tape".to_string(), self.tape.to_content()),
            ("outputs".to_string(), self.outputs.to_content()),
            ("n_syms".to_string(), self.n_syms.to_content()),
            ("raw_ops".to_string(), self.raw_ops.to_content()),
            ("opt_level".to_string(), self.opt_level.to_content()),
        ])
    }
}

impl serde::Deserialize for CompiledFn {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        let m = c
            .as_map_slice()
            .ok_or_else(|| serde::Error::custom("expected map for struct CompiledFn"))?;
        let tape: Tape = serde::de_field(m, "tape")?;
        let outputs: Vec<u32> = serde::de_field(m, "outputs")?;
        let n_syms: usize = serde::de_field(m, "n_syms")?;
        if outputs
            .iter()
            .any(|&r| (r as usize) >= tape.n_regs().max(1))
            && !tape.is_empty()
        {
            return Err(serde::Error::custom("output register out of range"));
        }
        let raw_ops: usize = match c.get("raw_ops") {
            Some(v) => serde::Deserialize::from_content(v)?,
            None => tape.len(),
        };
        let opt_level: OptLevel = match c.get("opt_level") {
            Some(v) => serde::Deserialize::from_content(v)?,
            None => OptLevel::None,
        };
        Ok(CompiledFn {
            tape,
            outputs,
            n_syms,
            raw_ops,
            opt_level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolSet;

    #[test]
    fn folding_rules() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let zero = g.constant(0.0);
        let one = g.constant(1.0);
        assert_eq!(g.add(zero, x), x);
        assert_eq!(g.add(x, zero), x);
        assert_eq!(g.mul(one, x), x);
        assert_eq!(g.mul(x, zero), zero);
        let two = g.constant(2.0);
        let three = g.constant(3.0);
        let six = g.mul(two, three);
        assert_eq!(g.eval(six, &[0.0]), 6.0);
        let nx = g.neg(x);
        assert_eq!(g.neg(nx), x);
        let half = g.div(one, two);
        assert_eq!(g.eval(half, &[0.0]), 0.5);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.mul(x, y);
        let b = g.mul(y, x); // canonical order → same node
        assert_eq!(a, b);
        let before = g.node_count();
        let _c = g.mul(x, y);
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn poly_lowering_matches_eval() {
        let mut s = SymbolSet::new();
        let x = s.intern("x");
        let y = s.intern("y");
        let p = MPoly::var(&s, x)
            .pow(3)
            .scale(2.0)
            .add(&MPoly::var(&s, y).mul(&MPoly::var(&s, x)))
            .sub(&MPoly::constant(2, 7.0));
        let mut g = ExprGraph::new(2);
        let id = g.poly(&p);
        for point in [[1.0, 2.0], [-0.5, 3.0], [2.2, -1.1]] {
            assert!((g.eval(id, &point) - p.eval(&point)).abs() < 1e-12);
        }
    }

    #[test]
    fn compile_matches_graph_eval() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let xy = g.mul(x, y);
        let s = g.add(xy, x);
        let q = g.div(s, y);
        let r = g.sqrt(q);
        let f = g.compile(&[s, q, r]);
        assert_eq!(f.n_outputs(), 3);
        let vals = [2.0, 8.0];
        let out = f.eval(&vals);
        assert_eq!(out[0], 18.0);
        assert_eq!(out[1], 2.25);
        assert_eq!(out[2], 1.5);
        assert_eq!(out[0], g.eval(s, &vals));
    }

    #[test]
    fn compile_prunes_unreachable_nodes() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let _unused = g.mul(x, x);
        let used = g.add(x, x);
        let f = g.compile(&[used]);
        // Only Sym + Add should remain.
        assert_eq!(f.op_count(), 2);
    }

    #[test]
    fn powi_shares_squarings() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let p8 = g.powi(x, 8);
        // x² , x⁴ , x⁸ → 3 muls + sym.
        let f = g.compile(&[p8]);
        assert_eq!(f.op_count(), 4);
        assert_eq!(f.eval(&[2.0])[0], 256.0);
        let p1 = g.powi(x, 1);
        assert_eq!(p1, x);
        let p0 = g.powi(x, 0);
        assert_eq!(g.eval(p0, &[5.0]), 1.0);
    }

    #[test]
    fn compile_with_levels_agree() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let xy = g.mul(x, y);
        let nxy = g.neg(xy);
        let s = g.add(nxy, y);
        let q = g.div(s, x);
        for level in [OptLevel::None, OptLevel::Basic, OptLevel::Full] {
            let f = g.compile_with(&[s, q], &CompileOptions::new().opt_level(level));
            assert_eq!(f.opt_level(), level);
            let out = f.eval(&[2.0, 3.0]);
            assert_eq!(out[0], -3.0);
            assert_eq!(out[1], -1.5);
        }
        let raw = g.compile_with(&[s, q], &CompileOptions::new().opt_level(OptLevel::None));
        let full = g.compile(&[s, q]);
        assert_eq!(full.raw_op_count(), raw.op_count());
        assert!(full.op_count() <= raw.op_count());
    }

    #[test]
    fn eval_into_wrapper_still_works() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let e = g.mul(x, x);
        let f = g.compile(&[e]);
        #[allow(deprecated)]
        {
            let mut regs = vec![0.0; f.scratch_len()];
            let mut out = vec![0.0; 1];
            f.eval_into(&[3.0], &mut regs, &mut out);
            assert_eq!(out[0], 9.0);
        }
        // The replacement path.
        let ev = f.evaluator();
        let mut out = vec![0.0; 1];
        ev.eval_into(&[3.0], &mut out);
        assert_eq!(out[0], 9.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let e = g.div(x, y);
        let f = g.compile(&[e]);
        let json = serde_json::to_string(&f).unwrap();
        let back: CompiledFn = serde_json::from_str(&json).unwrap();
        assert_eq!(back.eval(&[6.0, 3.0])[0], 2.0);
        assert_eq!(back, f);
    }

    #[test]
    fn serde_reads_pre_optimizer_payloads() {
        // The legacy encoding: no dst / n_regs / raw_ops / opt_level —
        // destinations are implicit (`dst[i] = i`).
        let legacy =
            r#"{"tape":{"ops":[{"Sym":0},{"Sym":1},{"Div":[0,1]}]},"outputs":[2],"n_syms":2}"#;
        let f: CompiledFn = serde_json::from_str(legacy).unwrap();
        assert_eq!(f.eval(&[6.0, 3.0])[0], 2.0);
        assert_eq!(f.op_count(), 3);
        assert_eq!(f.raw_op_count(), 3);
        assert_eq!(f.opt_level(), OptLevel::None);
    }

    #[test]
    #[should_panic(expected = "symbol index out of range")]
    fn sym_out_of_range_panics() {
        let mut g = ExprGraph::new(1);
        let _ = g.sym(1);
    }
}
