//! Hash-consed expression DAG and the compiled evaluation tape.
//!
//! This is the "compilation" in *AWEsymbolic: Compiled Analysis…*: symbolic
//! moments (polynomials and quotients in the symbols) are lowered once into
//! a flat register program; each subsequent evaluation at concrete symbol
//! values replays the tape — a handful of multiply-adds instead of a full
//! circuit analysis.

use crate::MPoly;
use std::collections::HashMap;

/// Handle to a node of an [`ExprGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    Const(f64),
    Sym(u32),
    Add(ExprId, ExprId),
    Mul(ExprId, ExprId),
    Div(ExprId, ExprId),
    Neg(ExprId),
    Sqrt(ExprId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Sym(u32),
    Add(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    Sqrt(u32),
}

/// A hash-consed expression DAG with constant folding.
///
/// Structurally identical subexpressions share one node (common-
/// subexpression elimination by construction), so compiling several
/// symbolic moments that share the determinant `D` and its powers costs
/// each shared piece once.
///
/// # Example
///
/// ```
/// use awesym_symbolic::ExprGraph;
///
/// let mut g = ExprGraph::new(2);
/// let x = g.sym(0);
/// let y = g.sym(1);
/// let xy = g.mul(x, y);
/// let e = g.add(xy, xy); // shares the xy node
/// let f = g.compile(&[e]);
/// assert_eq!(f.eval(&[3.0, 4.0])[0], 24.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprGraph {
    nodes: Vec<Node>,
    cache: HashMap<Key, ExprId>,
    n_syms: usize,
}

impl ExprGraph {
    /// Creates a graph over `n_syms` symbols.
    pub fn new(n_syms: usize) -> Self {
        ExprGraph {
            nodes: Vec::new(),
            cache: HashMap::new(),
            n_syms,
        }
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn intern(&mut self, key: Key, node: Node) -> ExprId {
        if let Some(&id) = self.cache.get(&key) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.cache.insert(key, id);
        id
    }

    /// A constant node.
    pub fn constant(&mut self, c: f64) -> ExprId {
        self.intern(Key::Const(c.to_bits()), Node::Const(c))
    }

    /// A symbol node.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn sym(&mut self, i: u32) -> ExprId {
        assert!((i as usize) < self.n_syms, "symbol index out of range");
        self.intern(Key::Sym(i), Node::Sym(i))
    }

    fn const_of(&self, id: ExprId) -> Option<f64> {
        match self.nodes[id.0 as usize] {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Sum with folding (`0 + x = x`, const + const folds).
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x + y),
            (Some(0.0), None) => return b,
            (None, Some(0.0)) => return a,
            _ => {}
        }
        // Canonical operand order for better sharing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern(Key::Add(a.0, b.0), Node::Add(a, b))
    }

    /// Difference (`a + (−b)`).
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let nb = self.neg(b);
        self.add(a, nb)
    }

    /// Product with folding (`0·x = 0`, `1·x = x`, const·const folds).
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x * y),
            (Some(0.0), None) | (None, Some(0.0)) => return self.constant(0.0),
            (Some(1.0), None) => return b,
            (None, Some(1.0)) => return a,
            _ => {}
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.intern(Key::Mul(a.0, b.0), Node::Mul(a, b))
    }

    /// Quotient with folding.
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(x), Some(y)) => return self.constant(x / y),
            (None, Some(1.0)) => return a,
            _ => {}
        }
        self.intern(Key::Div(a.0, b.0), Node::Div(a, b))
    }

    /// Negation with folding (`−(−x) = x`).
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        if let Some(c) = self.const_of(a) {
            return self.constant(-c);
        }
        if let Node::Neg(inner) = self.nodes[a.0 as usize] {
            return inner;
        }
        self.intern(Key::Neg(a.0), Node::Neg(a))
    }

    /// Square root.
    pub fn sqrt(&mut self, a: ExprId) -> ExprId {
        if let Some(c) = self.const_of(a) {
            if c >= 0.0 {
                return self.constant(c.sqrt());
            }
        }
        self.intern(Key::Sqrt(a.0), Node::Sqrt(a))
    }

    /// Integer power by binary decomposition (shares squarings).
    pub fn powi(&mut self, a: ExprId, mut n: u32) -> ExprId {
        if n == 0 {
            return self.constant(1.0);
        }
        let mut base = a;
        let mut acc: Option<ExprId> = None;
        while n > 0 {
            if n & 1 == 1 {
                acc = Some(match acc {
                    None => base,
                    Some(x) => self.mul(x, base),
                });
            }
            n >>= 1;
            if n > 0 {
                base = self.mul(base, base);
            }
        }
        acc.expect("n > 0")
    }

    /// Lowers a polynomial into the graph.
    ///
    /// # Panics
    ///
    /// Panics when the polynomial ranges over a different symbol count.
    pub fn poly(&mut self, p: &MPoly) -> ExprId {
        assert_eq!(p.nvars(), self.n_syms, "nvars mismatch");
        let mut acc = self.constant(0.0);
        for (exps, coeff) in p.terms() {
            let mut term = self.constant(coeff);
            for (i, &e) in exps.iter().enumerate() {
                if e > 0 {
                    let s = self.sym(i as u32);
                    let pw = self.powi(s, e as u32);
                    term = self.mul(term, pw);
                }
            }
            acc = self.add(acc, term);
        }
        acc
    }

    /// Direct recursive evaluation (reference implementation for tests;
    /// prefer [`ExprGraph::compile`] + [`CompiledFn::eval`] in hot paths).
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the graph's symbol count.
    pub fn eval(&self, id: ExprId, vals: &[f64]) -> f64 {
        assert_eq!(vals.len(), self.n_syms, "value vector length mismatch");
        let mut memo = vec![f64::NAN; self.nodes.len()];
        self.eval_rec(id, vals, &mut memo)
    }

    fn eval_rec(&self, id: ExprId, vals: &[f64], memo: &mut [f64]) -> f64 {
        let i = id.0 as usize;
        if !memo[i].is_nan() {
            return memo[i];
        }
        let v = match self.nodes[i] {
            Node::Const(c) => c,
            Node::Sym(s) => vals[s as usize],
            Node::Add(a, b) => self.eval_rec(a, vals, memo) + self.eval_rec(b, vals, memo),
            Node::Mul(a, b) => self.eval_rec(a, vals, memo) * self.eval_rec(b, vals, memo),
            Node::Div(a, b) => self.eval_rec(a, vals, memo) / self.eval_rec(b, vals, memo),
            Node::Neg(a) => -self.eval_rec(a, vals, memo),
            Node::Sqrt(a) => self.eval_rec(a, vals, memo).sqrt(),
        };
        memo[i] = v;
        v
    }

    /// Compiles the subgraph reachable from `outputs` into a flat tape.
    pub fn compile(&self, outputs: &[ExprId]) -> CompiledFn {
        // Mark reachable nodes.
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<ExprId> = outputs.to_vec();
        while let Some(id) = stack.pop() {
            let i = id.0 as usize;
            if needed[i] {
                continue;
            }
            needed[i] = true;
            match self.nodes[i] {
                Node::Add(a, b) | Node::Mul(a, b) | Node::Div(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Node::Neg(a) | Node::Sqrt(a) => stack.push(a),
                _ => {}
            }
        }
        // Emit in index order (children always have smaller indices than
        // parents because nodes are appended after their operands).
        let mut reg_of = vec![u32::MAX; self.nodes.len()];
        let mut ops = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            let reg = ops.len() as u32;
            reg_of[i] = reg;
            let op = match *node {
                Node::Const(c) => TapeOp::Const(c),
                Node::Sym(s) => TapeOp::Sym(s),
                Node::Add(a, b) => TapeOp::Add(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Mul(a, b) => TapeOp::Mul(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Div(a, b) => TapeOp::Div(reg_of[a.0 as usize], reg_of[b.0 as usize]),
                Node::Neg(a) => TapeOp::Neg(reg_of[a.0 as usize]),
                Node::Sqrt(a) => TapeOp::Sqrt(reg_of[a.0 as usize]),
            };
            ops.push(op);
        }
        let outs = outputs.iter().map(|o| reg_of[o.0 as usize]).collect();
        CompiledFn {
            tape: Tape { ops },
            outputs: outs,
            n_syms: self.n_syms,
        }
    }
}

/// One instruction of a compiled tape; operands are register indices.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TapeOp {
    /// Load a constant.
    Const(f64),
    /// Load symbol `i` from the input slice.
    Sym(u32),
    /// `r[a] + r[b]`.
    Add(u32, u32),
    /// `r[a] · r[b]`.
    Mul(u32, u32),
    /// `r[a] / r[b]`.
    Div(u32, u32),
    /// `−r[a]`.
    Neg(u32),
    /// `√r[a]`.
    Sqrt(u32),
}

/// A flat register program.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Tape {
    ops: Vec<TapeOp>,
}

impl Tape {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A compiled multi-output function of the symbols.
///
/// Produced by [`ExprGraph::compile`]; serializable with serde so compiled
/// models can be stored and reloaded.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompiledFn {
    tape: Tape,
    outputs: Vec<u32>,
    n_syms: usize,
}

impl CompiledFn {
    /// Number of input symbols.
    pub fn n_syms(&self) -> usize {
        self.n_syms
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of tape instructions (the paper's "reduced set of
    /// operations").
    pub fn op_count(&self) -> usize {
        self.tape.len()
    }

    /// Evaluates the tape, allocating the result vector.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len() != self.n_syms()`.
    pub fn eval(&self, vals: &[f64]) -> Vec<f64> {
        let mut regs = vec![0.0; self.tape.len()];
        let mut out = vec![0.0; self.outputs.len()];
        self.eval_into(vals, &mut regs, &mut out);
        out
    }

    /// Evaluates into caller-provided scratch space (zero allocation —
    /// this is the per-iteration fast path the paper times).
    ///
    /// # Panics
    ///
    /// Panics when slice lengths do not match the compiled shapes.
    pub fn eval_into(&self, vals: &[f64], regs: &mut [f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.n_syms, "value vector length mismatch");
        assert!(regs.len() >= self.tape.len(), "scratch too small");
        assert_eq!(out.len(), self.outputs.len(), "output slice mismatch");
        for (i, op) in self.tape.ops.iter().enumerate() {
            regs[i] = match *op {
                TapeOp::Const(c) => c,
                TapeOp::Sym(s) => vals[s as usize],
                TapeOp::Add(a, b) => regs[a as usize] + regs[b as usize],
                TapeOp::Mul(a, b) => regs[a as usize] * regs[b as usize],
                TapeOp::Div(a, b) => regs[a as usize] / regs[b as usize],
                TapeOp::Neg(a) => -regs[a as usize],
                TapeOp::Sqrt(a) => regs[a as usize].sqrt(),
            };
        }
        for (o, &r) in out.iter_mut().zip(self.outputs.iter()) {
            *o = regs[r as usize];
        }
    }

    /// Required scratch length for [`CompiledFn::eval_into`].
    pub fn scratch_len(&self) -> usize {
        self.tape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolSet;

    #[test]
    fn folding_rules() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let zero = g.constant(0.0);
        let one = g.constant(1.0);
        assert_eq!(g.add(zero, x), x);
        assert_eq!(g.add(x, zero), x);
        assert_eq!(g.mul(one, x), x);
        assert_eq!(g.mul(x, zero), zero);
        let two = g.constant(2.0);
        let three = g.constant(3.0);
        let six = g.mul(two, three);
        assert_eq!(g.eval(six, &[0.0]), 6.0);
        let nx = g.neg(x);
        assert_eq!(g.neg(nx), x);
        let half = g.div(one, two);
        assert_eq!(g.eval(half, &[0.0]), 0.5);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.mul(x, y);
        let b = g.mul(y, x); // canonical order → same node
        assert_eq!(a, b);
        let before = g.node_count();
        let _c = g.mul(x, y);
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn poly_lowering_matches_eval() {
        let mut s = SymbolSet::new();
        let x = s.intern("x");
        let y = s.intern("y");
        let p = MPoly::var(&s, x)
            .pow(3)
            .scale(2.0)
            .add(&MPoly::var(&s, y).mul(&MPoly::var(&s, x)))
            .sub(&MPoly::constant(2, 7.0));
        let mut g = ExprGraph::new(2);
        let id = g.poly(&p);
        for point in [[1.0, 2.0], [-0.5, 3.0], [2.2, -1.1]] {
            assert!((g.eval(id, &point) - p.eval(&point)).abs() < 1e-12);
        }
    }

    #[test]
    fn compile_matches_graph_eval() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let xy = g.mul(x, y);
        let s = g.add(xy, x);
        let q = g.div(s, y);
        let r = g.sqrt(q);
        let f = g.compile(&[s, q, r]);
        assert_eq!(f.n_outputs(), 3);
        let vals = [2.0, 8.0];
        let out = f.eval(&vals);
        assert_eq!(out[0], 18.0);
        assert_eq!(out[1], 2.25);
        assert_eq!(out[2], 1.5);
        assert_eq!(out[0], g.eval(s, &vals));
    }

    #[test]
    fn compile_prunes_unreachable_nodes() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let _unused = g.mul(x, x);
        let used = g.add(x, x);
        let f = g.compile(&[used]);
        // Only Sym + Add should remain.
        assert_eq!(f.op_count(), 2);
    }

    #[test]
    fn powi_shares_squarings() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let p8 = g.powi(x, 8);
        // x² , x⁴ , x⁸ → 3 muls + sym.
        let f = g.compile(&[p8]);
        assert_eq!(f.op_count(), 4);
        assert_eq!(f.eval(&[2.0])[0], 256.0);
        let p1 = g.powi(x, 1);
        assert_eq!(p1, x);
        let p0 = g.powi(x, 0);
        assert_eq!(g.eval(p0, &[5.0]), 1.0);
    }

    #[test]
    fn eval_into_zero_alloc_path() {
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let e = g.mul(x, x);
        let f = g.compile(&[e]);
        let mut regs = vec![0.0; f.scratch_len()];
        let mut out = vec![0.0; 1];
        f.eval_into(&[3.0], &mut regs, &mut out);
        assert_eq!(out[0], 9.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let e = g.div(x, y);
        let f = g.compile(&[e]);
        let json = serde_json::to_string(&f).unwrap();
        let back: CompiledFn = serde_json::from_str(&json).unwrap();
        assert_eq!(back.eval(&[6.0, 3.0])[0], 2.0);
        assert_eq!(back, f);
    }

    #[test]
    #[should_panic(expected = "symbol index out of range")]
    fn sym_out_of_range_panics() {
        let mut g = ExprGraph::new(1);
        let _ = g.sym(1);
    }
}
