//! Symbolic matrices with division-free determinants, adjugates and
//! Cramer-style solves.
//!
//! The global partitioned matrix `Y_g0` in AWEsymbolic is small (its size
//! scales with the number of symbolic elements), so a subset-dynamic-
//! programming Laplace expansion — `O(n·2ⁿ)` polynomial multiplies per
//! determinant, no polynomial division — is both fast enough and
//! numerically safe with floating coefficients (fraction-free elimination
//! would require exact polynomial division, which floating round-off
//! breaks).

use crate::MPoly;

/// A dense matrix of multivariate polynomials.
#[derive(Debug, Clone, PartialEq)]
pub struct SMat {
    n: usize,
    m: usize,
    data: Vec<MPoly>,
    nvars: usize,
}

impl SMat {
    /// Creates an `n × m` zero matrix over `nvars` symbols.
    pub fn zeros(n: usize, m: usize, nvars: usize) -> Self {
        SMat {
            n,
            m,
            data: vec![MPoly::zero(nvars); n * m],
            nvars,
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.m
    }

    /// Number of symbols entries range over.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> &MPoly {
        &self.data[i * self.m + j]
    }

    /// Replaces an entry.
    ///
    /// # Panics
    ///
    /// Panics when the polynomial ranges over a different symbol count.
    pub fn set(&mut self, i: usize, j: usize, p: MPoly) {
        assert_eq!(p.nvars(), self.nvars, "nvars mismatch");
        self.data[i * self.m + j] = p;
    }

    /// Adds `p` into an entry (stamping).
    pub fn add_to(&mut self, i: usize, j: usize, p: &MPoly) {
        let cur = self.get(i, j).add(p);
        self.data[i * self.m + j] = cur;
    }

    /// Matrix-vector product with a polynomial vector.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[MPoly]) -> Vec<MPoly> {
        assert_eq!(x.len(), self.m, "dimension mismatch");
        (0..self.n)
            .map(|i| {
                let mut acc = MPoly::zero(self.nvars);
                for (j, xj) in x.iter().enumerate() {
                    let e = self.get(i, j);
                    if !e.is_zero() && !xj.is_zero() {
                        acc = acc.add(&e.mul(xj));
                    }
                }
                acc
            })
            .collect()
    }

    /// Evaluates every entry at a point, producing a dense numeric matrix
    /// in row-major order.
    pub fn eval(&self, vals: &[f64]) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| (0..self.m).map(|j| self.get(i, j).eval(vals)).collect())
            .collect()
    }

    /// Determinant by subset-DP Laplace expansion (division-free).
    ///
    /// # Panics
    ///
    /// Panics for non-square matrices or `n > 16` (the algorithm is
    /// exponential by design; partitioned matrices are far smaller).
    pub fn det(&self) -> MPoly {
        assert_eq!(self.n, self.m, "determinant of non-square matrix");
        assert!(self.n <= 16, "matrix too large for symbolic determinant");
        let n = self.n;
        if n == 0 {
            return MPoly::one(self.nvars);
        }
        // D[S] = det of the submatrix formed by the first popcount(S) rows
        // and the column set S.
        let full = 1usize << n;
        let mut d: Vec<Option<MPoly>> = vec![None; full];
        d[0] = Some(MPoly::one(self.nvars));
        for s in 1..full {
            let r = (s as u32).count_ones() as usize - 1; // row index
            let mut acc = MPoly::zero(self.nvars);
            // Laplace expansion along row r: cofactor sign is
            // (−1)^{r + position-of-j-within-S}.
            let mut sign = if r.is_multiple_of(2) { 1.0 } else { -1.0 };
            for j in 0..n {
                if s & (1 << j) == 0 {
                    continue;
                }
                let a = self.get(r, j);
                if !a.is_zero() {
                    let sub = d[s & !(1 << j)].as_ref().expect("dp order");
                    if !sub.is_zero() {
                        acc = acc.add(&a.mul(sub).scale(sign));
                    }
                }
                // The cofactor sign alternates with the column's *position
                // inside S*, so flip only for members of S.
                sign = -sign;
            }
            d[s] = Some(acc);
        }
        d[full - 1].take().expect("dp complete")
    }

    /// Adjugate matrix: `adj(A)·A = A·adj(A) = det(A)·I`.
    ///
    /// Computed as cofactors, each via the division-free determinant.
    ///
    /// # Panics
    ///
    /// Panics for non-square matrices or `n > 12`.
    pub fn adjugate(&self) -> SMat {
        assert_eq!(self.n, self.m, "adjugate of non-square matrix");
        assert!(self.n <= 12, "matrix too large for symbolic adjugate");
        let n = self.n;
        let mut out = SMat::zeros(n, n, self.nvars);
        if n == 0 {
            return out;
        }
        if n == 1 {
            out.set(0, 0, MPoly::one(self.nvars));
            return out;
        }
        for i in 0..n {
            for j in 0..n {
                let minor = self.minor(i, j);
                let c = minor.det();
                let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                // adj = transpose of cofactor matrix.
                out.set(j, i, c.scale(sign));
            }
        }
        out
    }

    /// Solves `A·x·det(A)⁻¹`, i.e. returns `(adj(A)·b, det(A))` so that the
    /// solution of `A x = b` is `x_i = num_i / det`.
    ///
    /// # Panics
    ///
    /// Panics for non-square matrices or wrong `b` length.
    pub fn cramer_solve(&self, b: &[MPoly]) -> (Vec<MPoly>, MPoly) {
        assert_eq!(self.n, self.m, "cramer solve needs a square matrix");
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let adj = self.adjugate();
        (adj.mul_vec(b), self.det())
    }

    fn minor(&self, skip_row: usize, skip_col: usize) -> SMat {
        let n = self.n;
        let mut out = SMat::zeros(n - 1, n - 1, self.nvars);
        let mut r = 0;
        for i in 0..n {
            if i == skip_row {
                continue;
            }
            let mut c = 0;
            for j in 0..n {
                if j == skip_col {
                    continue;
                }
                out.set(r, c, self.get(i, j).clone());
                c += 1;
            }
            r += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolSet;

    fn sym_xy() -> (SymbolSet, MPoly, MPoly) {
        let mut s = SymbolSet::new();
        let x = s.intern("x");
        let y = s.intern("y");
        let px = MPoly::var(&s, x);
        let py = MPoly::var(&s, y);
        (s, px, py)
    }

    #[test]
    fn det_2x2_symbolic() {
        let (_, x, y) = sym_xy();
        let mut a = SMat::zeros(2, 2, 2);
        a.set(0, 0, x.clone());
        a.set(0, 1, MPoly::one(2));
        a.set(1, 0, MPoly::constant(2, 2.0));
        a.set(1, 1, y.clone());
        // det = xy − 2
        let d = a.det();
        assert_eq!(d, x.mul(&y).sub(&MPoly::constant(2, 2.0)));
    }

    #[test]
    fn det_matches_numeric_eval() {
        let (_, x, y) = sym_xy();
        let mut a = SMat::zeros(3, 3, 2);
        let entries = [
            [x.clone(), MPoly::one(2), MPoly::zero(2)],
            [y.clone(), x.add(&y), MPoly::constant(2, 2.0)],
            [MPoly::one(2), MPoly::zero(2), y.clone()],
        ];
        for (i, row) in entries.iter().enumerate() {
            for (j, e) in row.iter().enumerate() {
                a.set(i, j, e.clone());
            }
        }
        let d = a.det();
        for point in [[1.0, 2.0], [0.5, -3.0], [-2.0, 0.25]] {
            let num = a.eval(&point);
            // Numeric 3x3 determinant.
            let nd = num[0][0] * (num[1][1] * num[2][2] - num[1][2] * num[2][1])
                - num[0][1] * (num[1][0] * num[2][2] - num[1][2] * num[2][0])
                + num[0][2] * (num[1][0] * num[2][1] - num[1][1] * num[2][0]);
            assert!((d.eval(&point) - nd).abs() < 1e-10, "{point:?}");
        }
    }

    #[test]
    fn adjugate_identity() {
        let (_, x, y) = sym_xy();
        let mut a = SMat::zeros(3, 3, 2);
        a.set(0, 0, x.add(&MPoly::one(2)));
        a.set(0, 1, y.clone());
        a.set(1, 0, MPoly::constant(2, 2.0));
        a.set(1, 1, x.mul(&y).add(&MPoly::constant(2, 3.0)));
        a.set(1, 2, MPoly::one(2));
        a.set(2, 2, y.add(&MPoly::constant(2, 2.0)));
        let adj = a.adjugate();
        let det = a.det();
        // A·adj(A) = det·I, checked entrywise symbolically.
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = MPoly::zero(2);
                for k in 0..3 {
                    acc = acc.add(&a.get(i, k).mul(adj.get(k, j)));
                }
                let expect = if i == j { det.clone() } else { MPoly::zero(2) };
                // Compare at sample points (coefficients may differ by
                // floating round-off in the last ulp).
                for point in [[1.0, 2.0], [-0.5, 3.0]] {
                    assert!(
                        (acc.eval(&point) - expect.eval(&point)).abs()
                            < 1e-9 * (1.0 + expect.eval(&point).abs()),
                        "({i},{j}) at {point:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cramer_solves_symbolic_system() {
        let (_, x, _) = sym_xy();
        // [x 1; 1 2]·v = [1, 0] → v = (2, −1)/(2x − 1)
        let mut a = SMat::zeros(2, 2, 2);
        a.set(0, 0, x.clone());
        a.set(0, 1, MPoly::one(2));
        a.set(1, 0, MPoly::one(2));
        a.set(1, 1, MPoly::constant(2, 2.0));
        let b = vec![MPoly::one(2), MPoly::zero(2)];
        let (num, det) = a.cramer_solve(&b);
        for xv in [1.0, 3.0, -0.7] {
            let p = [xv, 0.0];
            let d = det.eval(&p);
            let v0 = num[0].eval(&p) / d;
            let v1 = num[1].eval(&p) / d;
            assert!((xv * v0 + v1 - 1.0).abs() < 1e-12);
            assert!((v0 + 2.0 * v1).abs() < 1e-12);
        }
    }

    #[test]
    fn det_multilinear_in_rank_one_stamp() {
        // A conductance symbol stamps as a rank-1 update: det must be
        // degree ≤ 1 in it — the multilinearity property the paper cites.
        let (s, g, _) = sym_xy();
        let mut a = SMat::zeros(3, 3, 2);
        for i in 0..3 {
            a.set(i, i, MPoly::constant(2, 2.0));
        }
        // Stamp g between nodes 0 and 1.
        a.add_to(0, 0, &g);
        a.add_to(1, 1, &g);
        a.add_to(0, 1, &g.neg());
        a.add_to(1, 0, &g.neg());
        let d = a.det();
        assert_eq!(d.degree_in(crate::Sym(0)), 1);
        let _ = s;
    }

    #[test]
    fn empty_and_identity_edges() {
        let a = SMat::zeros(0, 0, 1);
        assert!(a.det().is_constant());
        assert_eq!(a.det().constant_term(), 1.0);
        let mut i1 = SMat::zeros(1, 1, 1);
        i1.set(0, 0, MPoly::constant(1, 5.0));
        assert_eq!(i1.det().constant_term(), 5.0);
        assert_eq!(i1.adjugate().get(0, 0).constant_term(), 1.0);
    }
}
