//! Multivariate polynomials with `f64` coefficients.

use crate::{Sym, SymbolSet};
use std::collections::BTreeMap;
use std::fmt;

/// A multivariate polynomial over a fixed number of symbols, stored as a
/// sorted sparse list of `(exponent vector, coefficient)` terms.
///
/// The paper shows network-function coefficients are multilinear in the
/// symbolic elements, so term counts stay small; this representation is
/// exact in structure while using floating coefficients for speed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MPoly {
    nvars: usize,
    /// Sorted by exponent vector (lexicographic); no zero coefficients.
    terms: Vec<(Vec<u8>, f64)>,
}

impl MPoly {
    /// The zero polynomial over `nvars` symbols.
    pub fn zero(nvars: usize) -> Self {
        MPoly {
            nvars,
            terms: Vec::new(),
        }
    }

    /// A constant polynomial.
    pub fn constant(nvars: usize, c: f64) -> Self {
        if c == 0.0 {
            return Self::zero(nvars);
        }
        MPoly {
            nvars,
            terms: vec![(vec![0; nvars], c)],
        }
    }

    /// The polynomial `1`.
    pub fn one(nvars: usize) -> Self {
        Self::constant(nvars, 1.0)
    }

    /// The symbol `s` as a polynomial.
    ///
    /// # Panics
    ///
    /// Panics when `s` is not a member of `syms`.
    pub fn var(syms: &SymbolSet, s: Sym) -> Self {
        assert!((s.0 as usize) < syms.len(), "symbol out of range");
        let mut e = vec![0u8; syms.len()];
        e[s.0 as usize] = 1;
        MPoly {
            nvars: syms.len(),
            terms: vec![(e, 1.0)],
        }
    }

    /// Builds a monomial `c·Π s_i^{e_i}` directly.
    ///
    /// # Panics
    ///
    /// Panics when `exps.len() != nvars`.
    pub fn monomial(nvars: usize, exps: &[u8], c: f64) -> Self {
        assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
        if c == 0.0 {
            return Self::zero(nvars);
        }
        MPoly {
            nvars,
            terms: vec![(exps.to_vec(), c)],
        }
    }

    /// Number of symbols this polynomial ranges over.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of (nonzero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True when the polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty() || (self.terms.len() == 1 && self.terms[0].0.iter().all(|&e| e == 0))
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.terms
            .iter()
            .find(|(e, _)| e.iter().all(|&x| x == 0))
            .map_or(0.0, |(_, c)| *c)
    }

    /// Iterates over `(exponents, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&[u8], f64)> {
        self.terms.iter().map(|(e, c)| (e.as_slice(), *c))
    }

    /// Highest degree of symbol `s` across all terms.
    pub fn degree_in(&self, s: Sym) -> u8 {
        self.terms
            .iter()
            .map(|(e, _)| e[s.0 as usize])
            .max()
            .unwrap_or(0)
    }

    /// Total degree (max over terms of the exponent sum).
    pub fn total_degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|(e, _)| e.iter().map(|&x| x as u32).sum())
            .max()
            .unwrap_or(0)
    }

    /// Sum.
    ///
    /// # Panics
    ///
    /// Panics when the operands range over different symbol counts.
    pub fn add(&self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.nvars, rhs.nvars, "nvars mismatch");
        let mut map: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        for (e, c) in self.terms.iter().chain(rhs.terms.iter()) {
            *map.entry(e.clone()).or_insert(0.0) += c;
        }
        Self::from_map(self.nvars, map)
    }

    /// Difference.
    pub fn sub(&self, rhs: &MPoly) -> MPoly {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> MPoly {
        MPoly {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, c)| (e.clone(), -c)).collect(),
        }
    }

    /// Product.
    ///
    /// # Panics
    ///
    /// Panics when the operands range over different symbol counts, or when
    /// an exponent exceeds 255.
    pub fn mul(&self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.nvars, rhs.nvars, "nvars mismatch");
        let mut map: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        for (ea, ca) in &self.terms {
            for (eb, cb) in &rhs.terms {
                let e: Vec<u8> = ea
                    .iter()
                    .zip(eb.iter())
                    .map(|(&x, &y)| x.checked_add(y).expect("exponent overflow"))
                    .collect();
                *map.entry(e).or_insert(0.0) += ca * cb;
            }
        }
        Self::from_map(self.nvars, map)
    }

    /// Scales all coefficients by `k`.
    pub fn scale(&self, k: f64) -> MPoly {
        if k == 0.0 {
            return Self::zero(self.nvars);
        }
        MPoly {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, c)| (e.clone(), c * k)).collect(),
        }
    }

    /// Integer power by repeated squaring.
    pub fn pow(&self, mut n: u32) -> MPoly {
        let mut base = self.clone();
        let mut acc = MPoly::one(self.nvars);
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.mul(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Evaluates at a point.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len() != self.nvars()`.
    pub fn eval(&self, vals: &[f64]) -> f64 {
        assert_eq!(vals.len(), self.nvars, "value vector length mismatch");
        let mut acc = 0.0;
        for (e, c) in &self.terms {
            let mut t = *c;
            for (i, &exp) in e.iter().enumerate() {
                for _ in 0..exp {
                    t *= vals[i];
                }
            }
            acc += t;
        }
        acc
    }

    /// Drops terms whose coefficient magnitude is below `tol` times the
    /// largest coefficient magnitude (numerical hygiene after long
    /// cancellation chains).
    pub fn prune(&self, tol: f64) -> MPoly {
        let max = self
            .terms
            .iter()
            .map(|(_, c)| c.abs())
            .fold(0.0_f64, f64::max);
        if max == 0.0 {
            return Self::zero(self.nvars);
        }
        MPoly {
            nvars: self.nvars,
            terms: self
                .terms
                .iter()
                .filter(|(_, c)| c.abs() >= tol * max)
                .cloned()
                .collect(),
        }
    }

    /// Substitutes a numeric value for symbol `s`, producing the mixed
    /// numeric-symbolic form (the paper's eq. (6) operation: fixing `G1 = 5`
    /// inside a fully symbolic expression). The symbol keeps its slot (its
    /// exponent becomes 0 everywhere), so symbol indices stay stable.
    pub fn substitute(&self, s: Sym, value: f64) -> MPoly {
        let i = s.0 as usize;
        let mut map: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        for (e, c) in &self.terms {
            let mut e2 = e.clone();
            let k = e2[i];
            e2[i] = 0;
            let mut coeff = *c;
            for _ in 0..k {
                coeff *= value;
            }
            *map.entry(e2).or_insert(0.0) += coeff;
        }
        Self::from_map(self.nvars, map)
    }

    /// Partial derivative with respect to symbol `s`.
    pub fn derivative(&self, s: Sym) -> MPoly {
        let i = s.0 as usize;
        let mut map: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        for (e, c) in &self.terms {
            if e[i] > 0 {
                let mut e2 = e.clone();
                e2[i] -= 1;
                *map.entry(e2).or_insert(0.0) += c * e[i] as f64;
            }
        }
        Self::from_map(self.nvars, map)
    }

    /// Renders with the given symbol names.
    pub fn display<'a>(&'a self, syms: &'a SymbolSet) -> impl fmt::Display + 'a {
        DisplayPoly { poly: self, syms }
    }

    fn from_map(nvars: usize, map: BTreeMap<Vec<u8>, f64>) -> MPoly {
        MPoly {
            nvars,
            terms: map.into_iter().filter(|(_, c)| *c != 0.0).collect(),
        }
    }
}

struct DisplayPoly<'a> {
    poly: &'a MPoly,
    syms: &'a SymbolSet,
}

impl fmt::Display for DisplayPoly<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.poly.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (e, c) in &self.poly.terms {
            if !first {
                write!(f, " {} ", if *c < 0.0 { "-" } else { "+" })?;
            } else if *c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            let has_vars = e.iter().any(|&x| x > 0);
            if !has_vars || (a - 1.0).abs() > 1e-15 {
                write!(f, "{a:.6e}")?;
                if has_vars {
                    write!(f, "*")?;
                }
            }
            let mut first_var = true;
            for (i, &exp) in e.iter().enumerate() {
                if exp == 0 {
                    continue;
                }
                if !first_var {
                    write!(f, "*")?;
                }
                write!(f, "{}", self.syms.name(Sym(i as u32)))?;
                if exp > 1 {
                    write!(f, "^{exp}")?;
                }
                first_var = false;
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SymbolSet, MPoly, MPoly) {
        let mut s = SymbolSet::new();
        let x = s.intern("x");
        let y = s.intern("y");
        let px = MPoly::var(&s, x);
        let py = MPoly::var(&s, y);
        (s, px, py)
    }

    #[test]
    fn ring_axioms_on_samples() {
        let (_, x, y) = setup();
        let a = x.mul(&y).add(&MPoly::constant(2, 3.0)); // xy + 3
        let b = x.add(&y); // x + y
                           // Commutativity.
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        // Distributivity.
        let lhs = a.mul(&b.add(&x));
        let rhs = a.mul(&b).add(&a.mul(&x));
        assert_eq!(lhs, rhs);
        // Additive inverse.
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn eval_matches_structure() {
        let (_, x, y) = setup();
        // p = 2x²y − 3y + 1
        let p = x
            .pow(2)
            .mul(&y)
            .scale(2.0)
            .add(&y.scale(-3.0))
            .add(&MPoly::one(2));
        let (vx, vy) = (1.5, -2.0);
        assert_eq!(p.eval(&[vx, vy]), 2.0 * vx * vx * vy - 3.0 * vy + 1.0);
        assert_eq!(p.total_degree(), 3);
        assert_eq!(p.degree_in(Sym(0)), 2);
        assert_eq!(p.degree_in(Sym(1)), 1);
        assert_eq!(p.num_terms(), 3);
    }

    #[test]
    fn mul_eval_homomorphism() {
        let (_, x, y) = setup();
        let a = x.add(&MPoly::constant(2, 1.0));
        let b = y.sub(&x.scale(2.0));
        let p = [0.7, -1.3];
        assert!((a.mul(&b).eval(&p) - a.eval(&p) * b.eval(&p)).abs() < 1e-12);
        assert!((a.add(&b).eval(&p) - (a.eval(&p) + b.eval(&p))).abs() < 1e-12);
    }

    #[test]
    fn constants_and_zero() {
        let z = MPoly::zero(3);
        assert!(z.is_zero() && z.is_constant());
        assert_eq!(z.eval(&[1.0, 2.0, 3.0]), 0.0);
        let c = MPoly::constant(3, 4.5);
        assert!(c.is_constant());
        assert_eq!(c.constant_term(), 4.5);
        assert_eq!(MPoly::constant(3, 0.0), z);
        assert_eq!(c.pow(0), MPoly::one(3));
    }

    #[test]
    fn derivative_rules() {
        let (_, x, y) = setup();
        // d/dx (x²y + x) = 2xy + 1
        let p = x.pow(2).mul(&y).add(&x);
        let d = p.derivative(Sym(0));
        let expected = x.mul(&y).scale(2.0).add(&MPoly::one(2));
        assert_eq!(d, expected);
        assert!(MPoly::constant(2, 5.0).derivative(Sym(0)).is_zero());
    }

    #[test]
    fn substitute_fixes_a_symbol() {
        let (_, x, y) = setup();
        // p = 2x²y + x − 3
        let p = x
            .pow(2)
            .mul(&y)
            .scale(2.0)
            .add(&x)
            .sub(&MPoly::constant(2, 3.0));
        let q = p.substitute(Sym(0), 2.0); // x ← 2
        assert_eq!(q.degree_in(Sym(0)), 0);
        // q = 8y + 2 − 3 = 8y − 1
        assert_eq!(q, y.scale(8.0).sub(&MPoly::one(2)));
        // Evaluation consistency at arbitrary points.
        for yv in [0.3, -1.7] {
            assert!((q.eval(&[123.0, yv]) - p.eval(&[2.0, yv])).abs() < 1e-12);
        }
    }

    #[test]
    fn prune_drops_noise() {
        let (_, x, _) = setup();
        let p = x.add(&MPoly::constant(2, 1e-20));
        let q = p.prune(1e-12);
        assert_eq!(q, x);
        assert!(MPoly::zero(2).prune(1e-12).is_zero());
    }

    #[test]
    fn display_is_readable() {
        let (s, x, y) = setup();
        let p = x.pow(2).scale(2.0).sub(&y);
        let txt = format!("{}", p.display(&s));
        assert!(txt.contains("x^2"), "{txt}");
        assert!(txt.contains("y"), "{txt}");
        assert_eq!(format!("{}", MPoly::zero(2).display(&s)), "0");
    }

    #[test]
    fn monomial_constructor() {
        let m = MPoly::monomial(2, &[1, 2], 3.0);
        assert_eq!(m.eval(&[2.0, 3.0]), 3.0 * 2.0 * 9.0);
        assert!(MPoly::monomial(2, &[1, 0], 0.0).is_zero());
    }

    #[test]
    #[should_panic(expected = "nvars mismatch")]
    fn mismatched_nvars_panics() {
        let a = MPoly::zero(2);
        let b = MPoly::zero(3);
        let _ = a.add(&b);
    }

    #[test]
    fn serde_round_trip() {
        let (_, x, y) = setup();
        let p = x.mul(&y).scale(2.5).add(&MPoly::one(2));
        let json = serde_json::to_string(&p).unwrap();
        let back: MPoly = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
