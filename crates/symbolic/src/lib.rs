//! Symbolic-algebra substrate for AWEsymbolic.
//!
//! The paper delegated its symbolic computation to Mathematica; this crate
//! is the from-scratch Rust equivalent, scoped to exactly what symbolic AWE
//! needs:
//!
//! - [`SymbolSet`] — interned symbol names (the circuit elements treated as
//!   symbols);
//! - [`MPoly`] — multivariate polynomials with `f64` coefficients (the
//!   paper proves the network-function coefficients are multilinear in the
//!   symbols, so polynomial degree stays tiny);
//! - [`Ratio`] — rational functions `num/den`;
//! - [`SMat`] — symbolic matrices with division-free determinant,
//!   adjugate and Cramer solves (subset-sum Laplace expansion, numerically
//!   safe with floating coefficients);
//! - [`ExprGraph`]/[`Tape`] — a hash-consed expression DAG with constant
//!   folding and common-subexpression elimination that *compiles* symbolic
//!   forms into a flat register program. Evaluating the tape at given
//!   symbol values is the paper's "compiled set of operations" whose
//!   incremental cost is orders of magnitude below a full AWE analysis;
//! - [`opt`] — the optimizing pass pipeline (constant folding, CSE,
//!   neg/sub and mul-add fusion, dead-op elimination, register reuse)
//!   that [`ExprGraph::compile`] runs by default;
//! - [`Evaluator`] — the unified evaluation surface: owned scratch,
//!   single-point `eval_into`, and a blocked SoA `eval_batch` kernel.
//!
//! # Example
//!
//! ```
//! use awesym_symbolic::{MPoly, SymbolSet};
//!
//! let mut syms = SymbolSet::new();
//! let g1 = syms.intern("g1");
//! let g2 = syms.intern("g2");
//! // p = g1·g2 + 2
//! let p = MPoly::var(&syms, g1)
//!     .mul(&MPoly::var(&syms, g2))
//!     .add(&MPoly::constant(syms.len(), 2.0));
//! assert_eq!(p.eval(&[3.0, 4.0]), 14.0);
//! ```

#![forbid(unsafe_code)]

mod eval;
mod expr;
mod mpoly;
pub mod opt;
pub mod profile;
mod ratio;
mod smat;
mod symbols;

pub use eval::{AffineTail, BatchShapeError, Evaluator, LANES};
pub use expr::{CompiledFn, ExprGraph, ExprId, Tape, TapeOp};
pub use mpoly::MPoly;
pub use opt::{CompileOptions, OptLevel};
pub use ratio::Ratio;
pub use smat::SMat;
pub use symbols::{Sym, SymbolSet};
