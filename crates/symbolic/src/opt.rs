//! Optimizing pass pipeline over the evaluation tape.
//!
//! [`ExprGraph::compile`](crate::ExprGraph::compile) lowers the expression
//! DAG to SSA tape ops (instruction `i` defines value `i`) and hands them
//! here. The pipeline runs, in order:
//!
//! 1. **simplify** — constant folding, algebraic identities (`x+0`,
//!    `x·1`, `x·0`, `x/1`, `−(−x)`), and value-numbering CSE with
//!    canonical operand order for commutative ops;
//! 2. **fuse** — `a + (−b) → a − b` ([`TapeOp::Sub`]) and
//!    `a·b + c → MulAdd(a,b,c)` ([`TapeOp::MulAdd`]) when the product
//!    has no other consumer;
//! 3. **dce** — drop ops unreachable from the outputs and compact;
//! 4. **regalloc** — linear-scan register reuse from last-use liveness,
//!    shrinking the register file well below the instruction count.
//!
//! Identities that change IEEE-754 semantics on non-finite inputs
//! (e.g. `x − x → 0`) are deliberately *not* applied.

use crate::{Tape, TapeOp};
use std::collections::HashMap;

/// How aggressively the tape optimizer rewrites the tape.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum OptLevel {
    /// Emit the raw lowering unchanged (destinations are SSA: `dst[i] = i`).
    None,
    /// simplify + dce + regalloc.
    Basic,
    /// [`OptLevel::Basic`] plus neg/sub and mul-add fusion.
    #[default]
    Full,
}

impl OptLevel {
    /// Stable lowercase name (`none` / `basic` / `full`).
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Basic => "basic",
            OptLevel::Full => "full",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" | "0" => Ok(OptLevel::None),
            "basic" | "1" => Ok(OptLevel::Basic),
            "full" | "2" => Ok(OptLevel::Full),
            other => Err(format!(
                "unknown opt level `{other}` (expected none|basic|full)"
            )),
        }
    }
}

/// Compilation knobs for [`ExprGraph::compile_with`](crate::ExprGraph::compile_with).
///
/// `#[non_exhaustive]` so future knobs don't break callers; construct with
/// [`CompileOptions::new`] and chain setters.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct CompileOptions {
    /// Pass-pipeline aggressiveness (default [`OptLevel::Full`]).
    pub opt_level: OptLevel,
}

impl CompileOptions {
    /// Default options: [`OptLevel::Full`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the optimization level.
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }
}

/// Runs the pipeline at `level` over SSA ops; returns the final tape and
/// the register index of each output.
pub(crate) fn optimize(ops: Vec<TapeOp>, outs: Vec<u32>, level: OptLevel) -> (Tape, Vec<u32>) {
    match level {
        OptLevel::None => {
            let n = ops.len() as u32;
            let dst: Vec<u32> = (0..n).collect();
            (Tape::from_parts(ops, dst, n), outs)
        }
        OptLevel::Basic => {
            let (ops, outs) = simplify(ops, outs);
            let (ops, outs) = dce(ops, outs);
            regalloc(ops, outs)
        }
        OptLevel::Full => {
            let (ops, outs) = simplify(ops, outs);
            let ops = fuse(ops, &outs);
            let (ops, outs) = dce(ops, outs);
            regalloc(ops, outs)
        }
    }
}

/// Value-numbering key: structurally identical ops get one definition.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Vn {
    Const(u64),
    Sym(u32),
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    Sqrt(u32),
}

struct Simplifier {
    ops: Vec<TapeOp>,
    cse: HashMap<Vn, u32>,
}

impl Simplifier {
    fn emit(&mut self, key: Vn, op: TapeOp) -> u32 {
        if let Some(&v) = self.cse.get(&key) {
            return v;
        }
        let v = self.ops.len() as u32;
        self.ops.push(op);
        self.cse.insert(key, v);
        v
    }

    fn constant(&mut self, c: f64) -> u32 {
        self.emit(Vn::Const(c.to_bits()), TapeOp::Const(c))
    }

    fn const_of(&self, v: u32) -> Option<f64> {
        match self.ops[v as usize] {
            TapeOp::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// Constant folding, algebraic identities, and CSE. Input is SSA
/// (operand `a` refers to op `a`); output is SSA over a fresh op vector.
fn simplify(ops: Vec<TapeOp>, outs: Vec<u32>) -> (Vec<TapeOp>, Vec<u32>) {
    let mut s = Simplifier {
        ops: Vec::with_capacity(ops.len()),
        cse: HashMap::new(),
    };
    // repr[i] = value in the new program computing old op i.
    let mut repr = vec![0u32; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let v = match *op {
            TapeOp::Const(c) => s.constant(c),
            TapeOp::Sym(sym) => s.emit(Vn::Sym(sym), TapeOp::Sym(sym)),
            TapeOp::Add(a, b) => {
                let (a, b) = (repr[a as usize], repr[b as usize]);
                match (s.const_of(a), s.const_of(b)) {
                    (Some(x), Some(y)) => s.constant(x + y),
                    (Some(0.0), _) => b,
                    (_, Some(0.0)) => a,
                    _ => {
                        let (a, b) = if a <= b { (a, b) } else { (b, a) };
                        s.emit(Vn::Add(a, b), TapeOp::Add(a, b))
                    }
                }
            }
            TapeOp::Sub(a, b) => {
                // Raw lowering never emits Sub, but stay closed under the IR.
                let (a, b) = (repr[a as usize], repr[b as usize]);
                match (s.const_of(a), s.const_of(b)) {
                    (Some(x), Some(y)) => s.constant(x - y),
                    (_, Some(0.0)) => a,
                    _ => s.emit(Vn::Sub(a, b), TapeOp::Sub(a, b)),
                }
            }
            TapeOp::Mul(a, b) => {
                let (a, b) = (repr[a as usize], repr[b as usize]);
                match (s.const_of(a), s.const_of(b)) {
                    (Some(x), Some(y)) => s.constant(x * y),
                    (Some(0.0), _) | (_, Some(0.0)) => s.constant(0.0),
                    (Some(1.0), _) => b,
                    (_, Some(1.0)) => a,
                    _ => {
                        let (a, b) = if a <= b { (a, b) } else { (b, a) };
                        s.emit(Vn::Mul(a, b), TapeOp::Mul(a, b))
                    }
                }
            }
            TapeOp::Div(a, b) => {
                let (a, b) = (repr[a as usize], repr[b as usize]);
                match (s.const_of(a), s.const_of(b)) {
                    (Some(x), Some(y)) => s.constant(x / y),
                    (_, Some(1.0)) => a,
                    _ => s.emit(Vn::Div(a, b), TapeOp::Div(a, b)),
                }
            }
            TapeOp::Neg(a) => {
                let a = repr[a as usize];
                if let Some(x) = s.const_of(a) {
                    s.constant(-x)
                } else if let TapeOp::Neg(inner) = s.ops[a as usize] {
                    inner
                } else {
                    s.emit(Vn::Neg(a), TapeOp::Neg(a))
                }
            }
            TapeOp::Sqrt(a) => {
                let a = repr[a as usize];
                match s.const_of(a) {
                    Some(x) if x >= 0.0 => s.constant(x.sqrt()),
                    _ => s.emit(Vn::Sqrt(a), TapeOp::Sqrt(a)),
                }
            }
            TapeOp::MulAdd(a, b, c) => {
                // Closed under the IR; no folding beyond remapping.
                let (a, b, c) = (repr[a as usize], repr[b as usize], repr[c as usize]);
                let v = s.ops.len() as u32;
                s.ops.push(TapeOp::MulAdd(a, b, c));
                v
            }
        };
        repr[i] = v;
    }
    let outs = outs.iter().map(|&o| repr[o as usize]).collect();
    (s.ops, outs)
}

/// Use count of each SSA value (operand references plus output references).
fn use_counts(ops: &[TapeOp], outs: &[u32]) -> Vec<u32> {
    let mut uses = vec![0u32; ops.len()];
    let mut touch = |v: u32| uses[v as usize] += 1;
    for op in ops {
        match *op {
            TapeOp::Const(_) | TapeOp::Sym(_) => {}
            TapeOp::Neg(a) | TapeOp::Sqrt(a) => touch(a),
            TapeOp::Add(a, b) | TapeOp::Sub(a, b) | TapeOp::Mul(a, b) | TapeOp::Div(a, b) => {
                touch(a);
                touch(b);
            }
            TapeOp::MulAdd(a, b, c) => {
                touch(a);
                touch(b);
                touch(c);
            }
        }
    }
    for &o in outs {
        touch(o);
    }
    uses
}

/// Neg/sub and mul-add fusion. Rewrites `Add` ops in place; the bypassed
/// `Neg`/`Mul` definitions go dead and fall to the subsequent DCE pass.
fn fuse(mut ops: Vec<TapeOp>, outs: &[u32]) -> Vec<TapeOp> {
    let uses = use_counts(&ops, outs);
    for i in 0..ops.len() {
        let TapeOp::Add(a, b) = ops[i] else { continue };
        // Prefer mul-add: it retires the whole product op. Only fuse a
        // single-use product — a shared one would still be computed, and
        // the fused FMA-style rounding would diverge from its other uses.
        if let TapeOp::Mul(x, y) = ops[a as usize] {
            if uses[a as usize] == 1 {
                ops[i] = TapeOp::MulAdd(x, y, b);
                continue;
            }
        }
        if let TapeOp::Mul(x, y) = ops[b as usize] {
            if uses[b as usize] == 1 {
                ops[i] = TapeOp::MulAdd(x, y, a);
                continue;
            }
        }
        // a + (−c) → a − c. The negation stays only if shared.
        if let TapeOp::Neg(c) = ops[b as usize] {
            ops[i] = TapeOp::Sub(a, c);
            continue;
        }
        if let TapeOp::Neg(c) = ops[a as usize] {
            ops[i] = TapeOp::Sub(b, c);
        }
    }
    ops
}

/// Drops ops unreachable from the outputs and compacts, remapping
/// operands and outputs.
fn dce(ops: Vec<TapeOp>, outs: Vec<u32>) -> (Vec<TapeOp>, Vec<u32>) {
    let mut live = vec![false; ops.len()];
    let mut stack: Vec<u32> = outs.clone();
    while let Some(v) = stack.pop() {
        let i = v as usize;
        if live[i] {
            continue;
        }
        live[i] = true;
        match ops[i] {
            TapeOp::Const(_) | TapeOp::Sym(_) => {}
            TapeOp::Neg(a) | TapeOp::Sqrt(a) => stack.push(a),
            TapeOp::Add(a, b) | TapeOp::Sub(a, b) | TapeOp::Mul(a, b) | TapeOp::Div(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            TapeOp::MulAdd(a, b, c) => {
                stack.push(a);
                stack.push(b);
                stack.push(c);
            }
        }
    }
    let mut remap = vec![u32::MAX; ops.len()];
    let mut compact = Vec::with_capacity(ops.len());
    for (i, op) in ops.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        remap[i] = compact.len() as u32;
        let r = |v: u32| remap[v as usize];
        compact.push(match op {
            TapeOp::Const(_) | TapeOp::Sym(_) => op,
            TapeOp::Neg(a) => TapeOp::Neg(r(a)),
            TapeOp::Sqrt(a) => TapeOp::Sqrt(r(a)),
            TapeOp::Add(a, b) => TapeOp::Add(r(a), r(b)),
            TapeOp::Sub(a, b) => TapeOp::Sub(r(a), r(b)),
            TapeOp::Mul(a, b) => TapeOp::Mul(r(a), r(b)),
            TapeOp::Div(a, b) => TapeOp::Div(r(a), r(b)),
            TapeOp::MulAdd(a, b, c) => TapeOp::MulAdd(r(a), r(b), r(c)),
        });
    }
    let outs = outs.iter().map(|&o| remap[o as usize]).collect();
    (compact, outs)
}

/// Linear-scan register allocation from last-use liveness. Operand
/// registers are freed at their last use *before* the destination is
/// allocated, so an instruction may write over one of its own operands —
/// safe because every op reads its operands before writing.
fn regalloc(ops: Vec<TapeOp>, outs: Vec<u32>) -> (Tape, Vec<u32>) {
    let n = ops.len();
    let mut last_use = vec![0usize; n];
    for (i, op) in ops.iter().enumerate() {
        let mut touch = |v: u32| last_use[v as usize] = i;
        match *op {
            TapeOp::Const(_) | TapeOp::Sym(_) => {}
            TapeOp::Neg(a) | TapeOp::Sqrt(a) => touch(a),
            TapeOp::Add(a, b) | TapeOp::Sub(a, b) | TapeOp::Mul(a, b) | TapeOp::Div(a, b) => {
                touch(a);
                touch(b);
            }
            TapeOp::MulAdd(a, b, c) => {
                touch(a);
                touch(b);
                touch(c);
            }
        }
    }
    // Outputs stay live past the end of the program.
    for &o in &outs {
        last_use[o as usize] = usize::MAX;
    }

    let mut reg_of = vec![u32::MAX; n];
    let mut free: Vec<u32> = Vec::new();
    let mut n_regs = 0u32;
    let mut final_ops = Vec::with_capacity(n);
    let mut dst = Vec::with_capacity(n);
    for (i, op) in ops.iter().enumerate() {
        let mut operands = [u32::MAX; 3];
        let (vals, rewritten): (&[u32], _) = match *op {
            TapeOp::Const(c) => (&[], TapeOp::Const(c)),
            TapeOp::Sym(s) => (&[], TapeOp::Sym(s)),
            TapeOp::Neg(a) => {
                operands[0] = a;
                (&operands[..1], TapeOp::Neg(reg_of[a as usize]))
            }
            TapeOp::Sqrt(a) => {
                operands[0] = a;
                (&operands[..1], TapeOp::Sqrt(reg_of[a as usize]))
            }
            TapeOp::Add(a, b) => {
                operands[0] = a;
                operands[1] = b;
                (
                    &operands[..2],
                    TapeOp::Add(reg_of[a as usize], reg_of[b as usize]),
                )
            }
            TapeOp::Sub(a, b) => {
                operands[0] = a;
                operands[1] = b;
                (
                    &operands[..2],
                    TapeOp::Sub(reg_of[a as usize], reg_of[b as usize]),
                )
            }
            TapeOp::Mul(a, b) => {
                operands[0] = a;
                operands[1] = b;
                (
                    &operands[..2],
                    TapeOp::Mul(reg_of[a as usize], reg_of[b as usize]),
                )
            }
            TapeOp::Div(a, b) => {
                operands[0] = a;
                operands[1] = b;
                (
                    &operands[..2],
                    TapeOp::Div(reg_of[a as usize], reg_of[b as usize]),
                )
            }
            TapeOp::MulAdd(a, b, c) => {
                operands[0] = a;
                operands[1] = b;
                operands[2] = c;
                (
                    &operands[..3],
                    TapeOp::MulAdd(reg_of[a as usize], reg_of[b as usize], reg_of[c as usize]),
                )
            }
        };
        // Free operand registers dying here (each value at most once,
        // even when it appears as several operands of this op).
        for (k, &v) in vals.iter().enumerate() {
            if last_use[v as usize] == i && !vals[..k].contains(&v) {
                free.push(reg_of[v as usize]);
            }
        }
        let d = free.pop().unwrap_or_else(|| {
            let d = n_regs;
            n_regs += 1;
            d
        });
        reg_of[i] = d;
        final_ops.push(rewritten);
        dst.push(d);
    }
    let out_regs = outs.iter().map(|&o| reg_of[o as usize]).collect();
    (Tape::from_parts(final_ops, dst, n_regs), out_regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprGraph;

    fn kinds(tape: &Tape) -> Vec<&'static str> {
        tape.ops()
            .iter()
            .map(|op| match op {
                TapeOp::Const(_) => "const",
                TapeOp::Sym(_) => "sym",
                TapeOp::Add(..) => "add",
                TapeOp::Sub(..) => "sub",
                TapeOp::Mul(..) => "mul",
                TapeOp::Div(..) => "div",
                TapeOp::Neg(..) => "neg",
                TapeOp::Sqrt(..) => "sqrt",
                TapeOp::MulAdd(..) => "muladd",
            })
            .collect()
    }

    #[test]
    fn opt_level_round_trips_strings() {
        for l in [OptLevel::None, OptLevel::Basic, OptLevel::Full] {
            assert_eq!(l.as_str().parse::<OptLevel>().unwrap(), l);
        }
        assert_eq!("1".parse::<OptLevel>().unwrap(), OptLevel::Basic);
        assert!("aggressive".parse::<OptLevel>().is_err());
    }

    #[test]
    fn sub_fusion() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let d = g.sub(x, y);
        let f = g.compile(&[d]);
        assert_eq!(kinds(f.tape()), vec!["sym", "sym", "sub"]);
        assert_eq!(f.eval(&[5.0, 3.0])[0], 2.0);
    }

    #[test]
    fn muladd_fusion_single_use_only() {
        let mut g = ExprGraph::new(3);
        let x = g.sym(0);
        let y = g.sym(1);
        let z = g.sym(2);
        let xy = g.mul(x, y);
        let e = g.add(xy, z);
        let f = g.compile(&[e]);
        assert_eq!(kinds(f.tape()), vec!["sym", "sym", "sym", "muladd"]);
        assert_eq!(f.eval(&[2.0, 3.0, 4.0])[0], 10.0);

        // Shared product: the mul must survive, no fusion.
        let shared = g.add(xy, z);
        let also = g.mul(xy, z);
        let f2 = g.compile(&[shared, also]);
        assert!(kinds(f2.tape()).contains(&"mul"));
        assert!(!kinds(f2.tape()).contains(&"muladd"));
        let out = f2.eval(&[2.0, 3.0, 4.0]);
        assert_eq!(out[0], 10.0);
        assert_eq!(out[1], 24.0);
    }

    #[test]
    fn cse_across_lowering() {
        // The graph hash-conses, but re-lowered polynomials can still
        // produce structurally equal ops; drive CSE through the tape by
        // building duplicates the graph cannot see as equal.
        let ops = vec![
            TapeOp::Sym(0),
            TapeOp::Sym(0),
            TapeOp::Mul(0, 0),
            TapeOp::Mul(1, 1),
            TapeOp::Add(2, 3),
        ];
        let (tape, outs) = optimize(ops, vec![4], OptLevel::Basic);
        // Sym(0) dedups, the two squares dedup, x²+x² stays one add.
        assert_eq!(tape.len(), 3);
        let mut regs = vec![0.0; tape.n_regs()];
        tape.replay(&[3.0], &mut regs);
        assert_eq!(regs[outs[0] as usize], 18.0);
    }

    #[test]
    fn constant_folding_through_tape() {
        let ops = vec![
            TapeOp::Const(2.0),
            TapeOp::Const(3.0),
            TapeOp::Add(0, 1),
            TapeOp::Sym(0),
            TapeOp::Mul(2, 3),
        ];
        let (tape, outs) = optimize(ops, vec![4], OptLevel::Full);
        // Folds to Const(5)·x.
        assert_eq!(tape.len(), 3);
        let mut regs = vec![0.0; tape.n_regs()];
        tape.replay(&[4.0], &mut regs);
        assert_eq!(regs[outs[0] as usize], 20.0);
    }

    #[test]
    fn regalloc_shrinks_register_file() {
        // A long chain: x + x + x + … reuses registers aggressively.
        let mut g = ExprGraph::new(1);
        let x = g.sym(0);
        let mut acc = x;
        for _ in 0..32 {
            let sq = g.mul(acc, acc);
            let c = g.constant(0.5);
            acc = g.mul(sq, c);
            acc = g.add(acc, x);
        }
        let f = g.compile(&[acc]);
        assert!(
            f.tape().n_regs() < f.op_count() / 4,
            "n_regs {} vs ops {}",
            f.tape().n_regs(),
            f.op_count()
        );
        // And the optimized program still matches the reference.
        let direct = g.eval(acc, &[0.3]);
        assert!((f.eval(&[0.3])[0] - direct).abs() < 1e-12);
    }

    #[test]
    fn regalloc_write_over_operand_is_safe() {
        // d = a / b where a dies at this op: dst may reuse a's register.
        let ops = vec![
            TapeOp::Sym(0),
            TapeOp::Sym(1),
            TapeOp::Div(0, 1),
            TapeOp::Neg(2),
        ];
        let (tape, outs) = optimize(ops, vec![3], OptLevel::Full);
        let mut regs = vec![0.0; tape.n_regs()];
        tape.replay(&[6.0, 3.0], &mut regs);
        assert_eq!(regs[outs[0] as usize], -2.0);
        assert!(tape.n_regs() <= 3);
    }

    #[test]
    fn dce_drops_bypassed_ops() {
        // After sub fusion the Neg is bypassed and must disappear.
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let d = g.sub(x, y);
        let f = g.compile(&[d]);
        assert!(!kinds(f.tape()).contains(&"neg"));
    }

    #[test]
    fn empty_outputs() {
        let g = ExprGraph::new(1);
        let f = g.compile(&[]);
        assert_eq!(f.op_count(), 0);
        assert!(f.eval(&[1.0]).is_empty());
    }
}
