//! The unified evaluation surface for compiled tapes.
//!
//! [`Evaluator`] owns its scratch register file (the old API threaded
//! `scratch_len`/`regs` through every call site) and adds a blocked
//! structure-of-arrays batch kernel: [`Evaluator::eval_batch`] walks the
//! tape once per block of [`LANES`] points, keeping each instruction's
//! operands hot across the whole block so the compiler can autovectorize
//! the inner lane loop.

use crate::{profile, CompiledFn};
use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

/// Points per SoA block in [`Evaluator::eval_batch`].
pub const LANES: usize = 8;

/// A batch input whose shape does not match the compiled function —
/// either a point with the wrong symbol count or an output slice of the
/// wrong length. Returned by [`Evaluator::try_eval_batch`] so callers can
/// turn shape bugs into per-request errors instead of panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchShapeError {
    /// Point `index` carried `got` values; the function takes `expected`.
    PointArity {
        /// Index of the offending point.
        index: usize,
        /// Values supplied.
        got: usize,
        /// Symbol count the function expects.
        expected: usize,
    },
    /// The output slice holds `got` values; `expected` are needed.
    OutputLen {
        /// Slice length supplied.
        got: usize,
        /// `points.len() * n_outputs()`.
        expected: usize,
    },
}

impl fmt::Display for BatchShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchShapeError::PointArity {
                index,
                got,
                expected,
            } => write!(
                f,
                "point {index} has {got} values, function takes {expected} symbols"
            ),
            BatchShapeError::OutputLen { got, expected } => {
                write!(f, "output slice holds {got} values, {expected} needed")
            }
        }
    }
}

impl std::error::Error for BatchShapeError {}

/// An affine extension appended after the tape outputs:
/// `row_i = base[i] + Σ_j jac[i][j] · (x[j] − x0[j])`.
///
/// This is how a partial-Padé model's Taylor tail (first-order moment
/// sensitivities around the nominal point) rides along with the compiled
/// symbolic moments in a single [`Evaluator`].
#[derive(Debug, Clone, PartialEq)]
pub struct AffineTail {
    base: Vec<f64>,
    jac: Vec<Vec<f64>>,
    x0: Vec<f64>,
}

impl AffineTail {
    /// Builds a tail of `base.len()` rows over `x0.len()` inputs.
    ///
    /// # Panics
    ///
    /// Panics when `jac` is not `base.len()` rows of `x0.len()` columns.
    pub fn new(base: Vec<f64>, jac: Vec<Vec<f64>>, x0: Vec<f64>) -> Self {
        assert_eq!(jac.len(), base.len(), "jacobian row count mismatch");
        for row in &jac {
            assert_eq!(row.len(), x0.len(), "jacobian column count mismatch");
        }
        AffineTail { base, jac, x0 }
    }

    /// Number of appended rows.
    pub fn rows(&self) -> usize {
        self.base.len()
    }

    #[inline]
    fn eval_row(&self, i: usize, vals: &[f64]) -> f64 {
        let mut acc = self.base[i];
        for ((&j, &x), &x0) in self.jac[i].iter().zip(vals).zip(&self.x0) {
            acc += j * (x - x0);
        }
        acc
    }
}

/// A reusable evaluation context for a [`CompiledFn`] — the preferred way
/// to evaluate compiled models.
///
/// The evaluator owns its register file, so evaluation takes `&self` and
/// allocates nothing per point. It is `Send` but not `Sync`: create one
/// per worker thread (they are cheap — one `Vec` of `n_regs` doubles).
///
/// ```
/// use awesym_symbolic::ExprGraph;
///
/// let mut g = ExprGraph::new(2);
/// let (x, y) = (g.sym(0), g.sym(1));
/// let e = g.mul(x, y);
/// let f = g.compile(&[e]);
/// let ev = f.evaluator();
/// let mut out = [0.0];
/// ev.eval_into(&[3.0, 4.0], &mut out);
/// assert_eq!(out[0], 12.0);
/// ```
#[derive(Debug)]
pub struct Evaluator<'m> {
    fun: &'m CompiledFn,
    tail: Option<AffineTail>,
    scratch: RefCell<Vec<f64>>,
}

impl<'m> Evaluator<'m> {
    pub(crate) fn new(fun: &'m CompiledFn, tail: Option<AffineTail>) -> Self {
        if let Some(t) = &tail {
            assert_eq!(t.x0.len(), fun.n_syms(), "affine tail input arity mismatch");
        }
        Evaluator {
            fun,
            tail,
            scratch: RefCell::new(vec![0.0; fun.tape().n_regs()]),
        }
    }

    /// Number of input symbols.
    pub fn n_inputs(&self) -> usize {
        self.fun.n_syms()
    }

    /// Number of outputs per point (tape outputs plus tail rows).
    pub fn n_outputs(&self) -> usize {
        self.fun.n_outputs() + self.tail.as_ref().map_or(0, AffineTail::rows)
    }

    /// Evaluates one point into `out`.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len() != self.n_inputs()` or
    /// `out.len() != self.n_outputs()`.
    pub fn eval_into(&self, vals: &[f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.n_inputs(), "value vector length mismatch");
        assert_eq!(out.len(), self.n_outputs(), "output slice length mismatch");
        // Sampled profiling hook (see `profile`): steady-state cost is one
        // relaxed atomic increment; admitted calls pay two clock reads.
        let t0 = profile::SAMPLER.sample().then(Instant::now);
        let mut regs = self.scratch.borrow_mut();
        self.fun.tape().replay(vals, &mut regs);
        let k = self.fun.n_outputs();
        for (o, &r) in out[..k].iter_mut().zip(self.fun.output_regs()) {
            *o = regs[r as usize];
        }
        if let Some(t) = &self.tail {
            for (i, o) in out[k..].iter_mut().enumerate() {
                *o = t.eval_row(i, vals);
            }
        }
        if let Some(t0) = t0 {
            profile::record(self.fun.tape(), 1, t0.elapsed());
        }
    }

    /// Evaluates one point, allocating the result vector.
    pub fn eval(&self, vals: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs()];
        self.eval_into(vals, &mut out);
        out
    }

    /// Evaluates a batch of points into row-major `out`
    /// (`points.len() × self.n_outputs()`).
    ///
    /// Full blocks of [`LANES`] points run through the tape in SoA layout
    /// — one instruction dispatch per block instead of per point; the
    /// remainder falls back to the single-point path. Results are
    /// bit-identical to per-point [`Evaluator::eval_into`].
    ///
    /// # Panics
    ///
    /// Panics when a point has the wrong arity or `out` is not
    /// `points.len() * self.n_outputs()` long. Use
    /// [`Evaluator::try_eval_batch`] to get a typed error instead.
    pub fn eval_batch(&self, points: &[Vec<f64>], out: &mut [f64]) {
        if let Err(e) = self.try_eval_batch(points, out) {
            // A shape mismatch here is a caller bug; panic in every build
            // profile rather than read stale registers.
            panic!("eval_batch shape error: {e}");
        }
    }

    /// As [`Evaluator::eval_batch`], but mismatched point arity or output
    /// length is a typed [`BatchShapeError`] instead of a panic — nothing
    /// is evaluated and `out` is untouched on error, so stale registers
    /// can never masquerade as results.
    ///
    /// # Errors
    ///
    /// [`BatchShapeError::PointArity`] for the first point whose length is
    /// not `self.n_inputs()`; [`BatchShapeError::OutputLen`] when `out` is
    /// not `points.len() * self.n_outputs()` long.
    pub fn try_eval_batch(
        &self,
        points: &[Vec<f64>],
        out: &mut [f64],
    ) -> Result<(), BatchShapeError> {
        let n_in = self.n_inputs();
        let n_out = self.n_outputs();
        if out.len() != points.len() * n_out {
            return Err(BatchShapeError::OutputLen {
                got: out.len(),
                expected: points.len() * n_out,
            });
        }
        if let Some((index, p)) = points.iter().enumerate().find(|(_, p)| p.len() != n_in) {
            return Err(BatchShapeError::PointArity {
                index,
                got: p.len(),
                expected: n_in,
            });
        }
        let tape = self.fun.tape();
        let k = self.fun.n_outputs();
        // Sampled profiling: the whole batch counts as one call, so the
        // per-op tally is one tape walk scaled by the point count.
        let t0 = profile::SAMPLER.sample().then(Instant::now);
        let full = points.len() / LANES * LANES;
        if full > 0 {
            let mut xb = vec![0.0; n_in.max(1) * LANES];
            let mut regs = vec![0.0; tape.n_regs().max(1) * LANES];
            for p0 in (0..full).step_by(LANES) {
                for (lane, p) in points[p0..p0 + LANES].iter().enumerate() {
                    for (s, &x) in p.iter().enumerate() {
                        xb[s * LANES + lane] = x;
                    }
                }
                replay_block(tape, &xb, &mut regs);
                for lane in 0..LANES {
                    let row = &mut out[(p0 + lane) * n_out..(p0 + lane + 1) * n_out];
                    for (o, &r) in row[..k].iter_mut().zip(self.fun.output_regs()) {
                        *o = regs[r as usize * LANES + lane];
                    }
                    if let Some(t) = &self.tail {
                        for (i, o) in row[k..].iter_mut().enumerate() {
                            *o = t.eval_row(i, &points[p0 + lane]);
                        }
                    }
                }
            }
        }
        for (p, row) in points[full..]
            .iter()
            .zip(out[full * n_out..].chunks_exact_mut(n_out))
        {
            self.eval_into(p, row);
        }
        if let Some(t0) = t0 {
            profile::record(tape, points.len(), t0.elapsed());
        }
        Ok(())
    }
}

/// Replays the tape over [`LANES`] points at once. Registers live in SoA
/// layout: lane `l` of register `r` is `regs[r*LANES + l]`. Operands are
/// copied to stack arrays before the lane loop so each arm is a
/// straight-line, bounds-check-free map the compiler can vectorize.
fn replay_block(tape: &crate::Tape, xb: &[f64], regs: &mut [f64]) {
    use crate::TapeOp;
    let lane = |v: u32| v as usize * LANES;
    for (op, &d) in tape.ops().iter().zip(tape.dst()) {
        let db = lane(d);
        let dv: [f64; LANES] = match *op {
            TapeOp::Const(c) => [c; LANES],
            TapeOp::Sym(s) => xb[lane(s)..lane(s) + LANES].try_into().unwrap(),
            TapeOp::Add(a, b) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                let vb: [f64; LANES] = regs[lane(b)..lane(b) + LANES].try_into().unwrap();
                std::array::from_fn(|l| va[l] + vb[l])
            }
            TapeOp::Sub(a, b) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                let vb: [f64; LANES] = regs[lane(b)..lane(b) + LANES].try_into().unwrap();
                std::array::from_fn(|l| va[l] - vb[l])
            }
            TapeOp::Mul(a, b) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                let vb: [f64; LANES] = regs[lane(b)..lane(b) + LANES].try_into().unwrap();
                std::array::from_fn(|l| va[l] * vb[l])
            }
            TapeOp::Div(a, b) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                let vb: [f64; LANES] = regs[lane(b)..lane(b) + LANES].try_into().unwrap();
                std::array::from_fn(|l| va[l] / vb[l])
            }
            TapeOp::Neg(a) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                std::array::from_fn(|l| -va[l])
            }
            TapeOp::Sqrt(a) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                std::array::from_fn(|l| va[l].sqrt())
            }
            TapeOp::MulAdd(a, b, c) => {
                let va: [f64; LANES] = regs[lane(a)..lane(a) + LANES].try_into().unwrap();
                let vb: [f64; LANES] = regs[lane(b)..lane(b) + LANES].try_into().unwrap();
                let vc: [f64; LANES] = regs[lane(c)..lane(c) + LANES].try_into().unwrap();
                // Same `a*b + c` rounding as the scalar path, so batch and
                // single-point results are bit-identical.
                std::array::from_fn(|l| va[l] * vb[l] + vc[l])
            }
        };
        regs[db..db + LANES].copy_from_slice(&dv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprGraph;

    fn demo_fn() -> CompiledFn {
        let mut g = ExprGraph::new(3);
        let x = g.sym(0);
        let y = g.sym(1);
        let z = g.sym(2);
        let xy = g.mul(x, y);
        let s = g.add(xy, z);
        let d = g.sub(s, y);
        let q = g.div(d, z);
        let r = g.sqrt(q);
        g.compile(&[s, d, q, r])
    }

    #[test]
    fn evaluator_matches_eval() {
        let f = demo_fn();
        let ev = f.evaluator();
        assert_eq!(ev.n_inputs(), 3);
        assert_eq!(ev.n_outputs(), 4);
        for vals in [[1.0, 2.0, 3.0], [0.5, -1.5, 2.0], [4.0, 0.25, 1.0]] {
            assert_eq!(ev.eval(&vals), f.eval(&vals));
        }
    }

    #[test]
    fn eval_batch_bit_identical_to_single_point() {
        let f = demo_fn();
        let ev = f.evaluator();
        // 21 points: two full SoA blocks + a 5-point remainder.
        let points: Vec<Vec<f64>> = (0..21)
            .map(|i| {
                let t = i as f64;
                vec![0.1 + 0.3 * t, 1.0 + 0.05 * t * t, 2.0 + (t * 0.7).sin()]
            })
            .collect();
        let n_out = ev.n_outputs();
        let mut batch = vec![0.0; points.len() * n_out];
        ev.eval_batch(&points, &mut batch);
        for (i, p) in points.iter().enumerate() {
            let single = ev.eval(p);
            assert_eq!(&batch[i * n_out..(i + 1) * n_out], &single[..], "point {i}");
        }
    }

    #[test]
    fn affine_tail_rows_appended() {
        let mut g = ExprGraph::new(2);
        let x = g.sym(0);
        let y = g.sym(1);
        let e = g.mul(x, y);
        let f = g.compile(&[e]);
        let tail = AffineTail::new(
            vec![10.0, -1.0],
            vec![vec![1.0, 0.0], vec![2.0, -3.0]],
            vec![1.0, 1.0],
        );
        let ev = f.evaluator_with_tail(tail);
        assert_eq!(ev.n_outputs(), 3);
        let out = ev.eval(&[2.0, 5.0]);
        assert_eq!(out[0], 10.0); // x·y
        assert_eq!(out[1], 11.0); // 10 + 1·(2−1)
        assert_eq!(out[2], -11.0); // −1 + 2·(2−1) − 3·(5−1)
                                   // Batch path agrees, including tail rows.
        let points: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let mut batch = vec![0.0; points.len() * 3];
        ev.eval_batch(&points, &mut batch);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(&batch[i * 3..i * 3 + 3], &ev.eval(p)[..]);
        }
    }

    #[test]
    fn try_eval_batch_reports_shape_errors() {
        let f = demo_fn();
        let ev = f.evaluator();
        let n_out = ev.n_outputs();
        let good = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let mut out = vec![0.0; good.len() * n_out];
        ev.try_eval_batch(&good, &mut out).unwrap();

        // A short point is named by index, and out is untouched.
        let bad = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0]];
        let mut scratch = vec![-7.0; bad.len() * n_out];
        let e = ev.try_eval_batch(&bad, &mut scratch).unwrap_err();
        assert_eq!(
            e,
            BatchShapeError::PointArity {
                index: 1,
                got: 2,
                expected: 3
            }
        );
        assert!(e.to_string().contains("point 1"), "{e}");
        assert!(scratch.iter().all(|&x| x == -7.0));

        // Wrong output length is its own variant.
        let mut short = vec![0.0; 1];
        let e = ev.try_eval_batch(&good, &mut short).unwrap_err();
        assert!(
            matches!(e, BatchShapeError::OutputLen { got: 1, .. }),
            "{e}"
        );
    }

    #[test]
    #[should_panic(expected = "point 0 has 1 values")]
    fn eval_batch_wrong_arity_panics() {
        let f = demo_fn();
        let ev = f.evaluator();
        let mut out = vec![0.0; ev.n_outputs()];
        ev.eval_batch(&[vec![1.0]], &mut out);
    }

    #[test]
    #[should_panic(expected = "value vector length mismatch")]
    fn wrong_arity_panics() {
        let f = demo_fn();
        let ev = f.evaluator();
        let mut out = vec![0.0; ev.n_outputs()];
        ev.eval_into(&[1.0], &mut out);
    }

    #[test]
    fn send_across_threads() {
        let f = demo_fn();
        std::thread::scope(|s| {
            s.spawn(|| {
                let ev = f.evaluator();
                assert_eq!(ev.eval(&[1.0, 2.0, 3.0]), f.eval(&[1.0, 2.0, 3.0]));
            });
        });
    }
}
