//! The `awesym` command-line tool: netlist in, analysis out.
//!
//! This is the repository's analog of AWEsim [Huang/Raghavan/Rohrer]: a
//! driver that parses a SPICE-subset netlist and runs the AWE and
//! AWEsymbolic analyses from the shell. The logic lives here (testable);
//! `src/bin/awesym.rs` is a thin wrapper.

use crate::{
    parse_spice, AweAnalysis, Circuit, CompiledModel, ElementId, ElementKind, ModelOptions, Node,
    OptLevel, SymbolBinding,
};
use serde_json::Value as Content;
use std::fmt::Write as _;

/// Shortest-round-trip float text via the shared wire formatter — the
/// same `ryu`-backed path every server encoder uses, so CLI output and
/// wire output can never disagree on a value's digits.
fn fmt_f64(v: f64) -> String {
    let mut out = Vec::new();
    serde_json::write_f64(v, &mut out);
    String::from_utf8(out).unwrap_or_default()
}

/// Runs the CLI with `args` (excluding the program name) and returns the
/// output text.
///
/// # Errors
///
/// Returns a human-readable error string for bad usage, parse failures, or
/// analysis failures.
pub fn run(args: &[&str]) -> Result<String, String> {
    let mut it = args.iter().copied();
    let cmd = it.next().ok_or_else(usage)?;
    let rest: Vec<&str> = it.collect();
    match cmd {
        "lint" => cmd_lint(&rest),
        "poles" => cmd_poles(&rest),
        "sweep" => cmd_sweep(&rest),
        "model" => cmd_model(&rest),
        "eval" => cmd_eval(&rest),
        "serve" => cmd_serve(&rest),
        "timing" => cmd_timing(&rest),
        "op" => cmd_op(&rest),
        "linearize" => cmd_linearize(&rest),
        "ac" => cmd_ac(&rest),
        "tran" => cmd_tran(&rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "\
awesym — compiled symbolic circuit analysis (AWEsymbolic, DAC 1992)

USAGE:
  awesym lint  <netlist>
  awesym poles <netlist> --input <src> --output <node> [--order q]
  awesym sweep <netlist> --input <src> --output <node> --symbol <elem>[:role]...
               [--order q] [--points n] [--span f] [--opt-level none|basic|full]
  awesym model <netlist> --input <src> --output <node> --symbol <elem>[:role]...
               [--order q] [--opt-level none|basic|full]
               [--out file.json | --out file.awesym]
               (.awesym writes the versioned, checksummed artifact format)
  awesym eval  --model file.{json,awesym} --values v1,v2,...
  awesym serve [--capacity n] [--deadline-ms t] [--max-batch n]
               [--max-inflight n] [--stats-every n] [--shards n]
               [--shard-workers n]
               newline-delimited-JSON request loop on stdin/stdout: load,
               compile, save, eval, batch, stats, health, drain,
               shutdown (see docs/serving.md; limits in
               docs/robustness.md). --shards splits the model fleet into
               n supervised shards (crash isolation, per-shard circuit
               breakers), each with a persistent --shard-workers pool.
               --stats-every n emits a stats NDJSON line (with per-stage
               latency breakdown) to stderr every n requests
               (docs/observability.md)
  awesym timing [chain.json] [--stages n] [--samples n] [--block n]
               [--workers n] [--seed s] [--deadline secs] [--metric m]
               [--order q]
               compiles a gate chain (spec file, or a uniform n-stage
               chain) and streams a Monte Carlo yield analysis through
               the persistent-pool batch engine; NDJSON report on stdout
               (docs/timing.md). --samples accepts 1e7-style notation;
               --metric is elmore|d2m|two-pole; --deadline defaults to
               1.25x the nominal path delay.
  awesym op        <netlist>     DC operating point (supports D/Q cards)
  awesym linearize <netlist> [--out small.sp]
                                 bias + emit the small-signal netlist
  awesym ac   <netlist> --input <src> --output <node>
              [--fstart hz] [--fstop hz] [--points n]
  awesym tran <netlist> --input <src> --output <node>
              --tstop s [--dt s]  step-response transient (trapezoidal)

Roles: g (conductance), r (resistance), c (capacitance), l (inductance),
gm (transconductance); default inferred from the element kind.
"
    .to_string()
}

struct Opts {
    netlist: Option<String>,
    input: Option<String>,
    output: Option<String>,
    symbols: Vec<String>,
    order: usize,
    points: usize,
    span: f64,
    out: Option<String>,
    model: Option<String>,
    values: Option<String>,
    fstart: f64,
    fstop: f64,
    tstop: Option<f64>,
    dt: Option<f64>,
    capacity: usize,
    opt_level: OptLevel,
    deadline_ms: Option<u64>,
    max_batch: Option<usize>,
    max_inflight: Option<usize>,
    stats_every: u64,
    shards: Option<usize>,
    shard_workers: Option<usize>,
}

fn parse_opts(args: &[&str]) -> Result<Opts, String> {
    let mut o = Opts {
        netlist: None,
        input: None,
        output: None,
        symbols: Vec::new(),
        order: 2,
        points: 5,
        span: 4.0,
        out: None,
        model: None,
        values: None,
        fstart: 1e3,
        fstop: 1e9,
        tstop: None,
        dt: None,
        capacity: awesym_serve::DEFAULT_CAPACITY,
        opt_level: OptLevel::Full,
        deadline_ms: None,
        max_batch: None,
        max_inflight: None,
        stats_every: 0,
        shards: None,
        shard_workers: None,
    };
    let mut it = args.iter().copied().peekable();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a {
            "--input" => o.input = Some(grab("--input")?),
            "--output" => o.output = Some(grab("--output")?),
            "--symbol" => o.symbols.push(grab("--symbol")?),
            "--order" => {
                o.order = grab("--order")?
                    .parse()
                    .map_err(|e| format!("bad --order: {e}"))?
            }
            "--points" => {
                o.points = grab("--points")?
                    .parse()
                    .map_err(|e| format!("bad --points: {e}"))?
            }
            "--span" => {
                o.span = grab("--span")?
                    .parse()
                    .map_err(|e| format!("bad --span: {e}"))?
            }
            "--out" => o.out = Some(grab("--out")?),
            "--model" => o.model = Some(grab("--model")?),
            "--values" => o.values = Some(grab("--values")?),
            "--fstart" => {
                o.fstart = grab("--fstart")?
                    .parse()
                    .map_err(|e| format!("bad --fstart: {e}"))?
            }
            "--fstop" => {
                o.fstop = grab("--fstop")?
                    .parse()
                    .map_err(|e| format!("bad --fstop: {e}"))?
            }
            "--tstop" => {
                o.tstop = Some(
                    grab("--tstop")?
                        .parse()
                        .map_err(|e| format!("bad --tstop: {e}"))?,
                )
            }
            "--dt" => {
                o.dt = Some(
                    grab("--dt")?
                        .parse()
                        .map_err(|e| format!("bad --dt: {e}"))?,
                )
            }
            "--capacity" => {
                o.capacity = grab("--capacity")?
                    .parse()
                    .map_err(|e| format!("bad --capacity: {e}"))?
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    grab("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--max-batch" => {
                o.max_batch = Some(
                    grab("--max-batch")?
                        .parse()
                        .map_err(|e| format!("bad --max-batch: {e}"))?,
                )
            }
            "--max-inflight" => {
                o.max_inflight = Some(
                    grab("--max-inflight")?
                        .parse()
                        .map_err(|e| format!("bad --max-inflight: {e}"))?,
                )
            }
            "--stats-every" => {
                o.stats_every = grab("--stats-every")?
                    .parse()
                    .map_err(|e| format!("bad --stats-every: {e}"))?
            }
            "--shards" => {
                o.shards = Some(
                    grab("--shards")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?,
                )
            }
            "--shard-workers" => {
                o.shard_workers = Some(
                    grab("--shard-workers")?
                        .parse()
                        .map_err(|e| format!("bad --shard-workers: {e}"))?,
                )
            }
            "--opt-level" => {
                o.opt_level = grab("--opt-level")?
                    .parse()
                    .map_err(|e| format!("bad --opt-level: {e}"))?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                if o.netlist.is_some() {
                    return Err(format!("unexpected argument '{path}'"));
                }
                o.netlist = Some(path.to_string());
            }
        }
    }
    Ok(o)
}

fn load_netlist(o: &Opts) -> Result<Circuit, String> {
    let path = o.netlist.as_ref().ok_or("missing netlist path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_spice(&text).map_err(|e| e.to_string())
}

fn resolve_io(c: &Circuit, o: &Opts) -> Result<(ElementId, Node), String> {
    let input_name = o.input.as_ref().ok_or("missing --input <source element>")?;
    let input = c
        .find(input_name)
        .ok_or_else(|| format!("no element named {input_name}"))?;
    let e = c.element(input);
    if !matches!(e.kind, ElementKind::Vsource | ElementKind::Isource) {
        return Err(format!("{input_name} is not an independent source"));
    }
    let out_name = o.output.as_ref().ok_or("missing --output <node>")?;
    let output = c
        .find_node(out_name)
        .ok_or_else(|| format!("no node named {out_name}"))?;
    Ok((input, output))
}

fn resolve_symbols(c: &Circuit, o: &Opts) -> Result<Vec<SymbolBinding>, String> {
    if o.symbols.is_empty() {
        return Err("at least one --symbol is required".into());
    }
    // The `ELEM[:role]` grammar is shared with the server's `compile`
    // command; awesym-serve owns the one implementation.
    awesym_serve::resolve::resolve_symbol_specs(c, &o.symbols)
}

fn cmd_lint(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let issues = awesym_circuit::lint(&c);
    let mut out = format!(
        "{} elements, {} nodes, {} storage elements\n",
        c.num_elements(),
        c.num_nodes(),
        c.num_storage_elements()
    );
    if issues.is_empty() {
        out.push_str("clean: no issues found\n");
    } else {
        for i in &issues {
            let _ = writeln!(out, "issue: {i}");
        }
    }
    Ok(out)
}

fn cmd_poles(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let (input, output) = resolve_io(&c, &o)?;
    let awe = AweAnalysis::new(&c, input, output).map_err(|e| e.to_string())?;
    let rom = awe.rom_stable(o.order).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "order {} reduced model (stable: {})",
        rom.order(),
        rom.is_stable()
    );
    let _ = writeln!(out, "dc gain: {:.6e}", rom.dc_gain());
    for (p, k) in rom.poles().iter().zip(rom.residues()) {
        let _ = writeln!(out, "pole {p}  residue {k}");
    }
    if let Ok(zeros) = rom.zeros() {
        for z in zeros {
            let _ = writeln!(out, "zero {z}");
        }
    }
    if let Some(d) = rom.delay_50() {
        let _ = writeln!(out, "50% delay: {d:.6e} s");
    }
    Ok(out)
}

fn cmd_sweep(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let (input, output) = resolve_io(&c, &o)?;
    let bindings = resolve_symbols(&c, &o)?;
    let model = CompiledModel::build_with_options(
        &c,
        input,
        output,
        &bindings,
        ModelOptions::order(o.order).with_opt_level(o.opt_level),
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "compiled model: {} symbols, order {}, {} tape ops ({} raw, opt {})\n",
        model.symbols().len(),
        model.order(),
        model.op_count(),
        model.raw_op_count(),
        model.opt_level()
    );
    let nominal = model.nominal().to_vec();
    let _ = writeln!(
        out,
        "{:>14} | {:>14} {:>14} {:>14}",
        "values", "dc gain", "p1 (rad/s)", "50% delay"
    );
    // Sweep the first symbol; others stay nominal.
    for i in 0..o.points {
        let t = if o.points > 1 {
            i as f64 / (o.points - 1) as f64
        } else {
            0.5
        };
        let mut vals = nominal.clone();
        vals[0] = nominal[0] / o.span * (o.span * o.span).powf(t);
        let rom = model.rom(&vals).map_err(|e| e.to_string())?;
        let p1 = rom.dominant_pole().map_or(f64::NAN, |p| p.re);
        let d = rom.delay_50().unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{:>14.6e} | {:>14.6e} {:>14.6e} {:>14.6e}",
            vals[0],
            rom.dc_gain(),
            p1,
            d
        );
    }
    Ok(out)
}

fn cmd_model(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let (input, output) = resolve_io(&c, &o)?;
    let bindings = resolve_symbols(&c, &o)?;
    let model = CompiledModel::build_with_options(
        &c,
        input,
        output,
        &bindings,
        ModelOptions::order(o.order).with_opt_level(o.opt_level),
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "compiled {} symbols at order {} ({} tape ops, {} raw, opt {})\n",
        model.symbols().len(),
        model.order(),
        model.op_count(),
        model.raw_op_count(),
        model.opt_level()
    );
    match &o.out {
        // A .awesym extension selects the versioned, checksummed artifact
        // envelope; anything else keeps the raw model-JSON form.
        Some(path) if path.ends_with(".awesym") => {
            awesym_serve::save_artifact(&model, path).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "artifact written to {path}");
        }
        Some(path) => {
            let json = serde_json::to_string(&model).map_err(|e| e.to_string())?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "model written to {path}");
        }
        None => {
            let json = serde_json::to_string(&model).map_err(|e| e.to_string())?;
            out.push_str(&json);
        }
    }
    Ok(out)
}

fn cmd_eval(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let path = o
        .model
        .as_ref()
        .ok_or("missing --model <file.json|file.awesym>")?;
    // Accepts both the raw model-JSON dump and the validated .awesym
    // artifact; either way the compile step is skipped entirely.
    let model = awesym_serve::load_model_file(path).map_err(|e| e.to_string())?;
    let text = o.values.as_ref().ok_or("missing --values v1,v2,...")?;
    let vals: Vec<f64> = text
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|e| format!("bad value '{v}': {e}"))
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != model.symbols().len() {
        return Err(format!(
            "model has {} symbols ({}), got {} values",
            model.symbols().len(),
            model.symbols(),
            vals.len()
        ));
    }
    let rom = model.rom(&vals).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model: {} symbols, order {}, {} tape ops ({} raw, opt {})",
        model.symbols().len(),
        model.order(),
        model.op_count(),
        model.raw_op_count(),
        model.opt_level()
    );
    let moments: Vec<String> = model
        .eval_moments(&vals)
        .iter()
        .copied()
        .map(fmt_f64)
        .collect();
    let _ = writeln!(out, "moments: [{}]", moments.join(", "));
    let _ = writeln!(out, "dc gain: {}", fmt_f64(rom.dc_gain()));
    for p in rom.poles() {
        let _ = writeln!(out, "pole {p}");
    }
    if let Some(d) = rom.delay_50() {
        let _ = writeln!(out, "50% delay: {} s", fmt_f64(d));
    }
    Ok(out)
}

fn cmd_serve(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    if let Some(extra) = &o.netlist {
        return Err(format!("serve takes no positional argument '{extra}'"));
    }
    let defaults = awesym_serve::ServerConfig::default();
    let server = awesym_serve::Server::with_config(awesym_serve::ServerConfig {
        capacity: o.capacity,
        deadline_ms: o.deadline_ms,
        max_batch_points: o.max_batch.unwrap_or(defaults.max_batch_points),
        max_inflight: o.max_inflight.unwrap_or(defaults.max_inflight),
        stats_every: o.stats_every,
        shards: o.shards.unwrap_or(defaults.shards).max(1),
        shard_workers: o.shard_workers.unwrap_or(defaults.shard_workers),
        ..defaults
    });
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    // Periodic stats go to stderr: stdout is the NDJSON response stream
    // and must stay strictly request/response.
    server
        .serve_with_stats(stdin.lock(), stdout.lock(), std::io::stderr().lock())
        .map_err(|e| format!("serve transport error: {e}"))?;
    let snap = server.registry_stats();
    // Stdout carries the NDJSON response stream; keep the human-readable
    // wrap-up off it so programmatic clients reading to EOF never see a
    // non-JSON line.
    eprintln!(
        "serve loop ended: {} hits, {} misses, {} evictions, {} models resident",
        snap.hits, snap.misses, snap.evictions, snap.resident
    );
    Ok(String::new())
}

/// Parses a sample count that may use scientific notation (`1e7`).
fn parse_count(s: &str) -> Result<u64, String> {
    if let Ok(n) = s.parse::<u64>() {
        return Ok(n);
    }
    let f: f64 = s
        .parse()
        .map_err(|e| format!("bad sample count '{s}': {e}"))?;
    if !(f.is_finite() && (1.0..=1e15).contains(&f) && f.fract() == 0.0) {
        return Err(format!("bad sample count '{s}' (need a whole number)"));
    }
    Ok(f as u64)
}

fn cmd_timing(args: &[&str]) -> Result<String, String> {
    use awesym_timing::{ChainSpec, GateChain, McConfig, McEngine, QuantileGrid};

    // Timing has its own flag set; the shared Opts doesn't fit.
    let mut spec_path: Option<String> = None;
    let mut stages = 8usize;
    let mut samples = 100_000u64;
    let mut block = McConfig::DEFAULT_BLOCK;
    let mut workers = 1usize;
    let mut seed = 42u64;
    let mut deadline: Option<f64> = None;
    let mut metric: Option<awesym_timing::DelayMetric> = None;
    let mut order: Option<usize> = None;
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let num = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("bad {name} '{v}': {e}"))
        };
        match a {
            "--stages" => stages = num("--stages", grab("--stages")?)?,
            "--samples" => samples = parse_count(&grab("--samples")?)?,
            "--block" => block = num("--block", grab("--block")?)?,
            "--workers" => workers = num("--workers", grab("--workers")?)?,
            "--seed" => {
                let v = grab("--seed")?;
                seed = v.parse().map_err(|e| format!("bad --seed '{v}': {e}"))?;
            }
            "--deadline" => {
                let v = grab("--deadline")?;
                deadline = Some(
                    v.parse()
                        .map_err(|e| format!("bad --deadline '{v}': {e}"))?,
                );
            }
            "--metric" => metric = Some(grab("--metric")?.parse()?),
            "--order" => order = Some(num("--order", grab("--order")?)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    if stages == 0 {
        return Err("--stages must be positive".into());
    }
    if workers == 0 || block == 0 || samples == 0 {
        return Err("--workers, --block and --samples must be positive".into());
    }

    let mut spec = match &spec_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str::<ChainSpec>(&text)
                .map_err(|e| format!("bad chain spec {path}: {e}"))?
        }
        None => ChainSpec::uniform(stages),
    };
    if let Some(m) = metric {
        spec.metric = m;
    }
    if let Some(q) = order {
        spec.order = q;
    }

    let chain = GateChain::compile(&spec).map_err(|e| e.to_string())?;
    let nominal = chain.nominal_delay();
    let deadline = deadline.unwrap_or(1.25 * nominal);
    let grid = QuantileGrid::around(nominal, 64.0, QuantileGrid::DEFAULT_BINS);

    // Both report lines go through the serde_json Content writer — the
    // shared wire encoder path — instead of hand-rolled `format!` float
    // printing: shortest-round-trip digits, and non-finite values (an
    // all-invalid run's quantiles) become `null` rather than the
    // JSON-breaking `NaN` literal.
    let mut out = String::new();
    let chain_fields = Content::Map(vec![
        ("kind".into(), Content::Str("chain".into())),
        ("stages".into(), Content::U64(chain.stages().len() as u64)),
        ("order".into(), Content::U64(spec.order as u64)),
        (
            "metric".into(),
            serde_json::to_value(&spec.metric).map_err(|e| e.to_string())?,
        ),
        ("tape_ops".into(), Content::U64(chain.op_count() as u64)),
        ("nominal_delay_s".into(), Content::F64(nominal)),
    ]);
    let _ = writeln!(
        out,
        "{}",
        serde_json::to_string(&chain_fields).map_err(|e| e.to_string())?
    );

    let registry = awesym_obs::Registry::new();
    let engine = McEngine::new(std::sync::Arc::new(chain), workers, &registry);
    let cfg = McConfig::new(samples, seed, grid)
        .with_block_size(block)
        .with_deadline(deadline);
    let report = engine.run(&cfg);
    let s = &report.summary;
    let yield_fields = Content::Map(vec![
        ("kind".into(), Content::Str("yield_report".into())),
        ("samples".into(), Content::U64(s.samples)),
        ("valid".into(), Content::U64(s.valid)),
        ("invalid".into(), Content::U64(s.invalid)),
        ("blocks".into(), Content::U64(s.blocks)),
        ("mean_s".into(), Content::F64(s.mean)),
        ("std_dev_s".into(), Content::F64(s.std_dev)),
        ("min_s".into(), Content::F64(s.min)),
        ("max_s".into(), Content::F64(s.max)),
        ("p50_s".into(), Content::F64(s.p50.unwrap_or(f64::NAN))),
        ("p95_s".into(), Content::F64(s.p95.unwrap_or(f64::NAN))),
        ("p997_s".into(), Content::F64(s.p997.unwrap_or(f64::NAN))),
        ("deadline_s".into(), Content::F64(deadline)),
        (
            "yield".into(),
            Content::F64(s.yield_fraction.unwrap_or(f64::NAN)),
        ),
        ("workers".into(), Content::U64(report.workers as u64)),
        ("seed".into(), Content::U64(seed)),
        ("block_size".into(), Content::U64(block as u64)),
        ("wall_s".into(), Content::F64(report.wall_secs)),
        (
            "samples_per_sec".into(),
            Content::F64(report.samples_per_sec),
        ),
    ]);
    let _ = writeln!(
        out,
        "{}",
        serde_json::to_string(&yield_fields).map_err(|e| e.to_string())?
    );
    out.push_str(&registry.to_ndjson());
    Ok(out)
}

fn load_nonlinear(o: &Opts) -> Result<crate::NonlinearCircuit, String> {
    let path = o.netlist.as_ref().ok_or("missing netlist path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    awesym_nonlinear::parse_spice_nonlinear(&text).map_err(|e| e.to_string())
}

fn cmd_op(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let ckt = load_nonlinear(&o)?;
    let op = ckt.dc_operating_point().map_err(|e| e.to_string())?;
    let mut out = format!("converged in {} newton iterations\n", op.iterations());
    for k in 1..ckt.linear().num_nodes() {
        let node = Node(k);
        let _ = writeln!(
            out,
            "v({}) = {:.6} V",
            ckt.linear().node_name(node),
            op.voltage(node)
        );
    }
    for d in ckt.devices() {
        match op.device_bias(d.name()) {
            Some(crate::DeviceBias::Diode { v, i, .. }) => {
                let _ = writeln!(out, "{}: vd = {v:.4} V, id = {i:.4e} A", d.name());
            }
            Some(crate::DeviceBias::Bjt { vbe, ic, ib, .. }) => {
                let _ = writeln!(
                    out,
                    "{}: vbe = {vbe:.4} V, ic = {ic:.4e} A, ib = {ib:.4e} A",
                    d.name()
                );
            }
            None => {}
        }
    }
    Ok(out)
}

fn cmd_linearize(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let ckt = load_nonlinear(&o)?;
    let op = ckt.dc_operating_point().map_err(|e| e.to_string())?;
    let small = ckt.linearize(&op);
    let netlist = small.to_spice();
    match &o.out {
        Some(path) => {
            std::fs::write(path, &netlist).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "small-signal netlist ({} elements) written to {path}\n",
                small.num_elements()
            ))
        }
        None => Ok(netlist),
    }
}

fn cmd_ac(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let (input, output) = resolve_io(&c, &o)?;
    let mna = crate::Mna::build(&c).map_err(|e| e.to_string())?;
    let n = o.points.max(2);
    let mut out = format!(
        "{:>14} {:>14} {:>12}\n",
        "f (Hz)", "|H| (dB)", "phase (deg)"
    );
    for i in 0..n {
        let f = o.fstart * (o.fstop / o.fstart).powf(i as f64 / (n - 1) as f64);
        let h = mna
            .ac_transfer(input, output, &[2.0 * std::f64::consts::PI * f])
            .map_err(|e| e.to_string())?[0];
        let _ = writeln!(
            out,
            "{f:>14.6e} {:>14.3} {:>12.2}",
            20.0 * h.abs().max(1e-300).log10(),
            h.arg().to_degrees()
        );
    }
    Ok(out)
}

fn cmd_tran(args: &[&str]) -> Result<String, String> {
    let o = parse_opts(args)?;
    let c = load_netlist(&o)?;
    let (input, output) = resolve_io(&c, &o)?;
    let tstop = o.tstop.ok_or("missing --tstop")?;
    let dt = o.dt.unwrap_or(tstop / 200.0);
    let mna = crate::Mna::build(&c).map_err(|e| e.to_string())?;
    let res = crate::transient(
        &mna,
        input,
        &crate::Waveform::Step { amplitude: 1.0 },
        &crate::TransientOptions {
            t_stop: tstop,
            dt,
            method: crate::IntegrationMethod::Trapezoidal,
        },
        &[output],
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!("{:>14} {:>14}\n", "t (s)", "v(out)");
    // Print at most ~50 rows.
    let stride = (res.times.len() / 50).max(1);
    for (t, v) in res.times.iter().zip(res.traces[0].iter()).step_by(stride) {
        let _ = writeln!(out, "{t:>14.6e} {v:>14.6e}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_demo_netlist() -> (tempdir::TempDirLite, String) {
        let dir = tempdir::TempDirLite::new("awesym_cli");
        let path = dir.path().join("demo.sp");
        std::fs::write(
            &path,
            "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n",
        )
        .unwrap();
        (dir, path.to_string_lossy().into_owned())
    }

    /// Minimal self-cleaning temp dir (avoids a dev-dependency).
    mod tempdir {
        pub struct TempDirLite(std::path::PathBuf);
        impl TempDirLite {
            pub fn new(prefix: &str) -> Self {
                let p = std::env::temp_dir().join(format!(
                    "{prefix}_{}_{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                std::fs::create_dir_all(&p).unwrap();
                TempDirLite(p)
            }
            pub fn path(&self) -> &std::path::Path {
                &self.0
            }
        }
        impl Drop for TempDirLite {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn lint_command() {
        let (_d, path) = write_demo_netlist();
        let out = run(&["lint", &path]).unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn timing_command_uniform_chain() {
        let out = run(&[
            "timing",
            "--stages",
            "3",
            "--samples",
            "1e3",
            "--block",
            "128",
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(out.contains("\"kind\":\"chain\",\"stages\":3"), "{out}");
        assert!(
            out.contains("\"kind\":\"yield_report\",\"samples\":1000"),
            "{out}"
        );
        assert!(out.contains("\"metric\":\"mc_samples_total\""), "{out}");
        // Every stdout line is one JSON object (NDJSON contract).
        for line in out.lines() {
            serde_json::from_str::<serde_json::Value>(line)
                .unwrap_or_else(|e| panic!("non-JSON line '{line}': {e}"));
        }
    }

    #[test]
    fn timing_command_spec_file_and_determinism() {
        let dir = tempdir::TempDirLite::new("awesym_cli_timing");
        let path = dir.path().join("chain.json");
        let mut spec = awesym_timing::ChainSpec::uniform(2);
        for s in &mut spec.stages {
            s.segments = 2;
        }
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        let p = path.to_string_lossy().into_owned();
        let args = |workers: &'static str| {
            vec![
                "timing".to_string(),
                p.clone(),
                "--samples".into(),
                "500".into(),
                "--workers".into(),
                workers.into(),
                "--seed".into(),
                "7".into(),
            ]
        };
        let report_line = |out: &str| {
            out.lines()
                .find(|l| l.contains("yield_report"))
                .unwrap()
                .split("\"workers\"")
                .next()
                .unwrap()
                .to_string()
        };
        let a1 = args("1");
        let a4 = args("4");
        let r1 = run(&a1.iter().map(String::as_str).collect::<Vec<_>>()).unwrap();
        let r4 = run(&a4.iter().map(String::as_str).collect::<Vec<_>>()).unwrap();
        // Identical statistics (the part before the worker count) at 1 and
        // 4 workers — the CLI surface of the determinism guarantee.
        assert_eq!(report_line(&r1), report_line(&r4));
    }

    #[test]
    fn timing_command_rejects_bad_args() {
        assert!(run(&["timing", "--samples", "1.5"]).is_err());
        assert!(run(&["timing", "--metric", "bogus"]).is_err());
        assert!(run(&["timing", "--stages", "0"]).is_err());
        assert!(run(&["timing", "--frobnicate"]).is_err());
    }

    #[test]
    fn poles_command() {
        let (_d, path) = write_demo_netlist();
        let out = run(&[
            "poles", &path, "--input", "vin", "--output", "2", "--order", "2",
        ])
        .unwrap();
        assert!(out.contains("dc gain: 1.0"), "{out}");
        assert!(out.matches("pole").count() == 2, "{out}");
    }

    #[test]
    fn sweep_command() {
        let (_d, path) = write_demo_netlist();
        let out = run(&[
            "sweep", &path, "--input", "vin", "--output", "2", "--symbol", "C1", "--points", "3",
        ])
        .unwrap();
        assert!(out.contains("compiled model: 1 symbols"), "{out}");
        assert_eq!(out.lines().filter(|l| l.contains('|')).count(), 4, "{out}");
    }

    #[test]
    fn model_then_eval_round_trip() {
        let (_d, path) = write_demo_netlist();
        let model_path = format!("{path}.model.json");
        let out = run(&[
            "model",
            &path,
            "--input",
            "vin",
            "--output",
            "2",
            "--symbol",
            "C1",
            "--symbol",
            "R2:r",
            "--out",
            &model_path,
        ])
        .unwrap();
        assert!(out.contains("model written"), "{out}");
        let out = run(&["eval", "--model", &model_path, "--values", "2e-9,500"]).unwrap();
        assert!(out.contains("dc gain"), "{out}");
        let _ = std::fs::remove_file(&model_path);
    }

    #[test]
    fn artifact_model_eval_flow() {
        let (_d, path) = write_demo_netlist();
        let art = format!("{path}.model.awesym");
        let out = run(&[
            "model", &path, "--input", "vin", "--output", "2", "--symbol", "C1", "--symbol",
            "R2:r", "--out", &art,
        ])
        .unwrap();
        assert!(out.contains("artifact written"), "{out}");
        // eval consumes the artifact directly — no recompilation — and
        // reports the compiled op count.
        let out = run(&["eval", "--model", &art, "--values", "2e-9,500"]).unwrap();
        assert!(out.contains("tape ops"), "{out}");
        assert!(out.contains("dc gain"), "{out}");
        // A corrupted artifact is rejected with a checksum message.
        let text = std::fs::read_to_string(&art).unwrap();
        std::fs::write(&art, text.replace("fnv1a64:", "fnv1a64:f")).unwrap();
        let e = run(&["eval", "--model", &art, "--values", "2e-9,500"]).unwrap_err();
        assert!(e.contains("corrupt"), "{e}");
        let _ = std::fs::remove_file(&art);
    }

    #[test]
    fn serve_flag_validation() {
        assert!(run(&["serve", "--capacity", "x"])
            .unwrap_err()
            .contains("bad --capacity"));
        assert!(run(&["serve", "extra.sp"])
            .unwrap_err()
            .contains("no positional"));
        for (flag, msg) in [
            ("--deadline-ms", "bad --deadline-ms"),
            ("--max-batch", "bad --max-batch"),
            ("--max-inflight", "bad --max-inflight"),
            ("--stats-every", "bad --stats-every"),
            ("--shards", "bad --shards"),
            ("--shard-workers", "bad --shard-workers"),
        ] {
            assert!(run(&["serve", flag, "x"]).unwrap_err().contains(msg));
            assert!(run(&["serve", flag]).unwrap_err().contains("missing value"));
        }
        assert!(run(&["help"]).unwrap().contains("serve"));
    }

    #[test]
    fn ac_and_tran_commands() {
        let (_d, path) = write_demo_netlist();
        let out = run(&[
            "ac", &path, "--input", "vin", "--output", "2", "--points", "5", "--fstart", "1e4",
            "--fstop", "1e7",
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 6, "{out}");
        assert!(out.contains("phase"), "{out}");
        let out = run(&[
            "tran", &path, "--input", "vin", "--output", "2", "--tstop", "1e-5",
        ])
        .unwrap();
        // Settles to ≈1 V by 10 τ (τ ≈ 3 µs here? R=1k, C=1n twice → ~µs).
        let last = out.lines().last().unwrap();
        let v: f64 = last.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(v > 0.9, "{out}");
        assert!(run(&["tran", &path, "--input", "vin", "--output", "2"])
            .unwrap_err()
            .contains("--tstop"));
    }

    #[test]
    fn op_and_linearize_commands() {
        let dir = tempdir::TempDirLite::new("awesym_cli_nl");
        let path = dir.path().join("amp.sp");
        std::fs::write(
            &path,
            "VCC vcc 0 10\nVB vb 0 1\nRBS vb b 100\nRC vcc c 2k\nRE e 0 330\nQ1 c b e\n.end\n",
        )
        .unwrap();
        let p = path.to_string_lossy().into_owned();
        let out = run(&["op", &p]).unwrap();
        assert!(out.contains("converged"), "{out}");
        assert!(out.contains("Q1: vbe"), "{out}");
        let small_path = dir.path().join("small.sp");
        let sp = small_path.to_string_lossy().into_owned();
        let out = run(&["linearize", &p, "--out", &sp]).unwrap();
        assert!(out.contains("written"), "{out}");
        // The emitted netlist is parseable and analyzable.
        let out = run(&["poles", &sp, "--input", "VB", "--output", "c"]).unwrap();
        assert!(out.contains("pole"), "{out}");
    }

    #[test]
    fn sweep_span_and_model_print_paths() {
        let (_d, path) = write_demo_netlist();
        // Narrow span keeps the swept pole nearly constant.
        let narrow = run(&[
            "sweep", &path, "--input", "vin", "--output", "2", "--symbol", "C1", "--points", "3",
            "--span", "1.01",
        ])
        .unwrap();
        let poles: Vec<f64> = narrow
            .lines()
            .filter(|l| l.contains('|'))
            .skip(1)
            .map(|l| l.split_whitespace().nth(3).unwrap().parse().unwrap())
            .collect();
        assert_eq!(poles.len(), 3);
        let spread = (poles[2] - poles[0]).abs() / poles[1].abs();
        assert!(spread < 0.05, "narrow sweep moved poles by {spread}");
        // `model` without --out prints the JSON inline.
        let out = run(&[
            "model", &path, "--input", "vin", "--output", "2", "--symbol", "C1",
        ])
        .unwrap();
        assert!(out.contains("\"tape\""), "{out}");
        // `eval` rejects a wrong value count.
        let dir = tempdir::TempDirLite::new("awesym_cli_eval");
        let mp = dir.path().join("m.json");
        let mp_s = mp.to_string_lossy().into_owned();
        run(&[
            "model", &path, "--input", "vin", "--output", "2", "--symbol", "C1", "--out", &mp_s,
        ])
        .unwrap();
        let e = run(&["eval", "--model", &mp_s, "--values", "1e-9,2e-9"]).unwrap_err();
        assert!(e.contains("1 symbols"), "{e}");
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
        let (_d, path) = write_demo_netlist();
        let e = run(&["poles", &path, "--input", "R1", "--output", "2"]).unwrap_err();
        assert!(e.contains("not an independent source"), "{e}");
        let e = run(&["poles", &path, "--input", "vin", "--output", "zz"]).unwrap_err();
        assert!(e.contains("no node named"), "{e}");
        let e = run(&["sweep", &path, "--input", "vin", "--output", "2"]).unwrap_err();
        assert!(e.contains("--symbol"), "{e}");
        let e = run(&[
            "sweep", &path, "--input", "vin", "--output", "2", "--symbol", "C1:zz",
        ])
        .unwrap_err();
        assert!(e.contains("unknown role"), "{e}");
        assert!(run(&["help"]).unwrap().contains("USAGE"));
    }
}
