//! `awesym` — the command-line front end; see `awesymbolic::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match awesymbolic::cli::run(&refs) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
