//! # AWEsymbolic
//!
//! A from-scratch Rust implementation of *"AWEsymbolic: Compiled Analysis
//! of Linear(ized) Circuits using Asymptotic Waveform Evaluation"* (Lee &
//! Rohrer, DAC 1992).
//!
//! AWEsymbolic produces *reduced-order symbolic models* of linear(ized)
//! circuits: some elements are treated as symbols, the circuit is
//! partitioned at the moment level so the heavy numerics stay numeric, the
//! symbolic moments are computed on a tiny global system, and the result
//! is **compiled** into a flat evaluation tape. Evaluating the model at
//! new symbol values costs microseconds — orders of magnitude less than
//! re-running a full analysis — which makes it ideal for highly iterative
//! applications such as interconnect timing models in physical design.
//!
//! ## Quick start
//!
//! ```
//! use awesymbolic::prelude::*;
//!
//! # fn main() -> Result<(), awesymbolic::PartitionError> {
//! // The paper's Fig. 1 RC circuit.
//! let w = generators::fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
//! let c1 = w.circuit.find("C1").unwrap();
//!
//! // Treat C1 as a symbol and compile a second-order model.
//! let model = SymbolicAwe::new(&w.circuit, w.input, w.output)
//!     .order(2)
//!     .symbol(SymbolBinding::capacitance("c1", vec![c1]))
//!     .compile()?;
//!
//! // Evaluate anywhere in the symbol space: identical to a full AWE run.
//! let rom = model.rom(&[2.2e-9])?;
//! assert!(rom.is_stable());
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | numeric substrate | `awesym-linalg`, `awesym-sparse` | complex/dense/sparse LA, polynomial roots |
//! | circuits | `awesym-circuit`, `awesym-mna` | netlists, parser, generators, MNA, DC/AC/transient |
//! | AWE | `awesym-awe` | moments, Padé, ROMs, AWEsensitivity |
//! | symbolic | `awesym-symbolic` | polynomials, rational forms, tape compiler |
//! | AWEsymbolic | `awesym-partition` | partitioning, symbolic moments, compiled models |
//! | serving | `awesym-serve` | `.awesym` artifacts, model registry, concurrent batch evaluation, NDJSON server |
//!
//! Everything is re-exported here; see [`prelude`].

#![forbid(unsafe_code)]

pub use awesym_awe::{
    delay_estimates, pade_rom, AweAnalysis, AweError, DelayEstimates, MomentEngine, Rom,
};
pub use awesym_circuit::{
    generators, parse_spice, parse_value, Circuit, Element, ElementId, ElementKind, Node,
};
pub use awesym_linalg::{Complex64, LinalgError, Poly};
pub use awesym_mna::{
    transient, IntegrationMethod, Mna, MnaError, Probe, TransientOptions, TransientResult, Waveform,
};
pub use awesym_nonlinear::{
    BjtParams, Device, DeviceBias, DiodeParams, NewtonOptions, NonlinearCircuit, NonlinearError,
    OperatingPoint,
};
pub use awesym_partition::{
    apply_symbol_values, exact, CompiledModel, ModelOptions, PartitionError, SymbolBinding,
    SymbolRole, SymbolicForms, SymbolicMoments, SymbolicSystem,
};
pub use awesym_serve::{
    evaluate_batch, load_artifact, save_artifact, BatchOutput, ModelRegistry, PointValue,
    ServeError, Server,
};
pub use awesym_symbolic::{
    AffineTail, CompileOptions, CompiledFn, Evaluator, ExprGraph, MPoly, OptLevel, Ratio, SymbolSet,
};
pub use awesym_timing::{
    BlockRng, ChainSpec, DelayMetric, GateChain, McConfig, McEngine, McReport, QuantileGrid,
    StageSpec,
};

pub mod cli;

/// Common imports for working with AWEsymbolic.
pub mod prelude {
    pub use crate::{
        generators, AweAnalysis, Circuit, CompiledModel, Element, ElementId, Node, Rom,
        SymbolBinding, SymbolRole, SymbolicAwe,
    };
}

use awesym_awe::sensitivity::SensitivityAnalysis;

/// Builder for a compiled symbolic AWE analysis.
///
/// Choose the symbols explicitly with [`SymbolicAwe::symbol`] /
/// [`SymbolicAwe::symbol_named`], or let AWEsensitivity pick the most
/// significant elements with [`SymbolicAwe::auto_symbols`], then call
/// [`SymbolicAwe::compile`].
///
/// # Example
///
/// ```
/// use awesymbolic::prelude::*;
///
/// # fn main() -> Result<(), awesymbolic::PartitionError> {
/// let amp = generators::opamp741();
/// let model = SymbolicAwe::new(&amp.circuit, amp.input, amp.output)
///     .order(2)
///     .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)?
///     .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)?
///     .compile()?;
/// assert_eq!(model.symbols().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SymbolicAwe<'c> {
    circuit: &'c Circuit,
    input: ElementId,
    output: Node,
    bindings: Vec<SymbolBinding>,
    order: usize,
    symbolic_moments: Option<usize>,
    opt_level: OptLevel,
}

impl<'c> SymbolicAwe<'c> {
    /// Starts a builder for the given circuit, input source, and output
    /// node. Default order is 2 (the paper's workhorse order).
    pub fn new(circuit: &'c Circuit, input: ElementId, output: Node) -> Self {
        SymbolicAwe {
            circuit,
            input,
            output,
            bindings: Vec::new(),
            order: 2,
            symbolic_moments: None,
            opt_level: OptLevel::Full,
        }
    }

    /// Sets the approximation order `q` (the model matches `2q` moments).
    pub fn order(mut self, q: usize) -> Self {
        self.order = q;
        self
    }

    /// Keeps only the first `k` moments symbolic and extends the rest with
    /// the derivative-based Taylor tail (the paper's partial Padé).
    pub fn partial_pade(mut self, symbolic_moments: usize) -> Self {
        self.symbolic_moments = Some(symbolic_moments);
        self
    }

    /// Sets the tape-optimization level (default [`OptLevel::Full`]).
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Adds an explicit symbol binding.
    pub fn symbol(mut self, binding: SymbolBinding) -> Self {
        self.bindings.push(binding);
        self
    }

    /// Adds a symbol bound to a single element looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::BadBinding`] when no element has that
    /// name.
    pub fn symbol_named(
        mut self,
        symbol: &str,
        element: &str,
        role: SymbolRole,
    ) -> Result<Self, PartitionError> {
        let id = self
            .circuit
            .find(element)
            .ok_or_else(|| PartitionError::BadBinding {
                what: format!("no element named {element}"),
            })?;
        self.bindings.push(SymbolBinding {
            name: symbol.to_string(),
            role,
            elements: vec![id],
        });
        Ok(self)
    }

    /// Selects the `k` elements with the largest normalized pole
    /// sensitivities (AWEsensitivity) as symbols, skipping elements that
    /// cannot carry a symbol and elements already bound.
    ///
    /// # Errors
    ///
    /// Propagates AWE failures from the sensitivity analysis.
    pub fn auto_symbols(mut self, k: usize) -> Result<Self, PartitionError> {
        let ranked = rank_symbol_candidates(self.circuit, self.input, self.output, self.order)?;
        let bound: std::collections::HashSet<ElementId> = self
            .bindings
            .iter()
            .flat_map(|b| b.elements.iter().copied())
            .collect();
        let mut added = 0;
        for (id, _) in ranked {
            if added >= k {
                break;
            }
            if bound.contains(&id) {
                continue;
            }
            let e = self.circuit.element(id);
            let role = match e.kind {
                ElementKind::Resistor => SymbolRole::Conductance,
                ElementKind::Capacitor => SymbolRole::Capacitance,
                ElementKind::Inductor => SymbolRole::Inductance,
                ElementKind::Vccs => SymbolRole::Transconductance,
                _ => continue,
            };
            self.bindings.push(SymbolBinding {
                name: e.name.clone(),
                role,
                elements: vec![id],
            });
            added += 1;
        }
        Ok(self)
    }

    /// Compiles the model.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::build_with_options`].
    pub fn compile(self) -> Result<CompiledModel, PartitionError> {
        let mut opts = ModelOptions::order(self.order).with_opt_level(self.opt_level);
        if let Some(k) = self.symbolic_moments {
            opts = opts.with_symbolic_moments(k);
        }
        CompiledModel::build_with_options(
            self.circuit,
            self.input,
            self.output,
            &self.bindings,
            opts,
        )
    }
}

/// Ranks the non-source elements of a circuit by normalized pole
/// sensitivity — the paper's automatic symbol-selection mechanism.
///
/// # Errors
///
/// Propagates MNA/AWE failures.
pub fn rank_symbol_candidates(
    circuit: &Circuit,
    input: ElementId,
    output: Node,
    order: usize,
) -> Result<Vec<(ElementId, f64)>, PartitionError> {
    let mna = Mna::build(circuit).map_err(AweError::from)?;
    let engine = MomentEngine::new(mna, input, output)?;
    let sens = SensitivityAnalysis::new(&engine, order)?;
    Ok(sens.rank_elements(circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;

    #[test]
    fn builder_with_explicit_symbols() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let model = SymbolicAwe::new(&w.circuit, w.input, w.output)
            .order(2)
            .symbol_named("c1", "C1", SymbolRole::Capacitance)
            .unwrap()
            .symbol_named("r2", "R2", SymbolRole::Resistance)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(model.symbols().len(), 2);
        assert_eq!(model.order(), 2);
    }

    #[test]
    fn builder_rejects_unknown_element() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let r = SymbolicAwe::new(&w.circuit, w.input, w.output).symbol_named(
            "x",
            "nope",
            SymbolRole::Capacitance,
        );
        assert!(matches!(r, Err(PartitionError::BadBinding { .. })));
    }

    #[test]
    fn auto_symbols_selects_significant_elements() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let model = SymbolicAwe::new(&w.circuit, w.input, w.output)
            .order(2)
            .auto_symbols(2)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(model.symbols().len(), 2);
        // The selected symbols reproduce the full analysis at nominal.
        let m = model.eval_moments(model.nominal());
        assert!((m[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_pade_option_wires_through() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c1 = w.circuit.find("C1").unwrap();
        let model = SymbolicAwe::new(&w.circuit, w.input, w.output)
            .order(2)
            .partial_pade(2)
            .symbol(SymbolBinding::capacitance("c1", vec![c1]))
            .compile()
            .unwrap();
        assert_eq!(model.eval_moments(&[1e-9]).len(), 4);
    }

    #[test]
    fn ranking_is_exposed() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let ranked = rank_symbol_candidates(&w.circuit, w.input, w.output, 2).unwrap();
        assert_eq!(ranked.len(), 4);
        assert!(ranked[0].1 >= ranked[3].1);
    }
}
