//! Univariate polynomials with real or complex coefficients.

use crate::{Complex64, LinalgError};

/// A univariate polynomial with real coefficients, lowest degree first:
/// `p(s) = c[0] + c[1] s + … + c[n] sⁿ`.
///
/// # Example
///
/// ```
/// use awesym_linalg::Poly;
///
/// let p = Poly::new(vec![2.0, 3.0, 1.0]); // 2 + 3 s + s^2 = (s+1)(s+2)
/// assert_eq!(p.eval(-1.0), 0.0);
/// assert_eq!(p.degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from coefficients, lowest degree first.
    /// Trailing (highest-degree) zeros are trimmed.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly::new(vec![c])
    }

    /// Builds the monic polynomial with the given (complex-conjugate-closed)
    /// roots; the result is real up to rounding, and tiny imaginary residue
    /// is discarded.
    pub fn from_roots(roots: &[Complex64]) -> Self {
        let mut c = vec![Complex64::ONE];
        for &r in roots {
            let mut next = vec![Complex64::ZERO; c.len() + 1];
            for (k, &ck) in c.iter().enumerate() {
                next[k + 1] += ck;
                next[k] -= r * ck;
            }
            c = next;
        }
        Poly::new(c.into_iter().map(|z| z.re).collect())
    }

    /// Degree (0 for constants; 0 for the zero polynomial as a convention).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// True when all coefficients are (trimmed to) zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient slice, lowest degree first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `s^k` (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Evaluates at a real point by Horner's rule.
    pub fn eval(&self, s: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * s + c)
    }

    /// Evaluates at a complex point by Horner's rule.
    pub fn eval_complex(&self, s: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * s + c)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }

    /// Polynomial sum.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::new((0..n).map(|k| self.coeff(k) + rhs.coeff(k)).collect())
    }

    /// Polynomial product.
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|c| c * k).collect())
    }

    /// Substitutes `s ← σ·s`, i.e. returns `q(s) = p(σ s)`.
    ///
    /// Used by AWE's moment scaling: coefficient `k` is multiplied by `σᵏ`.
    pub fn scale_variable(&self, sigma: f64) -> Poly {
        let mut f = 1.0;
        Poly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let v = c * f;
                    f *= sigma;
                    v
                })
                .collect(),
        )
    }

    /// All complex roots.
    ///
    /// Degrees 1 and 2 use closed forms; higher degrees use the
    /// Aberth–Ehrlich iteration.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DegeneratePolynomial`] for the zero/constant
    /// polynomial and [`LinalgError::NoConvergence`] if iteration stalls.
    pub fn roots(&self) -> Result<Vec<Complex64>, LinalgError> {
        crate::roots::roots_real(&self.coeffs)
    }

    fn trim(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last == 0.0 {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => write!(f, "{a}*s")?,
                _ => write!(f, "{a}*s^{k}")?,
            }
            first = false;
        }
        Ok(())
    }
}

/// A univariate polynomial with complex coefficients, lowest degree first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CPoly {
    coeffs: Vec<Complex64>,
}

impl CPoly {
    /// Creates a complex polynomial; trailing zeros are trimmed.
    pub fn new(coeffs: Vec<Complex64>) -> Self {
        let mut p = CPoly { coeffs };
        while matches!(p.coeffs.last(), Some(c) if c.abs() == 0.0) {
            p.coeffs.pop();
        }
        p
    }

    /// Coefficient slice, lowest degree first.
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Degree (0 for constants and the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates at a complex point by Horner's rule.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * s + c)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> CPoly {
        if self.coeffs.len() <= 1 {
            return CPoly::new(Vec::new());
        }
        CPoly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_degree() {
        let p = Poly::new(vec![1.0, -2.0, 0.0, 4.0]);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.eval(2.0), 1.0 - 4.0 + 32.0);
        assert_eq!(p.coeff(7), 0.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert!(Poly::new(vec![0.0, 0.0]).is_zero());
    }

    #[test]
    fn derivative_rules() {
        let p = Poly::new(vec![5.0, 3.0, 2.0]); // 5 + 3s + 2s^2
        assert_eq!(p.derivative().coeffs(), &[3.0, 4.0]);
        assert!(Poly::constant(5.0).derivative().is_zero());
    }

    #[test]
    fn mul_add() {
        let a = Poly::new(vec![1.0, 1.0]); // 1 + s
        let b = Poly::new(vec![2.0, 1.0]); // 2 + s
        assert_eq!(a.mul(&b).coeffs(), &[2.0, 3.0, 1.0]);
        assert_eq!(a.add(&b).coeffs(), &[3.0, 2.0]);
        assert!(a.mul(&Poly::zero()).is_zero());
    }

    #[test]
    fn from_roots_reconstructs() {
        let roots = [
            Complex64::new(-1.0, 0.0),
            Complex64::new(-2.0, 1.0),
            Complex64::new(-2.0, -1.0),
        ];
        let p = Poly::from_roots(&roots);
        // (s+1)(s^2+4s+5) = s^3 + 5s^2 + 9s + 5
        let c = p.coeffs();
        assert!((c[0] - 5.0).abs() < 1e-12);
        assert!((c[1] - 9.0).abs() < 1e-12);
        assert!((c[2] - 5.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_variable_matches_eval() {
        let p = Poly::new(vec![1.0, 2.0, 3.0]);
        let q = p.scale_variable(0.5);
        for s in [-1.0, 0.3, 2.0] {
            assert!((q.eval(s) - p.eval(0.5 * s)).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_complex_consistent() {
        let p = Poly::new(vec![1.0, 0.0, 1.0]); // 1 + s^2
        let v = p.eval_complex(Complex64::I);
        assert!(v.abs() < 1e-15);
    }

    #[test]
    fn display_readable() {
        let p = Poly::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.to_string(), "1 - 2*s + 3*s^2");
        assert_eq!(Poly::zero().to_string(), "0");
    }

    #[test]
    fn cpoly_eval_derivative() {
        let p = CPoly::new(vec![Complex64::ONE, Complex64::I]); // 1 + i s
        assert_eq!(p.degree(), 1);
        let v = p.eval(Complex64::I); // 1 + i*i = 0
        assert!(v.abs() < 1e-15);
        assert_eq!(p.derivative().coeffs(), &[Complex64::I]);
    }
}
