//! Error type shared by the dense solvers.

use std::fmt;

/// Errors produced by dense factorizations and polynomial solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix is singular (no acceptable pivot at the given elimination step).
    Singular {
        /// Elimination step at which no pivot was found.
        step: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape that was provided.
        got: String,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input polynomial is identically zero or otherwise degenerate.
    DegeneratePolynomial,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::DegeneratePolynomial => {
                write!(f, "polynomial is degenerate (zero or empty)")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LinalgError::Singular { step: 3 }.to_string(),
            "matrix is singular at elimination step 3"
        );
        let e = LinalgError::ShapeMismatch {
            expected: "3x3".into(),
            got: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 3x3"));
        let e = LinalgError::NoConvergence {
            algorithm: "aberth",
            iterations: 100,
        };
        assert!(e.to_string().contains("aberth"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
