//! Dense LU factorization with partial pivoting.

use crate::mat::DenseMat;
use crate::{LinalgError, Scalar};

/// LU factorization `P A = L U` of a square dense matrix.
///
/// Reusable: factor once, call [`LuFactors::solve`] for many right-hand
/// sides. This is the pattern AWE uses — `G` is factored once and every
/// moment is a back-substitution.
///
/// # Example
///
/// ```
/// use awesym_linalg::{LuFactors, Mat};
///
/// # fn main() -> Result<(), awesym_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    /// Combined L (unit lower, below diagonal) and U (upper, incl. diagonal).
    lu: DenseMat<T>,
    /// Row permutation: `perm[k]` is the original row used at step `k`.
    perm: Vec<usize>,
    /// Parity of the permutation, `+1` or `-1`.
    sign: f64,
}

impl<T: Scalar> LuFactors<T> {
    /// Factors the matrix with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the pivot column is numerically
    /// zero, and [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn factor(a: DenseMat<T>) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        for k in 0..n {
            // Pivot search over column k, rows k..n.
            let mut best = k;
            let mut best_mag = lu[(k, k)].modulus();
            for i in (k + 1)..n {
                let m = lu[(i, k)].modulus();
                if m > best_mag {
                    best = i;
                    best_mag = m;
                }
            }
            if best_mag <= f64::EPSILON * scale * 16.0 {
                return Err(LinalgError::Singular { step: k });
            }
            if best != k {
                swap_rows(&mut lu, k, best);
                perm.swap(k, best);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor.is_zero() {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward substitution (L y = P b).
        let mut x: Vec<T> = (0..n).map(|k| b[self.perm[k]]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution (U x = y).
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves `Aᵀ x = b` using the stored factors (adjoint solve).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[T]) -> Vec<T> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Aᵀ = Uᵀ Lᵀ Pᵀ⁻¹… with P A = L U we have Aᵀ Pᵀ = Uᵀ Lᵀ, so solve
        // Uᵀ y = b, Lᵀ z = y, then x = Pᵀ z (undo the permutation).
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(j, i)] * yj;
            }
            y[i] = acc / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(j, i)] * yj;
            }
            y[i] = acc;
        }
        let mut x = vec![T::zero(); n];
        for k in 0..n {
            x[self.perm[k]] = y[k];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

fn swap_rows<T: Scalar>(m: &mut DenseMat<T>, a: usize, b: usize) {
    let cols = m.cols();
    let (a, b) = (a.min(b), a.max(b));
    let data = m.data_mut();
    let (head, tail) = data.split_at_mut(b * cols);
    head[a * cols..(a + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    fn rand_mat(n: usize, seed: u64) -> Mat {
        // Tiny deterministic LCG so the test has no dependencies.
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        Mat::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn solve_matches_multiplication() {
        for n in [1, 2, 3, 5, 8, 17] {
            let a = rand_mat(n, n as u64 + 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
            let b = a.mul_vec(&x_true);
            let lu = LuFactors::factor(a).unwrap();
            let x = lu.solve(&b);
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                assert!((xi - ti).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn transposed_solve_matches() {
        let a = rand_mat(6, 42);
        let at = a.transpose();
        let b: Vec<f64> = (0..6).map(|i| i as f64 + 0.5).collect();
        let lu = LuFactors::factor(a).unwrap();
        let x1 = lu.solve_transposed(&b);
        let x2 = at.solve(&b).unwrap();
        for (p, q) in x1.iter().zip(x2.iter()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn det_with_pivoting() {
        let a = Mat::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 3.0], &[4.0, -3.0, 8.0]]);
        // det = 0*(0*8-3*-3) - 1*(1*8-3*4) + 2*(1*-3-0*4) = 0 +4 -6 = -2
        let lu = LuFactors::factor(a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(
            LuFactors::factor(a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
