//! A from-scratch double-precision complex number.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use awesym_linalg::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Modulus `|z|`, computed with `hypot` to avoid overflow.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, matching IEEE division.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex64::ZERO;
        }
        let r = self.abs();
        // Stable formulation avoiding cancellation.
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// True when either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm for robust complex division.
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Complex64::new(self.re / 0.0, self.im / 0.0);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.5, -1.25);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(z * z.recip(), Complex64::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn division_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let q = a / b;
        assert!(close(q * b, a));
        // Both Smith branches.
        let c = Complex64::new(0.5, -3.0);
        let q2 = a / c;
        assert!(close(q2 * c, a));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z}) = {r}");
            assert!(r.re >= 0.0, "principal branch");
        }
        assert_eq!(Complex64::ZERO.sqrt(), Complex64::ZERO);
    }

    #[test]
    fn exp_of_pi_i() {
        let z = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn real_ops() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 0.5));
        assert_eq!(z + 1.0, Complex64::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex64::new(0.0, 1.0));
    }
}
