//! Polynomial root finding: closed forms for low degrees and the
//! Aberth–Ehrlich simultaneous iteration for higher degrees.
//!
//! AWE denominators are low order (typically ≤ 8), so robustness at small
//! degree matters far more than asymptotic speed.

use crate::{Complex64, LinalgError};

/// Roots of the quadratic `c0 + c1 s + c2 s²` (with `c2 ≠ 0`), using the
/// numerically stable "citardauq" pairing to avoid cancellation.
///
/// # Example
///
/// ```
/// use awesym_linalg::quadratic_roots;
///
/// let (r1, r2) = quadratic_roots(2.0, 3.0, 1.0); // (s+1)(s+2)
/// assert!((r1.re + 2.0).abs() < 1e-12 || (r1.re + 1.0).abs() < 1e-12);
/// assert!((r1.re * r2.re - 2.0).abs() < 1e-12);
/// ```
pub fn quadratic_roots(c0: f64, c1: f64, c2: f64) -> (Complex64, Complex64) {
    debug_assert!(c2 != 0.0, "quadratic_roots requires c2 != 0");
    let disc = c1 * c1 - 4.0 * c2 * c0;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        let q = -0.5 * (c1 + c1.signum() * sq);
        // Guard the degenerate c1 == 0 case.
        let q = if q == 0.0 { -0.5 * sq } else { q };
        if q == 0.0 {
            return (Complex64::ZERO, Complex64::ZERO);
        }
        (Complex64::from_re(q / c2), Complex64::from_re(c0 / q))
    } else {
        let sq = (-disc).sqrt();
        let re = -c1 / (2.0 * c2);
        let im = sq / (2.0 * c2);
        (Complex64::new(re, im), Complex64::new(re, -im))
    }
}

/// All complex roots of a real-coefficient polynomial given lowest-degree
/// first. Exact zero leading coefficients must already be trimmed.
///
/// # Errors
///
/// Returns [`LinalgError::DegeneratePolynomial`] for constant/zero input and
/// [`LinalgError::NoConvergence`] if the Aberth iteration stalls.
pub(crate) fn roots_real(coeffs: &[f64]) -> Result<Vec<Complex64>, LinalgError> {
    let c: Vec<Complex64> = coeffs.iter().map(|&x| Complex64::from_re(x)).collect();
    roots_aberth(&c)
}

/// All complex roots of a complex-coefficient polynomial (lowest degree
/// first) by Aberth–Ehrlich iteration, with closed forms for degree ≤ 2.
///
/// # Errors
///
/// Returns [`LinalgError::DegeneratePolynomial`] for constant/zero input and
/// [`LinalgError::NoConvergence`] if iteration fails to converge.
pub fn roots_aberth(coeffs: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
    // Trim trailing zeros defensively.
    let mut c = coeffs.to_vec();
    while matches!(c.last(), Some(z) if z.abs() == 0.0) {
        c.pop();
    }
    if c.len() <= 1 {
        return Err(LinalgError::DegeneratePolynomial);
    }
    // Factor out roots at the origin (c0 = c1 = … = 0).
    let mut zero_roots = 0;
    while c.first().map(|z| z.abs()) == Some(0.0) {
        c.remove(0);
        zero_roots += 1;
    }
    let mut roots = vec![Complex64::ZERO; zero_roots];
    let n = c.len() - 1;
    match n {
        0 => {}
        1 => roots.push(-c[0] / c[1]),
        2 => {
            let (r1, r2) = quadratic_complex(c[0], c[1], c[2]);
            roots.push(r1);
            roots.push(r2);
        }
        _ => roots.extend(aberth_iterate(&c)?),
    }
    Ok(roots)
}

fn quadratic_complex(c0: Complex64, c1: Complex64, c2: Complex64) -> (Complex64, Complex64) {
    let disc = (c1 * c1 - 4.0 * (c2 * c0)).sqrt();
    // Choose the sign that maximizes |c1 ± disc| for stability.
    let s1 = c1 + disc;
    let s2 = c1 - disc;
    let q = if s1.abs() >= s2.abs() { s1 } else { s2 };
    if q.abs() == 0.0 {
        return (Complex64::ZERO, Complex64::ZERO);
    }
    let q = q * -0.5;
    (q / c2, c0 / q)
}

fn aberth_iterate(c: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
    let n = c.len() - 1;
    let lead = c[n];
    // Cauchy bound for the root radius.
    let radius = 1.0
        + c[..n]
            .iter()
            .map(|z| (*z / lead).abs())
            .fold(0.0_f64, f64::max);
    // Initial guesses on a slightly asymmetric circle (avoids symmetric stalls).
    let mut z: Vec<Complex64> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.35) / n as f64 + 0.5;
            Complex64::from_polar(radius * 0.7, theta)
        })
        .collect();
    let dc: Vec<Complex64> = c
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, &ck)| ck * k as f64)
        .collect();
    let eval = |cs: &[Complex64], s: Complex64| {
        cs.iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &ck| acc * s + ck)
    };
    let scale: f64 = c.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let tol = 1e-14 * scale.max(1.0);
    const MAX_ITER: usize = 400;
    for _ in 0..MAX_ITER {
        let mut moved = 0.0_f64;
        for i in 0..n {
            let p = eval(c, z[i]);
            if p.abs() < tol {
                continue;
            }
            let dp = eval(&dc, z[i]);
            let newton = if dp.abs() > 0.0 {
                p / dp
            } else {
                Complex64::from_re(1e-6)
            };
            let mut sum = Complex64::ZERO;
            for j in 0..n {
                if j != i {
                    let diff = z[i] - z[j];
                    if diff.abs() > 1e-300 {
                        sum += diff.recip();
                    }
                }
            }
            let denom = Complex64::ONE - newton * sum;
            let step = if denom.abs() > 1e-300 {
                newton / denom
            } else {
                newton
            };
            z[i] -= step;
            moved = moved.max(step.abs());
        }
        if moved < 1e-13 * radius.max(1.0) {
            // Polish with a couple of Newton steps and return.
            for zi in z.iter_mut() {
                for _ in 0..3 {
                    let p = eval(c, *zi);
                    let dp = eval(&dc, *zi);
                    if dp.abs() > 0.0 {
                        *zi -= p / dp;
                    }
                }
            }
            pair_conjugates(&mut z, c);
            return Ok(z);
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "aberth",
        iterations: MAX_ITER,
    })
}

/// For real-coefficient polynomials, snap nearly-real roots to the real axis
/// and symmetrize conjugate pairs. No-op when coefficients are not all real.
fn pair_conjugates(z: &mut [Complex64], c: &[Complex64]) {
    if !c.iter().all(|ck| ck.im == 0.0) {
        return;
    }
    let scale = z.iter().map(|r| r.abs()).fold(1e-30, f64::max);
    for r in z.iter_mut() {
        if r.im.abs() < 1e-9 * scale {
            r.im = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Poly;

    fn sorted_re(mut v: Vec<Complex64>) -> Vec<Complex64> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    #[test]
    fn quadratic_real_roots() {
        let (r1, r2) = quadratic_roots(6.0, 5.0, 1.0); // (s+2)(s+3)
        let mut v = [r1.re, r2.re];
        v.sort_by(f64::total_cmp);
        assert!((v[0] + 3.0).abs() < 1e-12 && (v[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_complex_pair() {
        let (r1, r2) = quadratic_roots(5.0, 2.0, 1.0); // s = -1 ± 2i
        assert!((r1.re + 1.0).abs() < 1e-12);
        assert!((r1.im.abs() - 2.0).abs() < 1e-12);
        assert!((r1 - r2.conj()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_cancellation_stable() {
        // Roots 1e-9 and 1e9: naive formula loses the small root.
        let (r1, r2) = quadratic_roots(1.0, -(1e9 + 1e-9), 1.0);
        let small = if r1.abs() < r2.abs() { r1 } else { r2 };
        assert!((small.re - 1e-9).abs() / 1e-9 < 1e-6);
    }

    #[test]
    fn cubic_known_roots() {
        // (s+1)(s+10)(s+100)
        let p = Poly::from_roots(&[
            Complex64::from_re(-1.0),
            Complex64::from_re(-10.0),
            Complex64::from_re(-100.0),
        ]);
        let roots = sorted_re(p.roots().unwrap());
        assert!((roots[0].re + 100.0).abs() < 1e-6);
        assert!((roots[1].re + 10.0).abs() < 1e-8);
        assert!((roots[2].re + 1.0).abs() < 1e-9);
        for r in &roots {
            assert!(r.im.abs() < 1e-9);
        }
    }

    #[test]
    fn quintic_mixed_roots() {
        let truth = [
            Complex64::from_re(-2.0),
            Complex64::new(-1.0, 3.0),
            Complex64::new(-1.0, -3.0),
            Complex64::from_re(-0.5),
            Complex64::from_re(-40.0),
        ];
        let p = Poly::from_roots(&truth);
        let roots = p.roots().unwrap();
        assert_eq!(roots.len(), 5);
        for t in truth {
            let best = roots
                .iter()
                .map(|r| (*r - t).abs())
                .fold(f64::MAX, f64::min);
            assert!(best < 1e-6, "missing root {t}");
        }
    }

    #[test]
    fn roots_at_origin_factored() {
        // s^2 (s + 3)
        let p = Poly::new(vec![0.0, 0.0, 3.0, 1.0]);
        let roots = sorted_re(p.roots().unwrap());
        assert_eq!(roots.len(), 3);
        assert!((roots[0].re + 3.0).abs() < 1e-12);
        assert!(roots[1].abs() < 1e-15 && roots[2].abs() < 1e-15);
    }

    #[test]
    fn widely_spread_roots() {
        // Pole spreads typical of AWE after scaling: ratios of 1e3.
        let truth = [-1.0, -37.0, -145.0, -999.0];
        let p = Poly::from_roots(&truth.map(Complex64::from_re));
        let roots = p.roots().unwrap();
        for t in truth {
            let best = roots
                .iter()
                .map(|r| (r.re - t).abs() / t.abs())
                .fold(f64::MAX, f64::min);
            assert!(best < 1e-6, "missing root {t}");
        }
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(Poly::constant(3.0).roots().is_err());
        assert!(Poly::zero().roots().is_err());
    }

    #[test]
    fn linear_root() {
        let p = Poly::new(vec![4.0, 2.0]);
        let r = p.roots().unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0].re + 2.0).abs() < 1e-15);
    }
}
