//! Structured solves used by the Padé step of AWE: the Hankel system for the
//! denominator coefficients and the (complex) Vandermonde-like system for the
//! residues.

use crate::mat::{CMat, Mat};
use crate::{Complex64, LinalgError};

/// Solves the AWE moment (Hankel) system for the denominator coefficients.
///
/// Given `2q` moments `m_0 … m_{2q-1}`, returns `b = [b_1, …, b_q]` such that
/// for `k = q … 2q-1`:
///
/// ```text
/// m_k + b_1 m_{k-1} + … + b_q m_{k-q} = 0
/// ```
///
/// i.e. the denominator is `1 + b_1 s + … + b_q s^q` after the usual AWE
/// convention.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when fewer than `2q` moments are
/// provided and [`LinalgError::Singular`] when the Hankel matrix is singular
/// (the circuit has fewer than `q` observable poles).
///
/// # Example
///
/// ```
/// use awesym_linalg::solve_hankel;
///
/// // H(s) = 1 / (1 + s): moments 1, -1, 1, -1 …  => b = [1]
/// let b = solve_hankel(&[1.0, -1.0], 1)?;
/// assert!((b[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), awesym_linalg::LinalgError>(())
/// ```
pub fn solve_hankel(moments: &[f64], q: usize) -> Result<Vec<f64>, LinalgError> {
    if moments.len() < 2 * q {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("at least {} moments", 2 * q),
            got: format!("{}", moments.len()),
        });
    }
    if q == 0 {
        return Ok(Vec::new());
    }
    // Row r (r = 0..q) encodes k = q + r:
    //   sum_{j=1..q} b_j * m_{k-j} = -m_k
    let a = Mat::from_fn(q, q, |r, j| moments[q + r - (j + 1)]);
    let rhs: Vec<f64> = (0..q).map(|r| -moments[q + r]).collect();
    a.solve(&rhs)
}

/// Solves for residues `k_i` from poles `p_i` and moments by matching
///
/// ```text
/// m_j = -Σ_i k_i / p_i^{j+1},   j = 0 … n-1
/// ```
///
/// which is a Vandermonde system in `1/p_i`. Complex poles give complex
/// residues (conjugate-paired for real moment data).
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when fewer moments than poles are
/// supplied and [`LinalgError::Singular`] for repeated poles.
pub fn solve_vandermonde_complex(
    poles: &[Complex64],
    moments: &[f64],
) -> Result<Vec<Complex64>, LinalgError> {
    let n = poles.len();
    if moments.len() < n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("at least {n} moments"),
            got: format!("{}", moments.len()),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut a = CMat::zeros(n, n);
    for (i, &p) in poles.iter().enumerate() {
        let inv = p.recip();
        let mut w = inv; // 1/p^(j+1) with j = 0
        for j in 0..n {
            a[(j, i)] = -w;
            w *= inv;
        }
    }
    let rhs: Vec<Complex64> = moments[..n]
        .iter()
        .map(|&m| Complex64::from_re(m))
        .collect();
    a.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hankel_single_pole() {
        // H(s) = 2/(1+3s): m_k = 2 (-3)^k
        let m = [2.0, -6.0, 18.0, -54.0];
        let b = solve_hankel(&m, 1).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        let b2 = solve_hankel(&m, 2);
        // Only one pole exists, q=2 Hankel is singular.
        assert!(b2.is_err());
    }

    #[test]
    fn hankel_two_poles() {
        // H(s) = 1/(1+s) + 1/(1+0.5 s) => denominator (1+s)(1+0.5s) = 1 + 1.5 s + 0.5 s^2
        let mk = |k: u32| (-1.0_f64).powi(k as i32) * (1.0 + 0.5_f64.powi(k as i32));
        let m: Vec<f64> = (0..4).map(mk).collect();
        let b = solve_hankel(&m, 2).unwrap();
        assert!((b[0] - 1.5).abs() < 1e-12);
        assert!((b[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hankel_needs_enough_moments() {
        assert!(matches!(
            solve_hankel(&[1.0, 2.0, 3.0], 2),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(solve_hankel(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn residues_single_pole() {
        // H(s) = k/(s - p), p = -2, k = 4: m_j = -k/p^{j+1}
        let p = Complex64::from_re(-2.0);
        let m: Vec<f64> = (0..1).map(|j| 4.0 / 2.0_f64.powi(j + 1)).collect();
        let k = solve_vandermonde_complex(&[p], &m).unwrap();
        assert!((k[0].re - 4.0).abs() < 1e-12);
        assert!(k[0].im.abs() < 1e-12);
    }

    #[test]
    fn residues_complex_pair() {
        // Poles -1 ± 2i with residues 0.5 ∓ 0.25i (conjugate pair, real H).
        let p1 = Complex64::new(-1.0, 2.0);
        let p2 = p1.conj();
        let k1 = Complex64::new(0.5, -0.25);
        let k2 = k1.conj();
        let m: Vec<f64> = (0..2)
            .map(|j| {
                let t = k1 / pow(p1, j + 1) + k2 / pow(p2, j + 1);
                -t.re
            })
            .collect();
        let ks = solve_vandermonde_complex(&[p1, p2], &m).unwrap();
        assert!((ks[0] - k1).abs() < 1e-10);
        assert!((ks[1] - k2).abs() < 1e-10);
    }

    fn pow(z: Complex64, n: u32) -> Complex64 {
        let mut acc = Complex64::ONE;
        for _ in 0..n {
            acc *= z;
        }
        acc
    }

    #[test]
    fn residues_shape_check() {
        let p = [Complex64::from_re(-1.0), Complex64::from_re(-2.0)];
        assert!(matches!(
            solve_vandermonde_complex(&p, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(solve_vandermonde_complex(&[], &[]).unwrap().is_empty());
    }
}
