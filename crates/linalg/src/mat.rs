//! Dense matrices over a [`Scalar`], in row-major storage.

use crate::{Complex64, LinalgError, Scalar};

/// A dense matrix over scalar `T`, stored row-major.
///
/// # Example
///
/// ```
/// use awesym_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Dense real matrix.
pub type Mat = DenseMat<f64>;
/// Dense complex matrix.
pub type CMat = DenseMat<Complex64>;

impl<T: Scalar> DenseMat<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMat {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        DenseMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (a, b) in self.row(i).iter().zip(x.iter()) {
                acc += *a * *b;
            }
            *yi = acc;
        }
        y
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, b: &DenseMat<T>) -> DenseMat<T> {
        assert_eq!(self.cols, b.rows, "dimension mismatch in mul_mat");
        let mut out = DenseMat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.is_zero() {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMat<T> {
        DenseMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Solves `A x = b` in place, consuming the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when no acceptable pivot exists and
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.rows()`.
    pub fn solve(self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                got: format!("length {}", b.len()),
            });
        }
        let lu = crate::lu::LuFactors::factor(self)?;
        Ok(lu.solve(b))
    }

    /// Determinant via LU factorization.
    ///
    /// Returns zero when the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn det(&self) -> T {
        assert!(self.is_square(), "determinant of a non-square matrix");
        match crate::lu::LuFactors::factor(self.clone()) {
            Ok(lu) => lu.det(),
            Err(_) => T::zero(),
        }
    }

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    pub(crate) fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMat<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMat<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_rhs() {
        let a: Mat = Mat::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_known_system() {
        let a = Mat::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_errors() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Mat::identity(2);
        assert!(matches!(
            a.solve(&[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn det_of_known_matrices() {
        assert_eq!(Mat::identity(3).det(), 1.0);
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((a.det() - 6.0).abs() < 1e-12);
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(s.det(), 0.0);
        // A permutation-needing matrix with known determinant.
        let p = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((p.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_mat_and_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ab = a.mul_mat(&b);
        assert_eq!(ab, Mat::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
        assert_eq!(a.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn complex_solve() {
        use crate::Complex64 as C;
        let a = CMat::from_rows(&[
            &[C::new(1.0, 1.0), C::new(0.0, 0.0)],
            &[C::new(0.0, 0.0), C::new(0.0, 2.0)],
        ]);
        let b = [C::new(2.0, 0.0), C::new(0.0, 4.0)];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - C::new(1.0, -1.0)).abs() < 1e-12);
        assert!((x[1] - C::new(2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn from_fn_and_max_abs() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f64 - 3.0);
        assert_eq!(m[(1, 2)], 2.0);
        assert_eq!(m.max_abs(), 3.0);
    }
}
