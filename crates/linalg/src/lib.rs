//! Dense linear-algebra substrate for the AWEsymbolic workspace.
//!
//! This crate deliberately implements everything from scratch — complex
//! arithmetic, dense matrices with LU factorization, real/complex
//! polynomials, and a polynomial root finder — because the reproduction
//! builds its full numerical stack rather than depending on external
//! numerics crates.
//!
//! # Example
//!
//! Solve a small linear system and find the roots of its characteristic
//! polynomial:
//!
//! ```
//! use awesym_linalg::{Mat, Poly};
//!
//! # fn main() -> Result<(), awesym_linalg::LinalgError> {
//! let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let x = a.clone().solve(&[1.0, 2.0])?;
//! assert!((2.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//!
//! // p(s) = (s + 1)(s + 2) = s^2 + 3 s + 2
//! let p = Poly::new(vec![2.0, 3.0, 1.0]);
//! let roots = p.roots()?;
//! assert_eq!(roots.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod complex;
mod error;
mod lu;
mod mat;
mod poly;
mod roots;
mod structured;

pub use complex::Complex64;
pub use error::LinalgError;
pub use lu::LuFactors;
pub use mat::{CMat, Mat};
pub use poly::{CPoly, Poly};
pub use roots::{quadratic_roots, roots_aberth};
pub use structured::{solve_hankel, solve_vandermonde_complex};

/// Scalar abstraction shared by the dense and sparse solvers.
///
/// Implemented for [`f64`] and [`Complex64`]; the circuit engines are generic
/// over it so that DC/moment analysis (real) and AC analysis (complex) share
/// one factorization code path.
pub trait Scalar:
    Copy
    + Clone
    + std::fmt::Debug
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection.
    fn modulus(&self) -> f64;
    /// Lift a real number into the scalar type.
    fn from_f64(x: f64) -> Self;
    /// True when the value is exactly zero.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn modulus(&self) -> f64 {
        self.abs()
    }
    fn from_f64(x: f64) -> Self {
        x
    }
}

impl Scalar for Complex64 {
    fn zero() -> Self {
        Complex64::ZERO
    }
    fn one() -> Self {
        Complex64::ONE
    }
    fn modulus(&self) -> f64 {
        self.abs()
    }
    fn from_f64(x: f64) -> Self {
        Complex64::new(x, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_f64_basics() {
        assert_eq!(f64::zero(), 0.0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!((-3.0f64).modulus(), 3.0);
        assert!(f64::zero().is_zero());
        assert!(!f64::one().is_zero());
    }

    #[test]
    fn scalar_complex_basics() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.modulus(), 5.0);
        assert!(Complex64::zero().is_zero());
        assert_eq!(Complex64::from_f64(2.5), Complex64::new(2.5, 0.0));
    }
}
