//! Newton–Raphson DC solution and small-signal linearization.

use crate::devices::{diode_iv, lim_exp, pnjlim, BjtParams, Device, VT};
use awesym_circuit::{Circuit, Element, Node};
use awesym_mna::{Mna, MnaError};
use std::collections::HashMap;
use std::fmt;

/// Newton iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations per source step.
    pub max_iter: usize,
    /// Absolute voltage tolerance (V).
    pub abstol: f64,
    /// Relative voltage tolerance.
    pub reltol: f64,
    /// Minimum conductance added across every junction (helps
    /// convergence, SPICE's `gmin`).
    pub gmin: f64,
    /// Source-stepping levels tried when plain Newton diverges.
    pub source_steps: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 200,
            abstol: 1e-9,
            reltol: 1e-6,
            gmin: 1e-12,
            source_steps: 8,
        }
    }
}

/// Errors from the nonlinear solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NonlinearError {
    /// Newton failed to converge even with source stepping.
    NoConvergence {
        /// Iterations used in the final attempt.
        iterations: usize,
    },
    /// The companion (linearized) system failed to formulate or solve.
    Mna(MnaError),
    /// A device name collides with a linear element name.
    NameCollision {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for NonlinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonlinearError::NoConvergence { iterations } => {
                write!(
                    f,
                    "newton iteration did not converge after {iterations} iterations"
                )
            }
            NonlinearError::Mna(e) => write!(f, "companion solve failed: {e}"),
            NonlinearError::NameCollision { name } => {
                write!(f, "device name {name} collides with a linear element")
            }
        }
    }
}

impl std::error::Error for NonlinearError {}

impl From<MnaError> for NonlinearError {
    fn from(e: MnaError) -> Self {
        NonlinearError::Mna(e)
    }
}

/// Per-device bias record captured at the converged operating point.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceBias {
    /// Diode bias.
    Diode {
        /// Junction voltage (V).
        v: f64,
        /// Current (A).
        i: f64,
        /// Small-signal conductance (S).
        g: f64,
    },
    /// BJT bias (values in NPN orientation; PNP records its mirrored
    /// junction voltages).
    Bjt {
        /// Base-emitter voltage (V).
        vbe: f64,
        /// Base-collector voltage (V).
        vbc: f64,
        /// Collector current (A).
        ic: f64,
        /// Base current (A).
        ib: f64,
        /// Transconductance (S).
        gm: f64,
        /// Input conductance `gπ` (S).
        gpi: f64,
        /// Feedback conductance `gμ` (S).
        gmu: f64,
    },
}

/// Converged DC solution.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    bias: HashMap<String, DeviceBias>,
    iterations: usize,
}

impl OperatingPoint {
    /// DC voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics for nodes not in the solved circuit.
    pub fn voltage(&self, n: Node) -> f64 {
        self.voltages[n.0]
    }

    /// Bias record of a named device.
    pub fn device_bias(&self, name: &str) -> Option<&DeviceBias> {
        self.bias.get(name)
    }

    /// Newton iterations used (total across source steps).
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// A circuit with linear elements plus nonlinear devices.
#[derive(Debug, Clone)]
pub struct NonlinearCircuit {
    linear: Circuit,
    devices: Vec<Device>,
}

impl NonlinearCircuit {
    /// Wraps the linear part (sources, resistors, capacitors, …).
    pub fn new(linear: Circuit) -> Self {
        NonlinearCircuit {
            linear,
            devices: Vec::new(),
        }
    }

    /// Adds a nonlinear device.
    pub fn add(&mut self, d: Device) {
        self.devices.push(d);
    }

    /// The linear sub-circuit.
    pub fn linear(&self) -> &Circuit {
        &self.linear
    }

    /// The devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Solves the DC operating point with default options.
    ///
    /// # Errors
    ///
    /// See [`NonlinearCircuit::dc_operating_point_with`].
    pub fn dc_operating_point(&self) -> Result<OperatingPoint, NonlinearError> {
        self.dc_operating_point_with(&NewtonOptions::default())
    }

    /// Solves the DC operating point: Newton–Raphson with junction
    /// limiting, falling back to source stepping when plain Newton
    /// diverges.
    ///
    /// # Errors
    ///
    /// Returns [`NonlinearError::NoConvergence`] when every strategy
    /// fails, [`NonlinearError::NameCollision`] for duplicated names, and
    /// formulation errors from the companion solve.
    pub fn dc_operating_point_with(
        &self,
        opts: &NewtonOptions,
    ) -> Result<OperatingPoint, NonlinearError> {
        for d in &self.devices {
            if self.linear.find(d.name()).is_some() {
                return Err(NonlinearError::NameCollision {
                    name: d.name().to_string(),
                });
            }
        }
        // Plain Newton first, then source stepping.
        let mut v0 = vec![0.0; self.linear.num_nodes()];
        match self.newton(&mut v0, 1.0, opts) {
            Ok(iters) => Ok(self.finish(v0, iters)),
            Err(_) => {
                let mut v = vec![0.0; self.linear.num_nodes()];
                let mut total = 0;
                for step in 1..=opts.source_steps {
                    let scale = step as f64 / opts.source_steps as f64;
                    total += self.newton(&mut v, scale, opts).map_err(|_| {
                        NonlinearError::NoConvergence {
                            iterations: total + opts.max_iter,
                        }
                    })?;
                }
                Ok(self.finish(v, total))
            }
        }
    }

    fn finish(&self, voltages: Vec<f64>, iterations: usize) -> OperatingPoint {
        let mut bias = HashMap::new();
        for d in &self.devices {
            bias.insert(d.name().to_string(), self.bias_of(d, &voltages));
        }
        OperatingPoint {
            voltages,
            bias,
            iterations,
        }
    }

    fn bias_of(&self, d: &Device, v: &[f64]) -> DeviceBias {
        match d {
            Device::Diode { p, n, params, .. } => {
                let vj = v[p.0] - v[n.0];
                let (i, g) = diode_iv(params, vj);
                DeviceBias::Diode { v: vj, i, g }
            }
            Device::Npn {
                b, c, e, params, ..
            } => bjt_bias(params, v[b.0] - v[e.0], v[b.0] - v[c.0]),
            Device::Pnp {
                b, c, e, params, ..
            } => bjt_bias(params, v[e.0] - v[b.0], v[c.0] - v[b.0]),
        }
    }

    /// One Newton solve at the given source scaling. Returns iterations.
    fn newton(
        &self,
        v: &mut [f64],
        source_scale: f64,
        opts: &NewtonOptions,
    ) -> Result<usize, NonlinearError> {
        for iter in 1..=opts.max_iter {
            let companion = self.companion(v, source_scale, opts.gmin)?;
            let mna = Mna::build(&companion)?;
            let x = mna.dc_solve()?;
            let mut new_v = vec![0.0; self.linear.num_nodes()];
            for (k, slot) in new_v.iter_mut().enumerate().skip(1) {
                *slot = mna.voltage(&x, Node(k));
            }
            // Junction limiting.
            self.limit(v, &mut new_v);
            let mut max_dv = 0.0f64;
            for k in 0..v.len() {
                let dv = (new_v[k] - v[k]).abs();
                max_dv = max_dv.max(dv);
                v[k] = new_v[k];
            }
            let scale = v.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            if max_dv < opts.abstol + opts.reltol * scale {
                return Ok(iter);
            }
        }
        Err(NonlinearError::NoConvergence {
            iterations: opts.max_iter,
        })
    }

    /// Applies pn-junction limiting to the proposed update.
    fn limit(&self, v_old: &[f64], v_new: &mut [f64]) {
        for d in &self.devices {
            match d {
                Device::Diode { p, n, params, .. } => {
                    let vo = v_old[p.0] - v_old[n.0];
                    let vn = v_new[p.0] - v_new[n.0];
                    let nvt = params.n * VT;
                    let vcrit = nvt * (nvt / (std::f64::consts::SQRT_2 * params.is)).ln();
                    let vl = pnjlim(vn, vo, nvt, vcrit);
                    if vl != vn {
                        // Push the correction onto the anode node (heuristic
                        // but effective: ground-referenced junctions).
                        if !p.is_ground() {
                            v_new[p.0] += vl - vn;
                        } else if !n.is_ground() {
                            v_new[n.0] -= vl - vn;
                        }
                    }
                }
                Device::Npn { b, e, params, .. } => {
                    limit_junction(v_old, v_new, *b, *e, params.is);
                }
                Device::Pnp { b, e, params, .. } => {
                    limit_junction(v_old, v_new, *e, *b, params.is);
                }
            }
        }
    }

    /// Builds the linear companion circuit at the present iterate.
    fn companion(
        &self,
        v: &[f64],
        source_scale: f64,
        gmin: f64,
    ) -> Result<Circuit, NonlinearError> {
        let mut c = Circuit::new();
        for k in 1..self.linear.num_nodes() {
            c.node(self.linear.node_name(Node(k)));
        }
        for e in self.linear.elements() {
            let mut e2 = e.clone();
            if matches!(
                e.kind,
                awesym_circuit::ElementKind::Vsource | awesym_circuit::ElementKind::Isource
            ) {
                e2.value *= source_scale;
            }
            // Open-circuit capacitors at DC are implicit (they stamp only
            // C); inductors short through their branch equations.
            c.add(e2);
        }
        for d in &self.devices {
            match d {
                Device::Diode { name, p, n, params } => {
                    let vj = v[p.0] - v[n.0];
                    let (i, g) = diode_iv(params, vj);
                    let g = g + gmin;
                    c.add(Element::resistor(&format!("{name}_g"), *p, *n, 1.0 / g));
                    let ieq = i - g * vj;
                    if ieq != 0.0 {
                        c.add(Element::isource(&format!("{name}_i"), *p, *n, ieq));
                    }
                }
                Device::Npn {
                    name,
                    b,
                    c: col,
                    e,
                    params,
                } => {
                    stamp_bjt_companion(
                        &mut c,
                        name,
                        *b,
                        *col,
                        *e,
                        params,
                        v[b.0] - v[e.0],
                        v[b.0] - v[col.0],
                        gmin,
                        false,
                    );
                }
                Device::Pnp {
                    name,
                    b,
                    c: col,
                    e,
                    params,
                } => {
                    stamp_bjt_companion(
                        &mut c,
                        name,
                        *b,
                        *col,
                        *e,
                        params,
                        v[e.0] - v[b.0],
                        v[col.0] - v[b.0],
                        gmin,
                        true,
                    );
                }
            }
        }
        Ok(c)
    }

    /// Emits the small-signal (linearized) circuit at an operating point —
    /// the input AWE and AWEsymbolic consume. Independent sources are kept
    /// (AWE drives them at unit amplitude); every device becomes its
    /// incremental model.
    ///
    /// # Panics
    ///
    /// Panics when `op` comes from a different circuit (node count
    /// mismatch).
    pub fn linearize(&self, op: &OperatingPoint) -> Circuit {
        assert_eq!(
            op.voltages.len(),
            self.linear.num_nodes(),
            "operating point belongs to a different circuit"
        );
        let mut c = Circuit::new();
        for k in 1..self.linear.num_nodes() {
            c.node(self.linear.node_name(Node(k)));
        }
        for e in self.linear.elements() {
            c.add(e.clone());
        }
        for d in &self.devices {
            match d {
                Device::Diode { name, p, n, params } => {
                    let Some(DeviceBias::Diode { g, .. }) = op.device_bias(name) else {
                        continue;
                    };
                    c.add(Element::resistor(&format!("rd_{name}"), *p, *n, 1.0 / g));
                    let cap = params.cj0 + params.tt * g;
                    c.add(Element::capacitor(&format!("cd_{name}"), *p, *n, cap));
                }
                Device::Npn {
                    name,
                    b,
                    c: col,
                    e,
                    params,
                }
                | Device::Pnp {
                    name,
                    b,
                    c: col,
                    e,
                    params,
                } => {
                    let Some(DeviceBias::Bjt {
                        ic,
                        gm,
                        gpi,
                        gmu,
                        vbc,
                        ..
                    }) = op.device_bias(name)
                    else {
                        continue;
                    };
                    // Hybrid-π: identical structure for NPN and PNP.
                    let bi = c.node(&format!("{name}_bi"));
                    c.add(Element::resistor(&format!("rb_{name}"), *b, bi, params.rb));
                    c.add(Element::resistor(
                        &format!("rpi_{name}"),
                        bi,
                        *e,
                        1.0 / gpi.max(1e-18),
                    ));
                    c.add(Element::vccs(&format!("gm_{name}"), *col, *e, bi, *e, *gm));
                    let go = ic.abs() / (params.va + vbc.abs()).max(1.0);
                    c.add(Element::resistor(
                        &format!("ro_{name}"),
                        *col,
                        *e,
                        1.0 / go.max(1e-18),
                    ));
                    if *gmu > 1e-18 {
                        c.add(Element::resistor(
                            &format!("rmu_{name}"),
                            bi,
                            *col,
                            1.0 / gmu,
                        ));
                    }
                    let cpi = params.cje + params.tf * gm;
                    c.add(Element::capacitor(&format!("cpi_{name}"), bi, *e, cpi));
                    c.add(Element::capacitor(
                        &format!("cmu_{name}"),
                        bi,
                        *col,
                        params.cjc,
                    ));
                }
            }
        }
        c
    }
}

fn limit_junction(v_old: &[f64], v_new: &mut [f64], p: Node, n: Node, is: f64) {
    let vo = v_old[p.0] - v_old[n.0];
    let vn = v_new[p.0] - v_new[n.0];
    let vcrit = VT * (VT / (std::f64::consts::SQRT_2 * is)).ln();
    let vl = pnjlim(vn, vo, VT, vcrit);
    if vl != vn {
        if !p.is_ground() {
            v_new[p.0] += vl - vn;
        } else if !n.is_ground() {
            v_new[n.0] -= vl - vn;
        }
    }
}

fn bjt_bias(p: &BjtParams, vbe: f64, vbc: f64) -> DeviceBias {
    let (ef, def) = lim_exp(vbe / VT);
    let (er, der) = lim_exp(vbc / VT);
    let icc = p.is * (ef - er);
    let ibe = p.is / p.beta_f * (ef - 1.0);
    let ibc = p.is / p.beta_r * (er - 1.0);
    let gm = p.is * def / VT;
    let gpi = p.is / p.beta_f * def / VT;
    let gmu = p.is / p.beta_r * der / VT;
    DeviceBias::Bjt {
        vbe,
        vbc,
        ic: icc - ibc,
        ib: ibe + ibc,
        gm,
        gpi,
        gmu,
    }
}

/// Stamps the Ebers–Moll companion model. `mirror = true` flips every
/// current direction and control polarity (PNP).
#[allow(clippy::too_many_arguments)]
fn stamp_bjt_companion(
    c: &mut Circuit,
    name: &str,
    b: Node,
    col: Node,
    e: Node,
    p: &BjtParams,
    vbe: f64,
    vbc: f64,
    gmin: f64,
    mirror: bool,
) {
    let (ef, def) = lim_exp(vbe / VT);
    let (er, der) = lim_exp(vbc / VT);
    let icc = p.is * (ef - er);
    let ibe = p.is / p.beta_f * (ef - 1.0);
    let ibc = p.is / p.beta_r * (er - 1.0);
    let gpi = (p.is / p.beta_f * def / VT) + gmin;
    let gmu = (p.is / p.beta_r * der / VT) + gmin;
    let gmf = p.is * def / VT;
    let gmr = p.is * der / VT;

    // Orientation helpers: for a PNP the physical junctions are e→b and
    // c→b and the transport current runs e→c.
    let (jp, jn) = if mirror { (e, b) } else { (b, e) };
    let (kp, kn) = if mirror { (col, b) } else { (b, col) };
    let (tp, tn) = if mirror { (e, col) } else { (col, e) };

    // Base-emitter junction.
    c.add(Element::resistor(&format!("{name}_gpi"), jp, jn, 1.0 / gpi));
    let ieq = ibe - gpi * vbe;
    if ieq != 0.0 {
        c.add(Element::isource(&format!("{name}_ibe"), jp, jn, ieq));
    }
    // Base-collector junction.
    c.add(Element::resistor(&format!("{name}_gmu"), kp, kn, 1.0 / gmu));
    let ieq = ibc - gmu * vbc;
    if ieq != 0.0 {
        c.add(Element::isource(&format!("{name}_ibc"), kp, kn, ieq));
    }
    // Transport current icc(vbe, vbc) flowing (c → e) in NPN orientation:
    // icc ≈ icc0 + gmf·Δvbe − gmr·Δvbc.
    c.add(Element::vccs(&format!("{name}_gmf"), tp, tn, jp, jn, gmf));
    c.add(Element::vccs(&format!("{name}_gmr"), tp, tn, kp, kn, -gmr));
    let ieq = icc - gmf * vbe + gmr * vbc;
    if ieq != 0.0 {
        c.add(Element::isource(&format!("{name}_icc"), tp, tn, ieq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiodeParams;

    fn diode_divider(vcc: f64, r: f64) -> (NonlinearCircuit, Node) {
        let mut lin = Circuit::new();
        let n1 = lin.node("1");
        let n2 = lin.node("2");
        lin.add(Element::vsource("VCC", n1, Circuit::GROUND, vcc));
        lin.add(Element::resistor("R1", n1, n2, r));
        let mut ckt = NonlinearCircuit::new(lin);
        ckt.add(Device::diode(
            "D1",
            n2,
            Circuit::GROUND,
            DiodeParams::default(),
        ));
        (ckt, n2)
    }

    /// Scalar reference solution of Is(e^{v/VT}−1) = (VCC−v)/R.
    fn diode_truth(vcc: f64, r: f64) -> f64 {
        let p = DiodeParams::default();
        let mut v = 0.6;
        for _ in 0..200 {
            let (i, g) = diode_iv(&p, v);
            let f = i - (vcc - v) / r;
            let df = g + 1.0 / r;
            v -= f / df;
        }
        v
    }

    #[test]
    fn diode_bias_matches_scalar_newton() {
        for (vcc, r) in [(5.0, 1e3), (1.0, 1e5), (12.0, 47.0)] {
            let (ckt, out) = diode_divider(vcc, r);
            let op = ckt.dc_operating_point().unwrap();
            let truth = diode_truth(vcc, r);
            let got = op.voltage(out);
            assert!(
                (got - truth).abs() < 1e-6,
                "vcc={vcc} r={r}: {got} vs {truth} ({} iters)",
                op.iterations()
            );
        }
    }

    #[test]
    fn reverse_biased_diode_conducts_nothing() {
        let mut lin = Circuit::new();
        let n1 = lin.node("1");
        let n2 = lin.node("2");
        lin.add(Element::vsource("VEE", n1, Circuit::GROUND, -5.0));
        lin.add(Element::resistor("R1", n1, n2, 1e3));
        let mut ckt = NonlinearCircuit::new(lin);
        ckt.add(Device::diode(
            "D1",
            n2,
            Circuit::GROUND,
            DiodeParams::default(),
        ));
        let op = ckt.dc_operating_point().unwrap();
        // Node 2 sits at ≈ −5 V (only saturation current flows).
        assert!((op.voltage(n2) + 5.0).abs() < 1e-3);
        let Some(DeviceBias::Diode { i, .. }) = op.device_bias("D1") else {
            panic!("missing bias")
        };
        assert!(i.abs() < 1e-10);
    }

    fn ce_stage() -> (NonlinearCircuit, Node, Node) {
        // VB = 1.0 V at the base, RE = 330 Ω degeneration, RC = 2 kΩ from
        // a 10 V rail: IC ≈ (1.0 − 0.65)/330 ≈ 1 mA, forward active.
        let mut lin = Circuit::new();
        let vb = lin.node("vb");
        let vc = lin.node("vcc");
        let base = lin.node("base");
        let coll = lin.node("coll");
        let emit = lin.node("emit");
        lin.add(Element::vsource("VB", vb, Circuit::GROUND, 1.0));
        lin.add(Element::resistor("RBS", vb, base, 100.0));
        lin.add(Element::vsource("VCC", vc, Circuit::GROUND, 10.0));
        lin.add(Element::resistor("RC", vc, coll, 2e3));
        lin.add(Element::resistor("RE", emit, Circuit::GROUND, 330.0));
        let mut ckt = NonlinearCircuit::new(lin);
        ckt.add(Device::npn("Q1", base, coll, emit, BjtParams::default()));
        (ckt, base, coll)
    }

    #[test]
    fn npn_common_emitter_bias() {
        let (ckt, _base, coll) = ce_stage();
        let op = ckt.dc_operating_point().unwrap();
        let Some(DeviceBias::Bjt { ic, vbe, ib, .. }) = op.device_bias("Q1") else {
            panic!("missing bias")
        };
        assert!((0.55..0.80).contains(vbe), "vbe {vbe}");
        assert!((0.5e-3..1.3e-3).contains(ic), "ic {ic}");
        assert!(*ib > 0.0 && *ib < *ic / 50.0, "ib {ib}");
        // Collector voltage: 10 − IC·RC, still forward active.
        let vc = op.voltage(coll);
        assert!((vc - (10.0 - ic * 2e3)).abs() < 1e-6);
        assert!(vc > 2.0);
    }

    #[test]
    fn pnp_mirror_of_npn() {
        // PNP with mirrored supplies must bias symmetrically to the NPN.
        let mut lin = Circuit::new();
        let vb = lin.node("vb");
        let vc = lin.node("vee");
        let base = lin.node("base");
        let coll = lin.node("coll");
        let emit = lin.node("emit");
        lin.add(Element::vsource("VB", vb, Circuit::GROUND, -1.0));
        lin.add(Element::resistor("RBS", vb, base, 100.0));
        lin.add(Element::vsource("VEE", vc, Circuit::GROUND, -10.0));
        lin.add(Element::resistor("RC", vc, coll, 2e3));
        lin.add(Element::resistor("RE", emit, Circuit::GROUND, 330.0));
        let mut ckt = NonlinearCircuit::new(lin);
        ckt.add(Device::pnp("Q1", base, coll, emit, BjtParams::default()));
        let op = ckt.dc_operating_point().unwrap();
        let Some(DeviceBias::Bjt { ic, vbe, .. }) = op.device_bias("Q1") else {
            panic!("missing bias")
        };
        // PNP records its own junction orientation: veb ≈ +0.65.
        assert!((0.55..0.80).contains(vbe), "veb {vbe}");
        assert!((0.5e-3..1.3e-3).contains(ic), "ic {ic}");
        assert!((op.voltage(coll) - (-10.0 + ic * 2e3)).abs() < 1e-6);
    }

    #[test]
    fn linearized_ce_gain_matches_hand_analysis() {
        let (ckt, _base, coll) = ce_stage();
        let op = ckt.dc_operating_point().unwrap();
        let small = ckt.linearize(&op);
        // Small-signal gain from VB to the collector ≈ −RC/(RE + 1/gm)
        // (degenerated stage), within ~10 %.
        let vb = small.find("VB").unwrap();
        let awe = awesym_awe::AweAnalysis::new(&small, vb, coll).unwrap();
        let m = awe.moments(2).unwrap().m;
        let Some(DeviceBias::Bjt { gm, .. }) = op.device_bias("Q1") else {
            panic!()
        };
        let expect = -2e3 / (330.0 + 1.0 / gm);
        assert!(
            (m[0] - expect).abs() < 0.1 * expect.abs(),
            "gain {} vs {expect}",
            m[0]
        );
    }

    #[test]
    fn stiff_circuit_converges_via_stepping() {
        // Diode straight across a strong source through 1 Ω: brutal for
        // undamped Newton, fine with limiting/stepping.
        let (ckt, out) = diode_divider(10.0, 1.0);
        let op = ckt.dc_operating_point().unwrap();
        let truth = diode_truth(10.0, 1.0);
        assert!((op.voltage(out) - truth).abs() < 1e-4);
    }

    #[test]
    fn name_collision_rejected() {
        let mut lin = Circuit::new();
        let n1 = lin.node("1");
        lin.add(Element::vsource("VCC", n1, Circuit::GROUND, 1.0));
        lin.add(Element::resistor("D1", n1, Circuit::GROUND, 1.0));
        let mut ckt = NonlinearCircuit::new(lin);
        ckt.add(Device::diode(
            "D1",
            n1,
            Circuit::GROUND,
            DiodeParams::default(),
        ));
        assert!(matches!(
            ckt.dc_operating_point(),
            Err(NonlinearError::NameCollision { .. })
        ));
    }
}
