//! Nonlinear device models: pn diode and Ebers–Moll bipolar transistor.

use awesym_circuit::Node;

/// Thermal voltage at 300 K (V).
pub const VT: f64 = 0.02585;

/// Diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub is: f64,
    /// Ideality factor.
    pub n: f64,
    /// Zero-bias junction capacitance (F); linearized as-is.
    pub cj0: f64,
    /// Transit time (s) for the diffusion capacitance `τ·g_d`.
    pub tt: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            cj0: 1e-12,
            tt: 5e-9,
        }
    }
}

/// Bipolar transistor parameters (Ebers–Moll transport form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtParams {
    /// Transport saturation current (A).
    pub is: f64,
    /// Forward beta.
    pub beta_f: f64,
    /// Reverse beta.
    pub beta_r: f64,
    /// Early voltage (V), used for the small-signal `r_o`.
    pub va: f64,
    /// Base-emitter zero-bias junction capacitance (F).
    pub cje: f64,
    /// Base-collector zero-bias junction capacitance (F).
    pub cjc: f64,
    /// Forward transit time (s) for the diffusion capacitance.
    pub tf: f64,
    /// Base spreading resistance (Ω) for the linearized model.
    pub rb: f64,
}

impl Default for BjtParams {
    fn default() -> Self {
        BjtParams {
            is: 1e-16,
            beta_f: 200.0,
            beta_r: 2.0,
            va: 50.0,
            cje: 2e-12,
            cjc: 1e-12,
            tf: 0.3e-9,
            rb: 200.0,
        }
    }
}

/// A nonlinear device instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// pn diode conducting from `p` to `n`.
    Diode {
        /// Instance name.
        name: String,
        /// Anode.
        p: Node,
        /// Cathode.
        n: Node,
        /// Parameters.
        params: DiodeParams,
    },
    /// NPN bipolar transistor.
    Npn {
        /// Instance name.
        name: String,
        /// Base.
        b: Node,
        /// Collector.
        c: Node,
        /// Emitter.
        e: Node,
        /// Parameters.
        params: BjtParams,
    },
    /// PNP bipolar transistor (junction polarities mirrored).
    Pnp {
        /// Instance name.
        name: String,
        /// Base.
        b: Node,
        /// Collector.
        c: Node,
        /// Emitter.
        e: Node,
        /// Parameters.
        params: BjtParams,
    },
}

impl Device {
    /// Diode constructor.
    pub fn diode(name: &str, p: Node, n: Node, params: DiodeParams) -> Device {
        Device::Diode {
            name: name.into(),
            p,
            n,
            params,
        }
    }

    /// NPN constructor.
    pub fn npn(name: &str, b: Node, c: Node, e: Node, params: BjtParams) -> Device {
        Device::Npn {
            name: name.into(),
            b,
            c,
            e,
            params,
        }
    }

    /// PNP constructor.
    pub fn pnp(name: &str, b: Node, c: Node, e: Node, params: BjtParams) -> Device {
        Device::Pnp {
            name: name.into(),
            b,
            c,
            e,
            params,
        }
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        match self {
            Device::Diode { name, .. } | Device::Npn { name, .. } | Device::Pnp { name, .. } => {
                name
            }
        }
    }
}

/// Limited exponential: `exp` with linear extrapolation above `max_arg`
/// to keep Newton iterations finite.
pub(crate) fn lim_exp(x: f64) -> (f64, f64) {
    const MAX: f64 = 80.0;
    if x <= MAX {
        let e = x.exp();
        (e, e)
    } else {
        let e = MAX.exp();
        (e * (1.0 + (x - MAX)), e)
    }
}

/// Diode current and conductance at junction voltage `v`.
pub(crate) fn diode_iv(p: &DiodeParams, v: f64) -> (f64, f64) {
    let nvt = p.n * VT;
    let (e, de) = lim_exp(v / nvt);
    let i = p.is * (e - 1.0);
    let g = p.is * de / nvt;
    (i, g.max(1e-15))
}

/// Standard pn-junction voltage limiting (SPICE's `pnjlim`): prevents the
/// Newton step from overshooting the exponential.
pub(crate) fn pnjlim(v_new: f64, v_old: f64, vt: f64, v_crit: f64) -> f64 {
    if v_new > v_crit && (v_new - v_old).abs() > 2.0 * vt {
        if v_old > 0.0 {
            let arg = 1.0 + (v_new - v_old) / vt;
            if arg > 0.0 {
                v_old + vt * arg.ln()
            } else {
                v_crit
            }
        } else {
            vt * (v_new / vt).max(1.0).ln()
        }
    } else {
        v_new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diode_iv_behaves() {
        let p = DiodeParams::default();
        let (i0, g0) = diode_iv(&p, 0.0);
        assert_eq!(i0, 0.0);
        assert!(g0 > 0.0);
        let (i, g) = diode_iv(&p, 0.7);
        assert!(i > 1e-4, "forward current {i}");
        // g = dI/dV ≈ I/VT for strong forward bias.
        assert!((g - i / VT).abs() < 0.01 * g);
        let (ir, _) = diode_iv(&p, -5.0);
        assert!((ir + p.is).abs() < 1e-20, "reverse saturation {ir}");
    }

    #[test]
    fn lim_exp_is_continuous_and_monotone() {
        let (a, _) = lim_exp(79.999);
        let (b, _) = lim_exp(80.001);
        assert!(b >= a);
        let (c, _) = lim_exp(200.0);
        assert!(c.is_finite() && c > b);
    }

    #[test]
    fn pnjlim_limits_big_steps() {
        let v = pnjlim(5.0, 0.6, VT, 0.65);
        assert!(v < 1.0, "limited to {v}");
        // Small steps pass through.
        assert_eq!(pnjlim(0.61, 0.6, VT, 0.65), 0.61);
        // Steps below the critical voltage pass through.
        assert_eq!(pnjlim(0.3, 0.0, VT, 0.65), 0.3);
    }

    #[test]
    fn constructors_and_names() {
        use awesym_circuit::Circuit;
        let d = Device::diode(
            "D1",
            awesym_circuit::Node(1),
            Circuit::GROUND,
            DiodeParams::default(),
        );
        assert_eq!(d.name(), "D1");
        let q = Device::npn(
            "Q1",
            awesym_circuit::Node(1),
            awesym_circuit::Node(2),
            Circuit::GROUND,
            BjtParams::default(),
        );
        assert_eq!(q.name(), "Q1");
    }
}
