//! Nonlinear front end: DC operating point and small-signal linearization.
//!
//! The paper analyzes *linear(ized)* circuits — its 741 example is "the
//! small signal circuit after linearization". This crate supplies that
//! step for netlists containing diodes and bipolar transistors:
//!
//! 1. [`NonlinearCircuit::dc_operating_point`] — Newton–Raphson with
//!    junction-voltage limiting, each iteration solving a linear companion
//!    circuit through the workspace MNA/sparse-LU stack;
//! 2. [`NonlinearCircuit::linearize`] — emits the small-signal
//!    [`Circuit`](awesym_circuit::Circuit)
//!    (hybrid-π transistors, junction conductances and capacitances at
//!    the bias point) ready for AWE / AWEsymbolic.
//!
//! # Example
//!
//! ```
//! use awesym_circuit::{Circuit, Element};
//! use awesym_nonlinear::{Device, DiodeParams, NonlinearCircuit};
//!
//! # fn main() -> Result<(), awesym_nonlinear::NonlinearError> {
//! // 5 V — 1 kΩ — diode to ground.
//! let mut lin = Circuit::new();
//! let n1 = lin.node("1");
//! let n2 = lin.node("2");
//! lin.add(Element::vsource("VCC", n1, Circuit::GROUND, 5.0));
//! lin.add(Element::resistor("R1", n1, n2, 1e3));
//! let mut ckt = NonlinearCircuit::new(lin);
//! ckt.add(Device::diode("D1", n2, Circuit::GROUND, DiodeParams::default()));
//! let op = ckt.dc_operating_point()?;
//! let vd = op.voltage(n2);
//! assert!(vd > 0.5 && vd < 0.8, "diode drop {vd}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod devices;
mod newton;
mod parse;

pub use devices::{BjtParams, Device, DiodeParams};
pub use newton::{DeviceBias, NewtonOptions, NonlinearCircuit, NonlinearError, OperatingPoint};
pub use parse::parse_spice_nonlinear;
