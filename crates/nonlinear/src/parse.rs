//! SPICE-subset parsing extended with nonlinear device cards.
//!
//! ```text
//! Dname n+ n-            diode (default parameters)
//! Qname nc nb ne [PNP]   bipolar transistor, NPN unless tagged PNP
//! ```
//!
//! Linear cards are delegated to [`awesym_circuit::parse_spice`]'s
//! grammar.

use crate::{BjtParams, Device, DiodeParams, NonlinearCircuit};
use awesym_circuit::{parse_spice, ParseNetlistError};

/// Parses a netlist that may contain `D`/`Q` cards into a
/// [`NonlinearCircuit`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with line information for malformed
/// cards.
pub fn parse_spice_nonlinear(text: &str) -> Result<NonlinearCircuit, ParseNetlistError> {
    // Split device cards out, keep everything else for the linear parser.
    let mut linear_lines = Vec::new();
    let mut device_lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let t = raw.trim();
        let first = t.chars().next().map(|c| c.to_ascii_uppercase());
        match first {
            Some('D') | Some('Q') => device_lines.push((idx + 1, t.to_string())),
            _ => linear_lines.push(raw),
        }
    }
    let mut linear = parse_spice(&linear_lines.join("\n"))?;
    // Device nodes must exist in the shared node table: intern them now.
    let mut devices = Vec::new();
    for (line, card) in device_lines {
        let toks: Vec<&str> = card.split_whitespace().collect();
        let err = |message: String| ParseNetlistError { line, message };
        match card.chars().next().unwrap().to_ascii_uppercase() {
            'D' => {
                if toks.len() != 3 {
                    return Err(err(format!(
                        "diode card needs 3 fields, found {}",
                        toks.len()
                    )));
                }
                let p = linear.node(toks[1]);
                let n = linear.node(toks[2]);
                devices.push(Device::diode(toks[0], p, n, DiodeParams::default()));
            }
            'Q' => {
                if !(toks.len() == 4 || toks.len() == 5) {
                    return Err(err(format!(
                        "bjt card needs 4-5 fields, found {}",
                        toks.len()
                    )));
                }
                let c = linear.node(toks[1]);
                let b = linear.node(toks[2]);
                let e = linear.node(toks[3]);
                let pnp =
                    matches!(toks.get(4).map(|s| s.to_ascii_uppercase()), Some(s) if s == "PNP");
                if toks.len() == 5 && !pnp && !toks[4].eq_ignore_ascii_case("npn") {
                    return Err(err(format!("unknown bjt model '{}'", toks[4])));
                }
                let d = if pnp {
                    Device::pnp(toks[0], b, c, e, BjtParams::default())
                } else {
                    Device::npn(toks[0], b, c, e, BjtParams::default())
                };
                devices.push(d);
            }
            _ => unreachable!("filtered above"),
        }
    }
    let mut out = NonlinearCircuit::new(linear);
    for d in devices {
        out.add(d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_netlist() {
        let text = "\
* diode clamp plus bjt stage
VCC vcc 0 5
VIN in 0 0.8
RS in b 1k
RC vcc c 2k
RE e 0 470
Q1 c b e
D1 b 0
.end";
        let ckt = parse_spice_nonlinear(text).unwrap();
        assert_eq!(ckt.devices().len(), 2);
        assert_eq!(ckt.linear().num_elements(), 5);
        // The whole thing biases.
        let op = ckt.dc_operating_point().unwrap();
        let vb = op.voltage(ckt.linear().find_node("b").unwrap());
        assert!(vb > 0.4 && vb < 0.9, "base at {vb}");
    }

    #[test]
    fn pnp_tag_and_errors() {
        let ok = parse_spice_nonlinear("VCC 1 0 5\nR1 1 2 1k\nQ2 0 2 1 PNP\n").unwrap();
        assert!(matches!(ok.devices()[0], Device::Pnp { .. }));
        assert!(parse_spice_nonlinear("D1 1\n").is_err());
        assert!(parse_spice_nonlinear("Q1 1 2\n").is_err());
        let e = parse_spice_nonlinear("Q1 1 2 0 FET\n").unwrap_err();
        assert!(e.to_string().contains("unknown bjt model"));
    }

    #[test]
    fn line_numbers_survive_extraction() {
        let e = parse_spice_nonlinear("R1 1 0 1k\nQbad 1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
