//! Error type for the partitioned symbolic analysis.

use awesym_awe::AweError;
use awesym_mna::MnaError;
use std::fmt;

/// Errors from assembling or evaluating a partitioned symbolic model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// Underlying MNA/AWE failure.
    Awe(AweError),
    /// A symbol binds an element of the wrong kind for its role.
    RoleMismatch {
        /// Symbol name.
        symbol: String,
        /// Name of the offending element.
        element: String,
    },
    /// A symbol binds no elements, or an element is bound twice.
    BadBinding {
        /// Description of the problem.
        what: String,
    },
    /// The internal (numeric) partition is singular — an internal node has
    /// no DC path to ground that avoids the symbolic elements' ports.
    SingularNumericPartition,
    /// The global symbolic matrix has an identically zero determinant.
    SingularSymbolicSystem,
    /// The symbolic problem is too large (ports × symbols beyond the
    /// division-free solver's practical range).
    TooManyPorts {
        /// Number of ports required.
        ports: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Awe(e) => write!(f, "awe failure: {e}"),
            PartitionError::RoleMismatch { symbol, element } => {
                write!(
                    f,
                    "symbol {symbol} cannot bind element {element} (wrong kind)"
                )
            }
            PartitionError::BadBinding { what } => write!(f, "bad symbol binding: {what}"),
            PartitionError::SingularNumericPartition => {
                write!(f, "numeric partition is singular")
            }
            PartitionError::SingularSymbolicSystem => {
                write!(f, "global symbolic matrix is singular")
            }
            PartitionError::TooManyPorts { ports, max } => {
                write!(
                    f,
                    "symbolic system needs {ports} ports, supported max is {max}"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Awe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AweError> for PartitionError {
    fn from(e: AweError) -> Self {
        PartitionError::Awe(e)
    }
}

impl From<MnaError> for PartitionError {
    fn from(e: MnaError) -> Self {
        PartitionError::Awe(AweError::Mna(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PartitionError::TooManyPorts { ports: 20, max: 12 };
        assert!(e.to_string().contains("20"));
        assert!(PartitionError::SingularNumericPartition
            .to_string()
            .contains("singular"));
        let r = PartitionError::RoleMismatch {
            symbol: "g".into(),
            element: "C1".into(),
        };
        assert!(r.to_string().contains("C1"));
    }
}
