//! Symbol bindings: which circuit elements a symbol stands for, and how it
//! enters the equations.

use awesym_circuit::{Circuit, ElementId, ElementKind};

/// How a symbol enters the MNA matrices.
///
/// Following the paper, resistive symbols may be carried either in
/// admittance form (conductance, stamped directly into `Ŷ_0`) or in
/// impedance form (resistance, through an auxiliary branch equation, like
/// inductors) — both keep every matrix entry *linear* in the symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SymbolRole {
    /// Symbol is the conductance `g = 1/R` of resistor elements.
    Conductance,
    /// Symbol is the resistance `R` of resistor elements (auxiliary branch).
    Resistance,
    /// Symbol is the capacitance of capacitor elements.
    Capacitance,
    /// Symbol is the inductance of inductor elements.
    Inductance,
    /// Symbol is the transconductance of VCCS elements.
    Transconductance,
}

/// Binds a named symbol to one or more circuit elements (all of the same
/// kind, all sharing the symbol's value — e.g. the two matched drivers of
/// the coupled-line example both bound to `rdrv`).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolBinding {
    /// Symbol name.
    pub name: String,
    /// How the symbol enters the equations.
    pub role: SymbolRole,
    /// The bound elements.
    pub elements: Vec<ElementId>,
}

impl SymbolBinding {
    /// Conductance symbol over resistor elements.
    pub fn conductance(name: &str, elements: Vec<ElementId>) -> Self {
        SymbolBinding {
            name: name.into(),
            role: SymbolRole::Conductance,
            elements,
        }
    }

    /// Resistance symbol over resistor elements.
    pub fn resistance(name: &str, elements: Vec<ElementId>) -> Self {
        SymbolBinding {
            name: name.into(),
            role: SymbolRole::Resistance,
            elements,
        }
    }

    /// Capacitance symbol over capacitor elements.
    pub fn capacitance(name: &str, elements: Vec<ElementId>) -> Self {
        SymbolBinding {
            name: name.into(),
            role: SymbolRole::Capacitance,
            elements,
        }
    }

    /// Inductance symbol over inductor elements.
    pub fn inductance(name: &str, elements: Vec<ElementId>) -> Self {
        SymbolBinding {
            name: name.into(),
            role: SymbolRole::Inductance,
            elements,
        }
    }

    /// Transconductance symbol over VCCS elements.
    pub fn transconductance(name: &str, elements: Vec<ElementId>) -> Self {
        SymbolBinding {
            name: name.into(),
            role: SymbolRole::Transconductance,
            elements,
        }
    }

    /// A binding with the role inferred from the first element's kind
    /// (resistors default to the [`SymbolRole::Resistance`] impedance
    /// form).
    ///
    /// # Panics
    ///
    /// Panics when `elements` is empty or the kind has no symbolic role.
    pub fn auto(circuit: &Circuit, name: &str, elements: Vec<ElementId>) -> Self {
        let kind = circuit
            .element(*elements.first().expect("empty binding"))
            .kind;
        let role = match kind {
            ElementKind::Resistor => SymbolRole::Resistance,
            ElementKind::Capacitor => SymbolRole::Capacitance,
            ElementKind::Inductor => SymbolRole::Inductance,
            ElementKind::Vccs => SymbolRole::Transconductance,
            other => panic!("element kind {other:?} cannot be a symbol"),
        };
        SymbolBinding {
            name: name.into(),
            role,
            elements,
        }
    }

    /// The expected element kind for this binding's role.
    pub fn expected_kind(&self) -> ElementKind {
        match self.role {
            SymbolRole::Conductance | SymbolRole::Resistance => ElementKind::Resistor,
            SymbolRole::Capacitance => ElementKind::Capacitor,
            SymbolRole::Inductance => ElementKind::Inductor,
            SymbolRole::Transconductance => ElementKind::Vccs,
        }
    }

    /// Nominal symbol value derived from the first bound element's stored
    /// value (inverted for conductance roles).
    pub fn nominal(&self, circuit: &Circuit) -> f64 {
        let v = circuit.element(self.elements[0]).value;
        match self.role {
            SymbolRole::Conductance => 1.0 / v,
            _ => v,
        }
    }
}

/// Returns a copy of the circuit with the symbol values written back into
/// the bound elements (conductance roles invert into resistances). This is
/// how reference analyses and validation sweeps materialize a point of the
/// symbol space.
///
/// # Panics
///
/// Panics when `vals.len() != bindings.len()`.
pub fn apply_symbol_values(circuit: &Circuit, bindings: &[SymbolBinding], vals: &[f64]) -> Circuit {
    assert_eq!(vals.len(), bindings.len(), "one value per symbol");
    let mut out = circuit.clone();
    for (b, &v) in bindings.iter().zip(vals.iter()) {
        let stored = match b.role {
            SymbolRole::Conductance => 1.0 / v,
            _ => v,
        };
        for &eid in &b.elements {
            out.set_value(eid, stored);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::{Circuit, Element};

    fn sample() -> (Circuit, ElementId, ElementId) {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let r = c.add(Element::resistor("R1", n1, Circuit::GROUND, 50.0));
        let cap = c.add(Element::capacitor("C1", n1, Circuit::GROUND, 1e-12));
        (c, r, cap)
    }

    #[test]
    fn constructors_and_roles() {
        let (_, r, cap) = sample();
        assert_eq!(
            SymbolBinding::conductance("g", vec![r]).expected_kind(),
            ElementKind::Resistor
        );
        assert_eq!(
            SymbolBinding::resistance("r", vec![r]).expected_kind(),
            ElementKind::Resistor
        );
        assert_eq!(
            SymbolBinding::capacitance("c", vec![cap]).expected_kind(),
            ElementKind::Capacitor
        );
    }

    #[test]
    fn auto_binding_infers_role() {
        let (c, r, cap) = sample();
        assert_eq!(
            SymbolBinding::auto(&c, "r1", vec![r]).role,
            SymbolRole::Resistance
        );
        assert_eq!(
            SymbolBinding::auto(&c, "c1", vec![cap]).role,
            SymbolRole::Capacitance
        );
    }

    #[test]
    fn nominal_inverts_for_conductance() {
        let (c, r, _) = sample();
        assert_eq!(SymbolBinding::resistance("r", vec![r]).nominal(&c), 50.0);
        assert_eq!(SymbolBinding::conductance("g", vec![r]).nominal(&c), 0.02);
    }

    #[test]
    fn apply_symbol_values_round_trips_nominal() {
        let (c, r, cap) = sample();
        let bindings = [
            SymbolBinding::conductance("g", vec![r]),
            SymbolBinding::capacitance("c", vec![cap]),
        ];
        let nominal: Vec<f64> = bindings.iter().map(|b| b.nominal(&c)).collect();
        let c2 = apply_symbol_values(&c, &bindings, &nominal);
        assert_eq!(c2.element(r).value, 50.0);
        assert_eq!(c2.element(cap).value, 1e-12);
        let c3 = apply_symbol_values(&c, &bindings, &[0.1, 2e-12]);
        assert_eq!(c3.element(r).value, 10.0);
        assert_eq!(c3.element(cap).value, 2e-12);
    }
}
