//! The compiled symbolic AWE model — the paper's end product.

use crate::{PartitionError, SymbolBinding, SymbolicMoments, SymbolicSystem};
use awesym_awe::{pade_rom, Rom};
use awesym_circuit::{Circuit, ElementId, Node};
use awesym_linalg::Complex64;
use awesym_symbolic::{
    AffineTail, CompileOptions, CompiledFn, Evaluator, ExprGraph, MPoly, OptLevel, Ratio, SymbolSet,
};

/// Options for [`CompiledModel::build_with_options`].
///
/// `#[non_exhaustive]` so future knobs don't break callers: construct
/// with [`ModelOptions::order`] and chain `with_*` setters.
///
/// ```
/// use awesym_partition::{ModelOptions, OptLevel};
///
/// let opts = ModelOptions::order(3)
///     .with_symbolic_moments(2)
///     .with_opt_level(OptLevel::Full);
/// assert_eq!(opts.order, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ModelOptions {
    /// Approximation order `q` (the model matches `2q` moments).
    pub order: usize,
    /// Number of moments carried *symbolically*. Moments beyond this are
    /// extended by a first-order Taylor tail in the symbols around the
    /// nominal point — the paper's "partial Padé approximation, using
    /// derivatives", which trades far-from-nominal accuracy for a much
    /// cheaper symbolic computation. `None` keeps all `2q` symbolic.
    pub symbolic_moments: Option<usize>,
    /// Tape-optimization level for the compiled moment function
    /// (default [`OptLevel::Full`]).
    pub opt_level: OptLevel,
}

impl ModelOptions {
    /// Full symbolic model of the given order, full tape optimization.
    pub fn order(order: usize) -> Self {
        ModelOptions {
            order,
            symbolic_moments: None,
            opt_level: OptLevel::Full,
        }
    }

    /// Carries only the first `k` moments symbolically; the rest ride a
    /// first-order Taylor tail.
    pub fn with_symbolic_moments(mut self, k: usize) -> Self {
        self.symbolic_moments = Some(k);
        self
    }

    /// Sets the tape-optimization level.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }
}

/// Record of a numeric-health fallback taken while building a ROM: the
/// requested order was rejected (unstable poles, singular Hankel solve,
/// non-finite fit) and a lower order was served instead. Serialized into
/// responses so clients can tell a degraded answer from a healthy one.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Degradation {
    /// The order the model was built for.
    pub from_order: usize,
    /// The order actually served.
    pub to_order: usize,
    /// Why the requested order was rejected.
    pub reason: String,
}

/// First-order Taylor extension for the trailing moments.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct TaylorTail {
    /// Index of the first Taylor-extended moment.
    k_start: usize,
    /// Moment values at the nominal point.
    base: Vec<f64>,
    /// `jac[i][s] = ∂m_{k_start+i}/∂σ_s` at nominal.
    jac: Vec<Vec<f64>>,
    /// The nominal point.
    nominal: Vec<f64>,
}

/// The retained symbolic forms of a compiled model: `m_k = P_k / D^{k+1}`.
///
/// These are what the paper prints as eqs. (14)–(17): closed-form symbolic
/// expressions for the DC gain, the first-order pole, and the moment
/// numerators, all ratios of (multilinear, for first order) polynomials.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SymbolicForms {
    /// Determinant of `Ŷ_0`.
    pub d: MPoly,
    /// Moment numerators.
    pub p: Vec<MPoly>,
    /// Symbol names.
    pub symbols: SymbolSet,
}

impl SymbolicForms {
    /// DC gain `A₀(σ) = m₀ = P₀/D` as a rational form.
    pub fn dc_gain(&self) -> Ratio {
        Ratio::new(self.p[0].clone(), self.d.clone())
    }

    /// First-order dominant pole `p₁(σ) = m₀/m₁ = P₀·D / P₁`
    /// (negative-real for passive circuits).
    ///
    /// # Panics
    ///
    /// Panics when fewer than two moments were compiled.
    pub fn first_order_pole(&self) -> Ratio {
        assert!(self.p.len() >= 2, "need two moments for a first-order pole");
        Ratio::new(self.p[0].mul(&self.d), self.p[1].clone())
    }

    /// Closed-form denominator coefficients of the *second-order* Padé
    /// model, `1 + b₁s + b₂s²`, as rational symbolic forms:
    ///
    /// ```text
    /// b₁ = (P₀P₃ − P₁P₂) / (D·(P₁² − P₀P₂))
    /// b₂ = (P₂² − P₁P₃) / (D²·(P₁² − P₀P₂))
    /// ```
    ///
    /// The poles then follow from the quadratic formula — this is the
    /// "factoring of the symbolic forms" the paper performs for its
    /// second-order op-amp model. Evaluating these ratios at symbol values
    /// agrees exactly with the numeric Hankel solve.
    ///
    /// # Panics
    ///
    /// Panics when fewer than four moments were compiled.
    pub fn denominator_coeffs_order2(&self) -> (Ratio, Ratio) {
        assert!(
            self.p.len() >= 4,
            "need four moments for a second-order form"
        );
        let (p0, p1, p2, p3) = (&self.p[0], &self.p[1], &self.p[2], &self.p[3]);
        let disc = p1.mul(p1).sub(&p0.mul(p2));
        let b1 = Ratio::new(p0.mul(p3).sub(&p1.mul(p2)), self.d.mul(&disc));
        let b2 = Ratio::new(p2.mul(p2).sub(&p1.mul(p3)), self.d.mul(&self.d).mul(&disc));
        (b1, b2)
    }

    /// Renders moment `k` as `P_k / D^{k+1}` text.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn moment_text(&self, k: usize) -> String {
        format!(
            "m{} = ({}) / ({})^{}",
            k,
            self.p[k].display(&self.symbols),
            self.d.display(&self.symbols),
            k + 1
        )
    }
}

/// A compiled reduced-order symbolic model.
///
/// Built once (the expensive symbolic analysis); evaluated many times at
/// concrete symbol values — each evaluation replays a flat tape and runs a
/// tiny `q×q` Padé solve, which is the orders-of-magnitude-cheaper
/// "incremental cost" the paper reports. Serializable with serde for use
/// as a stored timing model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompiledModel {
    symbols: SymbolSet,
    nominal: Vec<f64>,
    fun: CompiledFn,
    order: usize,
    taylor: Option<TaylorTail>,
    forms: SymbolicForms,
}

impl CompiledModel {
    /// Builds a full symbolic model of order `q` for the given circuit,
    /// input source, output node and symbol bindings.
    ///
    /// # Errors
    ///
    /// Propagates assembly and symbolic-recursion failures; see
    /// [`SymbolicSystem::assemble`] and [`SymbolicMoments::compute`].
    pub fn build(
        circuit: &Circuit,
        input: ElementId,
        output: Node,
        bindings: &[SymbolBinding],
        order: usize,
    ) -> Result<Self, PartitionError> {
        Self::build_with_options(circuit, input, output, bindings, ModelOptions::order(order))
    }

    /// Builds with explicit [`ModelOptions`].
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::build`]; additionally
    /// [`PartitionError::BadBinding`] when `symbolic_moments` exceeds `2q`
    /// or is zero.
    pub fn build_with_options(
        circuit: &Circuit,
        input: ElementId,
        output: Node,
        bindings: &[SymbolBinding],
        opts: ModelOptions,
    ) -> Result<Self, PartitionError> {
        Self::build_probe(
            circuit,
            input,
            &awesym_mna::Probe::NodeVoltage(output),
            bindings,
            opts,
        )
    }

    /// Builds a model observing an arbitrary probe (branch current or
    /// differential voltage) — e.g. a compiled transfer-admittance model.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::build_with_options`].
    pub fn build_probe(
        circuit: &Circuit,
        input: ElementId,
        probe: &awesym_mna::Probe,
        bindings: &[SymbolBinding],
        opts: ModelOptions,
    ) -> Result<Self, PartitionError> {
        Ok(
            Self::build_multi(circuit, input, std::slice::from_ref(probe), bindings, opts)?
                .remove(0),
        )
    }

    /// Builds one model per probe while sharing the expensive work (the
    /// numeric partition reduction and the symbolic moment recursion) —
    /// the natural form for multi-output timing models such as the
    /// coupled-line direct/cross-talk pair.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::build_with_options`]; `probes` must be
    /// non-empty.
    pub fn build_multi(
        circuit: &Circuit,
        input: ElementId,
        probes: &[awesym_mna::Probe],
        bindings: &[SymbolBinding],
        opts: ModelOptions,
    ) -> Result<Vec<Self>, PartitionError> {
        let q = opts.order;
        let total = 2 * q;
        let k_sym = opts.symbolic_moments.unwrap_or(total);
        if k_sym == 0 || k_sym > total {
            return Err(PartitionError::BadBinding {
                what: format!("symbolic_moments must be in 1..={total}"),
            });
        }
        let sys = SymbolicSystem::assemble_multi(circuit, input, probes, bindings, k_sym)?;
        let sms = SymbolicMoments::compute_multi(&sys, k_sym)?;

        let nsym = sys.symbols().len();
        let mut models = Vec::with_capacity(sms.len());
        for (idx, sm) in sms.into_iter().enumerate() {
            // Compile P_0..P_{k_sym−1} and D into one tape; share D's powers.
            let mut g = ExprGraph::new(nsym);
            let d_id = g.poly(&sm.d);
            let mut outputs = Vec::with_capacity(k_sym);
            let mut d_pow = d_id;
            for pk in &sm.p {
                let p_id = g.poly(pk);
                outputs.push(g.div(p_id, d_pow));
                d_pow = g.mul(d_pow, d_id);
            }
            let fun = g.compile_with(&outputs, &CompileOptions::new().opt_level(opts.opt_level));

            let taylor = if k_sym < total {
                let nominal = sys.nominal().to_vec();
                let base_all = sys.reference_moments_for(idx, &nominal, total)?;
                let jac_all = sys.moment_jacobian_for(idx, &nominal, total)?;
                Some(TaylorTail {
                    k_start: k_sym,
                    base: base_all[k_sym..].to_vec(),
                    jac: jac_all[k_sym..].to_vec(),
                    nominal,
                })
            } else {
                None
            };

            models.push(CompiledModel {
                symbols: sys.symbols().clone(),
                nominal: sys.nominal().to_vec(),
                fun,
                order: q,
                taylor,
                forms: SymbolicForms {
                    d: sm.d,
                    p: sm.p,
                    symbols: sys.symbols().clone(),
                },
            });
        }
        Ok(models)
    }

    /// The symbols, in evaluation order.
    pub fn symbols(&self) -> &SymbolSet {
        &self.symbols
    }

    /// Nominal symbol values taken from the circuit.
    pub fn nominal(&self) -> &[f64] {
        &self.nominal
    }

    /// Approximation order `q`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of tape instructions (the compiled "reduced set of
    /// operations") after optimization.
    pub fn op_count(&self) -> usize {
        self.fun.op_count()
    }

    /// Number of tape instructions the raw lowering emitted, before the
    /// pass pipeline ran.
    pub fn raw_op_count(&self) -> usize {
        self.fun.raw_op_count()
    }

    /// The optimization level the tape was compiled at.
    pub fn opt_level(&self) -> OptLevel {
        self.fun.opt_level()
    }

    /// The retained symbolic forms.
    pub fn forms(&self) -> &SymbolicForms {
        &self.forms
    }

    /// Checks every numeric quantity baked into the model — nominal
    /// values, tape constants, and the Taylor tail — for NaN/Inf. A model
    /// deserialized from a corrupted artifact can carry non-finite
    /// coefficients (JSON renders NaN as `null`, which round-trips back to
    /// NaN) that would poison every evaluation; loaders call this to
    /// reject such models up front.
    ///
    /// # Errors
    ///
    /// Describes the first non-finite quantity found.
    pub fn validate_numerics(&self) -> Result<(), String> {
        let check = |vals: &[f64], what: &str| -> Result<(), String> {
            match vals.iter().position(|v| !v.is_finite()) {
                Some(i) => Err(format!("non-finite {what} at index {i}")),
                None => Ok(()),
            }
        };
        check(&self.nominal, "nominal value")?;
        for (i, op) in self.fun.tape().ops().iter().enumerate() {
            if let awesym_symbolic::TapeOp::Const(c) = op {
                if !c.is_finite() {
                    return Err(format!("non-finite tape constant at op {i}"));
                }
            }
        }
        if let Some(t) = &self.taylor {
            check(&t.base, "taylor base moment")?;
            check(&t.nominal, "taylor nominal value")?;
            for row in &t.jac {
                check(row, "taylor jacobian entry")?;
            }
        }
        Ok(())
    }

    /// An [`Evaluator`] over this model's tape (and Taylor tail, when the
    /// model is partial-Padé) — the preferred evaluation API. Each call
    /// builds a fresh evaluator with its own scratch; create one per
    /// worker thread and reuse it across points. Its outputs are the `2q`
    /// moments, identical to [`CompiledModel::eval_moments`].
    pub fn evaluator(&self) -> Evaluator<'_> {
        match &self.taylor {
            None => self.fun.evaluator(),
            Some(t) => {
                debug_assert_eq!(t.k_start, self.fun.n_outputs());
                self.fun.evaluator_with_tail(AffineTail::new(
                    t.base.clone(),
                    t.jac.clone(),
                    t.nominal.clone(),
                ))
            }
        }
    }

    /// Evaluates the `2q` moments at the given symbol values.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the symbol count.
    pub fn eval_moments(&self, vals: &[f64]) -> Vec<f64> {
        self.evaluator().eval(vals)
    }

    /// Scratch length for the deprecated
    /// [`CompiledModel::eval_moments_into`]; [`Evaluator`] owns its
    /// scratch.
    #[deprecated(since = "0.2.0", note = "use `evaluator()`; it owns its scratch")]
    pub fn scratch_len(&self) -> usize {
        self.fun.tape().n_regs()
    }

    /// Zero-allocation moment evaluation: `out` must hold `2q` values,
    /// `scratch` at least the deprecated [`CompiledModel::scratch_len`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched slice lengths.
    #[deprecated(
        since = "0.2.0",
        note = "use `evaluator()` and `Evaluator::eval_into(vals, out)`"
    )]
    pub fn eval_moments_into(&self, vals: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        let _ = scratch;
        self.evaluator().eval_into(vals, out);
    }

    /// Full reduced-order model at the given symbol values (the final AWE
    /// approximation: tape replay + `q×q` Padé). Falls back to lower
    /// orders / residue refits when the exact order is unstable, matching
    /// plain AWE's behavior.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Awe`] when no stable model exists at any
    /// order down to 1.
    pub fn rom(&self, vals: &[f64]) -> Result<Rom, PartitionError> {
        self.rom_from_moments(&self.eval_moments(vals))
    }

    /// As [`CompiledModel::rom`], but from already-evaluated moments —
    /// lets batch paths that need both moments and a ROM replay the tape
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Awe`] when no stable model exists at any
    /// order down to 1.
    ///
    /// # Panics
    ///
    /// Panics when `m.len() < 2 * self.order()`.
    pub fn rom_from_moments(&self, m: &[f64]) -> Result<Rom, PartitionError> {
        self.rom_degraded_from_moments(m).map(|(rom, _)| rom)
    }

    /// As [`CompiledModel::rom_from_moments`], but additionally reports
    /// *which* numeric-health fallback fired: when the exact-order Padé is
    /// rejected (unstable poles, a singular/near-singular Hankel solve, a
    /// non-finite fit) and a lower order q−1, q−2, … is served instead,
    /// the returned [`Degradation`] names the requested order, the served
    /// order, and the reason. A healthy exact-order fit returns `None`.
    ///
    /// Non-finite input moments cannot be repaired by dropping order and
    /// are a typed [`awesym_awe::AweError::NonFinite`] error.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Awe`] when no stable model exists at any
    /// order down to 1.
    ///
    /// # Panics
    ///
    /// Panics when `m.len() < 2 * self.order()`.
    pub fn rom_degraded_from_moments(
        &self,
        m: &[f64],
    ) -> Result<(Rom, Option<Degradation>), PartitionError> {
        assert!(m.len() >= 2 * self.order, "need 2q moments");
        if m.iter().any(|v| !v.is_finite()) {
            return Err(PartitionError::Awe(awesym_awe::AweError::NonFinite {
                what: "moments",
            }));
        }
        let mut last = None;
        // Why the highest-order attempt was rejected — the reason a client
        // sees when a lower order ends up being served.
        let mut reason: Option<String> = None;
        for q in (1..=self.order).rev() {
            match pade_rom(&m[..2 * q], q, true) {
                Ok(r) => {
                    if r.is_stable() {
                        let deg = (q < self.order).then(|| Degradation {
                            from_order: self.order,
                            to_order: q,
                            reason: reason
                                .clone()
                                .unwrap_or_else(|| "lower order preferred".into()),
                        });
                        return Ok((r, deg));
                    }
                    if let Some(f) = r.stabilized() {
                        let why = reason
                            .clone()
                            .unwrap_or_else(|| format!("order {q} fit has unstable poles"));
                        let to_order = f.order();
                        return Ok((
                            f,
                            Some(Degradation {
                                from_order: self.order,
                                to_order,
                                reason: format!("{why}; unstable poles discarded, residues refit"),
                            }),
                        ));
                    }
                    reason.get_or_insert_with(|| format!("order {q} fit has unstable poles"));
                }
                Err(e) => {
                    reason.get_or_insert_with(|| format!("order {q} fit failed: {e}"));
                    last = Some(e);
                }
            }
        }
        Err(PartitionError::Awe(
            last.unwrap_or(awesym_awe::AweError::ZeroResponse),
        ))
    }

    /// Reduced-order model at exactly the built order, without stability
    /// fallbacks (what a raw Padé produces).
    ///
    /// # Errors
    ///
    /// Propagates Padé failures.
    pub fn rom_exact_order(&self, vals: &[f64]) -> Result<Rom, PartitionError> {
        let m = self.eval_moments(vals);
        Ok(pade_rom(&m, self.order, true)?)
    }

    /// DC gain at the given symbol values.
    pub fn dc_gain(&self, vals: &[f64]) -> f64 {
        // m0 is the first tape output; avoid the full Padé.
        self.eval_moments(vals)[0]
    }

    /// Dominant pole at the given symbol values.
    ///
    /// # Errors
    ///
    /// Propagates ROM construction failures.
    pub fn dominant_pole(&self, vals: &[f64]) -> Result<Complex64, PartitionError> {
        let rom = self.rom(vals)?;
        rom.dominant_pole()
            .ok_or(PartitionError::Awe(awesym_awe::AweError::ZeroResponse))
    }

    /// Unity-gain frequency (Hz) at the given symbol values, when the gain
    /// crosses 1.
    ///
    /// # Errors
    ///
    /// Propagates ROM construction failures.
    pub fn unity_gain_freq(&self, vals: &[f64]) -> Result<Option<f64>, PartitionError> {
        let rom = self.rom(vals)?;
        Ok(rom
            .unity_gain_omega()
            .map(|w| w / (2.0 * std::f64::consts::PI)))
    }

    /// Phase margin (degrees) at the given symbol values.
    ///
    /// # Errors
    ///
    /// Propagates ROM construction failures.
    pub fn phase_margin(&self, vals: &[f64]) -> Result<Option<f64>, PartitionError> {
        Ok(self.rom(vals)?.phase_margin_deg())
    }

    /// Unit-step response sampled at `times`, at the given symbol values.
    ///
    /// # Errors
    ///
    /// Propagates ROM construction failures.
    pub fn step_response(&self, vals: &[f64], times: &[f64]) -> Result<Vec<f64>, PartitionError> {
        Ok(self.rom(vals)?.step_response_series(times))
    }

    /// Moment-based delay metric family (Elmore, ln2·Elmore, D2M,
    /// two-pole) at the given symbol values — the closed-form estimates a
    /// physical-design timer consumes, each far cheaper than the full
    /// pole/residue path.
    ///
    /// # Errors
    ///
    /// Propagates [`awesym_awe::delay_estimates`] failures.
    pub fn delay_estimates(
        &self,
        vals: &[f64],
    ) -> Result<awesym_awe::DelayEstimates, PartitionError> {
        Ok(awesym_awe::delay_estimates(&self.eval_moments(vals))?)
    }

    /// Validates the compiled model over a symbol-space range, as §2.3 of
    /// the paper recommends ("it may be necessary to validate the choice
    /// of symbolic elements over the range spanned by the symbolic
    /// elements… the cost of validation is low").
    ///
    /// Every corner and the center of the hyper-box
    /// `[nominal/span, nominal·span]^n` is checked against a full
    /// (non-partitioned) re-analysis of the circuit with the values
    /// substituted. Returns the largest relative moment error observed.
    ///
    /// For full-symbolic models this measures floating-point agreement
    /// (≈1e-12); for partial-Padé models it measures the Taylor tail's
    /// range of validity — the intended use.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures at any validation point.
    ///
    /// # Panics
    ///
    /// Panics when `bindings` does not match the model's symbols or
    /// `span <= 0`.
    pub fn validate_over_range(
        &self,
        circuit: &Circuit,
        input: ElementId,
        output: Node,
        bindings: &[SymbolBinding],
        span: f64,
    ) -> Result<f64, PartitionError> {
        assert!(span > 0.0, "span must be positive");
        assert_eq!(
            bindings.len(),
            self.symbols.len(),
            "binding/symbol mismatch"
        );
        let n = bindings.len();
        let nominal = self.nominal.clone();
        let mut worst = 0.0f64;
        // Corners (2^n) plus center.
        let total = 1usize << n;
        for corner in 0..=total {
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    if corner == total {
                        nominal[i]
                    } else if corner & (1 << i) != 0 {
                        nominal[i] * span
                    } else {
                        nominal[i] / span
                    }
                })
                .collect();
            let m_model = self.eval_moments(&vals);
            let subst = crate::binding::apply_symbol_values(circuit, bindings, &vals);
            let awe = awesym_awe::AweAnalysis::new(&subst, input, output)?;
            let m_ref = awe.moments(m_model.len())?.m;
            for (a, b) in m_model.iter().zip(m_ref.iter()) {
                let scale = b.abs().max(1e-300);
                worst = worst.max((a - b).abs() / scale);
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;

    fn fig1_model(order: usize) -> (awesym_circuit::generators::Workload, CompiledModel) {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        let model = CompiledModel::build(c, w.input, w.output, &bindings, order).unwrap();
        (w, model)
    }

    #[test]
    fn compiled_model_matches_full_awe_everywhere() {
        let (w, model) = fig1_model(2);
        let c = &w.circuit;
        for point in [[1e-9, 500.0], [4e-9, 3e3], [0.1e-9, 100.0]] {
            // Substitute values into a fresh circuit and run plain AWE.
            let mut c2 = c.clone();
            c2.set_value(c.find("C1").unwrap(), point[0]);
            c2.set_value(c.find("R2").unwrap(), point[1]);
            let awe = awesym_awe::AweAnalysis::new(&c2, w.input, w.output).unwrap();
            let rom_ref = awe.rom(2).unwrap();
            let rom_sym = model.rom_exact_order(&point).unwrap();
            let mut pref: Vec<f64> = rom_ref.poles().iter().map(|p| p.re).collect();
            let mut psym: Vec<f64> = rom_sym.poles().iter().map(|p| p.re).collect();
            pref.sort_by(f64::total_cmp);
            psym.sort_by(f64::total_cmp);
            for (a, b) in pref.iter().zip(psym.iter()) {
                assert!(
                    (a - b).abs() < 1e-6 * b.abs(),
                    "poles {a} vs {b} at {point:?}"
                );
            }
        }
    }

    #[test]
    fn moment_evaluation_paths_agree() {
        let (_, model) = fig1_model(2);
        let vals = [2e-9, 750.0];
        let m1 = model.eval_moments(&vals);
        let ev = model.evaluator();
        let mut out = vec![0.0; ev.n_outputs()];
        ev.eval_into(&vals, &mut out);
        assert_eq!(m1, out);
        assert_eq!(m1.len(), 4);
        // The deprecated wrapper still answers identically.
        #[allow(deprecated)]
        {
            let mut scratch = vec![0.0; model.scratch_len()];
            let mut legacy = vec![0.0; 4];
            model.eval_moments_into(&vals, &mut scratch, &mut legacy);
            assert_eq!(m1, legacy);
        }
        // Batch agrees with per-point, tail rows included.
        let points = vec![vec![2e-9, 750.0], vec![1e-9, 2e3], vec![3e-9, 500.0]];
        let mut batch = vec![0.0; points.len() * 4];
        ev.eval_batch(&points, &mut batch);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(&batch[i * 4..(i + 1) * 4], &model.eval_moments(p)[..]);
        }
    }

    #[test]
    fn rom_from_moments_matches_rom() {
        let (_, model) = fig1_model(2);
        let vals = [2e-9, 750.0];
        let m = model.eval_moments(&vals);
        let a = model.rom(&vals).unwrap();
        let b = model.rom_from_moments(&m).unwrap();
        assert_eq!(a.poles(), b.poles());
        // A healthy exact-order fit reports no degradation.
        let (c, deg) = model.rom_degraded_from_moments(&m).unwrap();
        assert_eq!(a.poles(), c.poles());
        assert!(deg.is_none(), "{deg:?}");
    }

    /// Moments of `H(s) = Σ k_i/(s − p_i)`: `m_j = −Σ k_i/p_i^{j+1}`.
    fn moments_of(poles: &[f64], residues: &[f64], count: usize) -> Vec<f64> {
        (0..count)
            .map(|j| {
                -poles
                    .iter()
                    .zip(residues)
                    .map(|(&p, &k)| k / p.powi(j as i32 + 1))
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn overfit_moments_degrade_to_lower_order() {
        // A 2-pole model fed moments of a single-pole response: the order-2
        // Hankel system is singular, so the ladder drops to order 1 and says
        // so.
        let (_, model) = fig1_model(2);
        let m = moments_of(&[-1e6], &[2e6], 4);
        let (rom, deg) = model.rom_degraded_from_moments(&m).unwrap();
        assert_eq!(rom.order(), 1);
        let deg = deg.unwrap();
        assert_eq!((deg.from_order, deg.to_order), (2, 1));
        assert!(deg.reason.contains("order 2"), "{}", deg.reason);
        assert!((rom.poles()[0].re + 1e6).abs() < 1.0, "{:?}", rom.poles());
    }

    #[test]
    fn unstable_moments_degrade_with_reason() {
        // Moments of a pole pair with one RHP pole: the exact-order fit
        // recovers the unstable pole, gets rejected, and the stabilized
        // refit is reported as a degradation instead of served silently.
        let (_, model) = fig1_model(2);
        let m = moments_of(&[-1.0, 2.0], &[1.0, 0.5], 4);
        let (rom, deg) = model.rom_degraded_from_moments(&m).unwrap();
        assert!(rom.is_stable());
        assert!(rom.poles().iter().all(|p| p.re.is_finite()));
        let deg = deg.unwrap();
        assert_eq!(deg.from_order, 2);
        assert!(deg.to_order < 2);
        assert!(deg.reason.contains("unstable"), "{}", deg.reason);
    }

    #[test]
    fn non_finite_moments_are_a_typed_error() {
        let (_, model) = fig1_model(2);
        let m = [1.0, f64::NAN, 1.0, -1.0];
        let e = model.rom_degraded_from_moments(&m).unwrap_err();
        assert!(
            matches!(
                e,
                PartitionError::Awe(awesym_awe::AweError::NonFinite { .. })
            ),
            "{e:?}"
        );
    }

    #[test]
    fn validate_numerics_accepts_healthy_and_rejects_corrupt() {
        let (_, model) = fig1_model(2);
        model.validate_numerics().unwrap();
        // Round-trip through JSON with a nominal value replaced by null
        // (how NaN survives serialization) — validation must catch it.
        let json = serde_json::to_string(&model).unwrap();
        let v0 = model.nominal()[0];
        let needle = serde_json::to_string(&v0).unwrap();
        let corrupt = json.replacen(&needle, "null", 1);
        assert_ne!(json, corrupt, "nominal value not found in payload");
        let bad: CompiledModel = serde_json::from_str(&corrupt).unwrap();
        let e = bad.validate_numerics().unwrap_err();
        assert!(e.contains("non-finite"), "{e}");
    }

    #[test]
    fn opt_level_none_agrees_with_full() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        let full = CompiledModel::build_with_options(
            c,
            w.input,
            w.output,
            &bindings,
            ModelOptions::order(2),
        )
        .unwrap();
        let raw = CompiledModel::build_with_options(
            c,
            w.input,
            w.output,
            &bindings,
            ModelOptions::order(2).with_opt_level(OptLevel::None),
        )
        .unwrap();
        assert_eq!(raw.opt_level(), OptLevel::None);
        assert_eq!(full.opt_level(), OptLevel::Full);
        assert_eq!(raw.op_count(), full.raw_op_count());
        assert!(full.op_count() < raw.op_count());
        for vals in [[1e-9, 500.0], [4e-9, 3e3], [0.1e-9, 100.0]] {
            let a = full.eval_moments(&vals);
            let b = raw.eval_moments(&vals);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1e-300), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn symbolic_forms_are_consistent() {
        let (_, model) = fig1_model(2);
        let forms = model.forms();
        let vals = [2e-9, 1234.0];
        let m = model.eval_moments(&vals);
        assert!((forms.dc_gain().eval(&vals) - m[0]).abs() < 1e-12 * m[0].abs());
        // First-order pole = m0/m1.
        let p1 = forms.first_order_pole().eval(&vals);
        assert!((p1 - m[0] / m[1]).abs() < 1e-9 * p1.abs());
        assert!(forms.moment_text(0).starts_with("m0"));
    }

    #[test]
    fn order2_symbolic_denominator_matches_hankel() {
        let (_, model) = fig1_model(2);
        let (b1, b2) = model.forms().denominator_coeffs_order2();
        for vals in [[1e-9, 2e3], [3e-9, 700.0], [0.5e-9, 5e3]] {
            let m = model.eval_moments(&vals);
            // Numeric Hankel solve on the same moments.
            let b = awesym_linalg::solve_hankel(&m, 2).unwrap();
            let (v1, v2) = (b1.eval(&vals), b2.eval(&vals));
            assert!((v1 - b[0]).abs() < 1e-6 * b[0].abs(), "{v1} vs {}", b[0]);
            assert!((v2 - b[1]).abs() < 1e-6 * b[1].abs(), "{v2} vs {}", b[1]);
            // And the quadratic roots equal the ROM poles.
            let (r1, r2) = awesym_linalg::quadratic_roots(1.0, v1, v2);
            let rom = model.rom_exact_order(&vals).unwrap();
            for truth in rom.poles() {
                let best = [(r1 - *truth).abs(), (r2 - *truth).abs()]
                    .into_iter()
                    .fold(f64::MAX, f64::min);
                assert!(best < 1e-6 * truth.abs(), "pole {truth} at {vals:?}");
            }
        }
    }

    #[test]
    fn taylor_tail_model_is_exact_at_nominal_and_close_nearby() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        let full = CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap();
        let partial = CompiledModel::build_with_options(
            c,
            w.input,
            w.output,
            &bindings,
            ModelOptions::order(2).with_symbolic_moments(2),
        )
        .unwrap();
        let nominal = [1e-9];
        let m_f = full.eval_moments(&nominal);
        let m_p = partial.eval_moments(&nominal);
        for (a, b) in m_f.iter().zip(m_p.iter()) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1e-30), "{a} vs {b}");
        }
        // 5% off nominal: tail is first-order accurate, so within ~1%.
        let near = [1.05e-9];
        let m_f = full.eval_moments(&near);
        let m_p = partial.eval_moments(&near);
        for (k, (a, b)) in m_f.iter().zip(m_p.iter()).enumerate() {
            assert!(
                (a - b).abs() < 2e-2 * a.abs(),
                "m{k}: full {a} vs partial {b}"
            );
        }
    }

    #[test]
    fn bad_options_rejected() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        for bad in [0usize, 5] {
            let r = CompiledModel::build_with_options(
                c,
                w.input,
                w.output,
                &bindings,
                ModelOptions::order(2).with_symbolic_moments(bad),
            );
            assert!(matches!(r, Err(PartitionError::BadBinding { .. })), "{bad}");
        }
    }

    #[test]
    fn range_validation_full_vs_partial() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        let full = CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap();
        let err_full = full
            .validate_over_range(c, w.input, w.output, &bindings, 4.0)
            .unwrap();
        assert!(
            err_full < 1e-9,
            "full model should validate exactly: {err_full}"
        );
        let partial = CompiledModel::build_with_options(
            c,
            w.input,
            w.output,
            &bindings,
            ModelOptions::order(2).with_symbolic_moments(2),
        )
        .unwrap();
        let err_tight = partial
            .validate_over_range(c, w.input, w.output, &bindings, 1.05)
            .unwrap();
        let err_wide = partial
            .validate_over_range(c, w.input, w.output, &bindings, 4.0)
            .unwrap();
        // The Taylor tail degrades with range — exactly what the paper's
        // validation step is meant to expose.
        assert!(err_tight < 0.02, "near nominal: {err_tight}");
        assert!(err_wide > err_tight * 5.0, "{err_wide} vs {err_tight}");
    }

    #[test]
    fn serde_round_trip_preserves_evaluation() {
        let (_, model) = fig1_model(2);
        let json = serde_json::to_string(&model).unwrap();
        let back: CompiledModel = serde_json::from_str(&json).unwrap();
        let vals = [2.5e-9, 800.0];
        assert_eq!(back.eval_moments(&vals), model.eval_moments(&vals));
        assert_eq!(back.op_count(), model.op_count());
    }

    #[test]
    fn metrics_run() {
        let (_, model) = fig1_model(2);
        let vals = [1e-9, 1e3];
        let dc = model.dc_gain(&vals);
        assert!((dc - 1.0).abs() < 1e-9);
        let p = model.dominant_pole(&vals).unwrap();
        assert!(p.re < 0.0);
        // A unity-DC-gain low-pass never exceeds |H| = 1, so if the search
        // does report a crossover it can only come from rounding at DC.
        if let Some(f) = model.unity_gain_freq(&vals).unwrap() {
            assert!(f > 0.0);
        }
        // Sample well past the dominant time constant: settles to H(0)=1.
        let tau = 1.0 / p.re.abs();
        let times: Vec<f64> = (0..10).map(|i| i as f64 * tau).collect();
        let resp = model.step_response(&vals, &times).unwrap();
        assert!(resp[9] > 0.9, "final {}", resp[9]);
    }
}
