//! Exact symbolic MNA analysis for small circuits.
//!
//! This is what classic symbolic simulators (ISAAC, Sspice, …) compute and
//! what the paper's eqs. (5)/(6) show for Fig. 1: the *exact* transfer
//! function `H(s, σ)` as a quotient of polynomials in the frequency
//! variable and the symbols. It is exponential in circuit size — the very
//! scaling problem AWEsymbolic avoids — and doubles here as ground truth
//! for the reduced models.

use crate::{PartitionError, SymbolBinding, SymbolicSystem};
use awesym_circuit::{Circuit, ElementId, Node};
use awesym_symbolic::{MPoly, SMat, Sym, SymbolSet};

/// Largest supported MNA dimension for the exact analysis.
pub const MAX_EXACT_DIM: usize = 11;

/// The exact symbolic transfer function `H(s, σ) = num/den`, where the
/// frequency variable `s` is the *last* symbol of [`ExactTransfer::symbols`].
#[derive(Debug, Clone)]
pub struct ExactTransfer {
    /// Symbols: the bound element symbols followed by `s`.
    pub symbols: SymbolSet,
    /// The frequency variable.
    pub s: Sym,
    /// Numerator polynomial in `(σ…, s)`.
    pub num: MPoly,
    /// Denominator polynomial in `(σ…, s)`.
    pub den: MPoly,
}

impl ExactTransfer {
    /// Evaluates `H` at symbol values `vals` (element symbols only) and a
    /// complex-free frequency point `s` (real axis; use the series/moment
    /// machinery for jω evaluation).
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the number of element symbols.
    pub fn eval(&self, vals: &[f64], s: f64) -> f64 {
        let mut v = vals.to_vec();
        assert_eq!(v.len() + 1, self.symbols.len(), "symbol value count");
        v.push(s);
        self.num.eval(&v) / self.den.eval(&v)
    }

    /// Evaluates `H(jω)` at the given element-symbol values by Horner on
    /// the `s`-coefficient polynomials.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the number of element symbols.
    pub fn eval_jw(&self, vals: &[f64], omega: f64) -> awesym_linalg::Complex64 {
        use awesym_linalg::Complex64;
        let s = Complex64::new(0.0, omega);
        let horner = |coeffs: &[MPoly]| {
            coeffs.iter().rev().fold(Complex64::ZERO, |acc, p| {
                acc * s + Complex64::from_re(p.eval(vals))
            })
        };
        let n = horner(&self.coeffs_in_s(&self.num));
        let d = horner(&self.coeffs_in_s(&self.den));
        n / d
    }

    /// Coefficients of `s^k` in a polynomial, as polynomials in the element
    /// symbols only (the trailing `s` exponent is stripped).
    pub fn coeffs_in_s(&self, poly: &MPoly) -> Vec<MPoly> {
        let s_idx = self.s.0 as usize;
        let nsym = self.symbols.len() - 1;
        let max_deg = poly.degree_in(self.s) as usize;
        let mut out = vec![MPoly::zero(nsym); max_deg + 1];
        for (exps, coeff) in poly.terms() {
            let k = exps[s_idx] as usize;
            let mut e = exps.to_vec();
            e.remove(s_idx);
            out[k] = out[k].add(&MPoly::monomial(nsym, &e, coeff));
        }
        out
    }

    /// Maclaurin moments `m_0 … m_{count−1}` of `H` about `s = 0` at the
    /// given element-symbol values (long division of the power series).
    ///
    /// # Panics
    ///
    /// Panics when the denominator's constant term vanishes at `vals`.
    pub fn moments(&self, vals: &[f64], count: usize) -> Vec<f64> {
        let num_c: Vec<f64> = self
            .coeffs_in_s(&self.num)
            .iter()
            .map(|p| p.eval(vals))
            .collect();
        let den_c: Vec<f64> = self
            .coeffs_in_s(&self.den)
            .iter()
            .map(|p| p.eval(vals))
            .collect();
        let d0 = den_c[0];
        assert!(d0 != 0.0, "denominator constant term vanishes");
        let mut m = vec![0.0; count];
        for k in 0..count {
            let mut v = num_c.get(k).copied().unwrap_or(0.0);
            for j in 1..=k {
                v -= den_c.get(j).copied().unwrap_or(0.0) * m[k - j];
            }
            m[k] = v / d0;
        }
        m
    }
}

impl std::fmt::Display for ExactTransfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Element symbols only (drop the trailing `s`).
        let mut syms = SymbolSet::new();
        for name in self.symbols.iter().take(self.symbols.len() - 1) {
            syms.intern(name);
        }
        writeln!(f, "H(s) = N(s)/D(s) with")?;
        writeln!(f, "  N(s):")?;
        for (k, p) in self.coeffs_in_s(&self.num).iter().enumerate() {
            if !p.is_zero() {
                writeln!(f, "    s^{k}: {}", p.display(&syms))?;
            }
        }
        writeln!(f, "  D(s):")?;
        for (k, p) in self.coeffs_in_s(&self.den).iter().enumerate() {
            if !p.is_zero() {
                writeln!(f, "    s^{k}: {}", p.display(&syms))?;
            }
        }
        Ok(())
    }
}

impl ExactTransfer {
    /// Fixes one element symbol to a numeric value, producing the mixed
    /// numeric-symbolic form — exactly the paper's step from eq. (5) to
    /// eq. (6). The symbol stays in the symbol table (its slot is inert).
    ///
    /// # Panics
    ///
    /// Panics when `sym` is the frequency variable.
    pub fn substitute(&self, sym: Sym, value: f64) -> ExactTransfer {
        assert_ne!(sym, self.s, "cannot substitute the frequency variable");
        ExactTransfer {
            symbols: self.symbols.clone(),
            s: self.s,
            num: self.num.substitute(sym, value),
            den: self.den.substitute(sym, value),
        }
    }
}

/// Computes the exact symbolic transfer function of a small circuit, with
/// the bound elements symbolic and everything else numeric.
///
/// # Errors
///
/// - [`PartitionError::TooManyPorts`] when the MNA dimension exceeds
///   [`MAX_EXACT_DIM`];
/// - binding and formulation errors as in
///   [`SymbolicSystem::assemble`].
pub fn exact_transfer(
    circuit: &Circuit,
    input: ElementId,
    output: Node,
    bindings: &[SymbolBinding],
) -> Result<ExactTransfer, PartitionError> {
    // Reuse the assembly path with *every* unknown promoted to a port, so
    // Y_0/Y_1 are exactly the full G/C with symbols excluded and the stamps
    // give the symbolic parts. The cleanest way: assemble with a dimension
    // check, then build (G + sC) symbolically.
    //
    // Assemble with 2 port-moment matrices (Y_0 = G_pp, Y_1 = C_pp when the
    // internal set is empty).
    // Validate bindings and formulation through the standard assembly path.
    let _probe = SymbolicSystem::assemble(circuit, input, output, bindings, 2)?;
    use awesym_mna::Mna;
    let skeleton = crate::assemble::neutralized_circuit(circuit, bindings);
    let mna = Mna::build(&skeleton)?;
    let dim = mna.dim();
    if dim > MAX_EXACT_DIM {
        return Err(PartitionError::TooManyPorts {
            ports: dim,
            max: MAX_EXACT_DIM,
        });
    }
    let mut symbols = SymbolSet::new();
    for b in bindings {
        symbols.intern(&b.name);
    }
    let s = symbols.intern("s");
    let nv = symbols.len();
    let s_idx = nv - 1;

    // A(s, σ) = G + s·C with symbol stamps.
    let mut a = SMat::zeros(dim, dim, nv);
    for col in 0..dim {
        for (row, v) in mna.g().col_iter(col) {
            a.add_to(row, col, &MPoly::constant(nv, v));
        }
        for (row, v) in mna.c().col_iter(col) {
            let mut e = vec![0u8; nv];
            e[s_idx] = 1;
            a.add_to(row, col, &MPoly::monomial(nv, &e, v));
        }
    }
    for (bi, b) in bindings.iter().enumerate() {
        let mut sg = Vec::new();
        let mut sc = Vec::new();
        for &eid in &b.elements {
            crate::assemble::stamp_symbol(&mna, circuit.element(eid), b.role, &mut sg, &mut sc);
        }
        for &(r, c, v) in &sg {
            let mut e = vec![0u8; nv];
            e[bi] = 1;
            a.add_to(r, c, &MPoly::monomial(nv, &e, v));
        }
        for &(r, c, v) in &sc {
            let mut e = vec![0u8; nv];
            e[bi] = 1;
            e[s_idx] = 1;
            a.add_to(r, c, &MPoly::monomial(nv, &e, v));
        }
    }

    let b_vec = mna.unit_source_vector(input)?;
    let l_vec = mna.output_selector(output);
    let b_poly: Vec<MPoly> = b_vec.iter().map(|&v| MPoly::constant(nv, v)).collect();
    let (n, d) = a.cramer_solve(&b_poly);
    if d.is_zero() {
        return Err(PartitionError::SingularSymbolicSystem);
    }
    let mut num = MPoly::zero(nv);
    for (p, &lv) in n.iter().zip(l_vec.iter()) {
        if lv != 0.0 {
            num = num.add(&p.scale(lv));
        }
    }
    Ok(ExactTransfer {
        symbols,
        s,
        // Coefficients are kept unpruned — see the unit-mismatch note in
        // `symmoments` — so structural (degree) queries on noisy forms
        // should prune a copy first.
        num,
        den: d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolBinding;
    use awesym_circuit::generators::fig1_rc;

    /// Reproduces the paper's eq. (5): the full symbolic transfer function
    /// of the Fig. 1 circuit with all four elements symbolic.
    #[test]
    fn fig1_full_symbolic_matches_eq5() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::conductance("g1", vec![c.find("R1").unwrap()]),
            SymbolBinding::conductance("g2", vec![c.find("R2").unwrap()]),
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::capacitance("c2", vec![c.find("C2").unwrap()]),
        ];
        let h = exact_transfer(c, w.input, w.output, &bindings).unwrap();
        // Compare against eq. (5) at sample points:
        // H = g1 g2 / (c1 c2 s² + (g2 c1 + g2 c2 + g1 c2) s + g1 g2)
        for (g1, g2, c1, c2, s) in [
            (1e-3, 2e-3, 1e-9, 3e-9, -1e5),
            (5e-4, 5e-4, 2e-9, 2e-9, -3e6),
            (1.0, 2.0, 0.5, 0.25, -0.5),
        ] {
            let truth = g1 * g2 / (c1 * c2 * s * s + (g2 * c1 + g2 * c2 + g1 * c2) * s + g1 * g2);
            let got = h.eval(&[g1, g2, c1, c2], s);
            assert!(
                (got - truth).abs() < 1e-9 * truth.abs(),
                "H({s}) = {got}, expected {truth}"
            );
        }
        // Structure: denominator quadratic in s, numerator constant in s,
        // every polynomial multilinear in each element symbol.
        assert_eq!(h.den.degree_in(h.s), 2);
        assert_eq!(h.num.degree_in(h.s), 0);
        for i in 0..4 {
            assert!(h.num.degree_in(Sym(i)) <= 1);
            assert!(h.den.degree_in(Sym(i)) <= 1);
        }
    }

    /// Eq. (6): mixed numeric-symbolic form with G1 fixed.
    #[test]
    fn fig1_mixed_symbolic_matches_eq6() {
        let g1 = 5.0;
        let w = fig1_rc(g1, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::conductance("g2", vec![c.find("R2").unwrap()]),
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::capacitance("c2", vec![c.find("C2").unwrap()]),
        ];
        let h = exact_transfer(c, w.input, w.output, &bindings).unwrap();
        for (g2, c1, c2, s) in [(2.0, 1.0, 3.0, -0.25), (0.5, 0.1, 0.2, -2.0)] {
            let truth =
                5.0 * g2 / (c1 * c2 * s * s + (g2 * c1 + g2 * c2 + 5.0 * c2) * s + 5.0 * g2);
            let got = h.eval(&[g2, c1, c2], s);
            assert!((got - truth).abs() < 1e-9 * truth.abs());
        }
    }

    #[test]
    fn moments_from_exact_match_partitioned() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        let h = exact_transfer(c, w.input, w.output, &bindings).unwrap();
        let sys = SymbolicSystem::assemble(c, w.input, w.output, &bindings, 4).unwrap();
        for c1 in [0.5e-9, 1e-9, 4e-9] {
            let m_exact = h.moments(&[c1], 4);
            let m_ref = sys.reference_moments(&[c1], 4).unwrap();
            for (a, b) in m_exact.iter().zip(m_ref.iter()) {
                assert!((a - b).abs() < 1e-9 * b.abs().max(1e-30), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn substitute_reproduces_eq6_from_eq5() {
        // Start from the fully symbolic eq. (5) and fix G1 = 5 — the
        // result must equal the independently derived eq. (6) circuit.
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::conductance("g1", vec![c.find("R1").unwrap()]),
            SymbolBinding::conductance("g2", vec![c.find("R2").unwrap()]),
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::capacitance("c2", vec![c.find("C2").unwrap()]),
        ];
        let h5 = exact_transfer(c, w.input, w.output, &bindings).unwrap();
        let h6 = h5.substitute(Sym(0), 5.0);
        for (g2, c1, c2, s) in [(2.0, 1.0, 3.0, -0.25), (0.5, 0.1, 0.2, -2.0)] {
            let truth =
                5.0 * g2 / (c1 * c2 * s * s + (g2 * c1 + g2 * c2 + 5.0 * c2) * s + 5.0 * g2);
            // g1's slot is inert; any value there is ignored.
            let got = h6.eval(&[99.0, g2, c1, c2], s);
            assert!((got - truth).abs() < 1e-9 * truth.abs());
        }
        // Display renders both numerator and denominator.
        let text = h5.to_string();
        assert!(text.contains("N(s)") && text.contains("D(s)"), "{text}");
        assert!(text.contains("g1"), "{text}");
    }

    #[test]
    fn eval_jw_matches_ac_analysis() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        let h = exact_transfer(c, w.input, w.output, &bindings).unwrap();
        let mna = awesym_mna::Mna::build(c).unwrap();
        for omega in [1e4, 1e6, 1e8] {
            let truth = mna.ac_transfer(w.input, w.output, &[omega]).unwrap()[0];
            let got = h.eval_jw(&[1e-9], omega);
            assert!((got - truth).abs() < 1e-9 * truth.abs(), "ω={omega}");
        }
    }

    #[test]
    fn dimension_guard() {
        let w = awesym_circuit::generators::rc_ladder(20, 10.0, 1e-12);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        assert!(matches!(
            exact_transfer(c, w.input, w.output, &bindings),
            Err(PartitionError::TooManyPorts { .. })
        ));
    }
}
