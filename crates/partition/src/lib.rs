//! Moment-level partitioning and compiled symbolic AWE — the paper's core
//! contribution.
//!
//! Given a circuit and a set of *symbolic elements* (chosen by hand or by
//! AWEsensitivity), this crate:
//!
//! 1. splits the MNA unknowns into a large *numeric* partition and a small
//!    *port* set touched by the symbols, the input, and the output
//!    ([`SymbolicSystem`]);
//! 2. reduces the numeric partition to its multiport admittance moment
//!    matrices `Y_0, Y_1, …` with one sparse factorization (the Schur
//!    complement of the internal block is exactly the paper's multiport
//!    Y-parameter representation);
//! 3. stencils the symbol stamps into the small global matrices
//!    `Ŷ_k = Y_k + Σ_e σ_e·S_{e,k}` and runs the moment recursion
//!    *symbolically*, producing each transfer-function moment as a
//!    polynomial quotient `m_k(σ) = P_k(σ)/D(σ)^{k+1}` with
//!    `D = det(Ŷ_0)`;
//! 4. compiles the symbolic moments into an evaluation tape
//!    ([`CompiledModel`]): evaluating the model at concrete symbol values
//!    replays the tape and runs a tiny `q×q` Padé solve — the compiled
//!    reduced set of operations whose incremental cost the paper measures
//!    at four to five orders of magnitude below a full AWE analysis.
//!
//! The crate also contains [`exact`], a full symbolic MNA solver for small
//! circuits that reproduces the paper's eq. (5)/(6) and serves as ground
//! truth (and as the "exact symbolic analysis does not scale" baseline).
//!
//! # Example
//!
//! ```
//! use awesym_circuit::generators::fig1_rc;
//! use awesym_partition::{CompiledModel, SymbolBinding};
//!
//! # fn main() -> Result<(), awesym_partition::PartitionError> {
//! let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
//! let c2 = w.circuit.find("C2").unwrap();
//! let model = CompiledModel::build(
//!     &w.circuit,
//!     w.input,
//!     w.output,
//!     &[SymbolBinding::capacitance("c2", vec![c2])],
//!     2,
//! )?;
//! // Evaluate the compiled model at a new value of C2.
//! let m = model.eval_moments(&[2e-9]);
//! assert!((m[0] - 1.0).abs() < 1e-9); // DC gain is 1 for any C2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod assemble;
mod binding;
mod error;
pub mod exact;
mod model;
mod symmoments;

pub use assemble::{SymbolicSystem, MAX_PORTS};
pub use awesym_symbolic::{AffineTail, Evaluator, OptLevel};
pub use binding::{apply_symbol_values, SymbolBinding, SymbolRole};
pub use error::PartitionError;
pub use model::{CompiledModel, Degradation, ModelOptions, SymbolicForms};
pub use symmoments::SymbolicMoments;
