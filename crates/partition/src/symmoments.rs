//! The symbolic moment recursion on the partitioned global system.

use crate::{PartitionError, SymbolicSystem};
use awesym_symbolic::{MPoly, SMat, SymbolSet};

/// Transfer-function moments in symbolic form:
/// `m_k(σ) = P_k(σ) / D(σ)^{k+1}` with `D = det(Ŷ_0)`.
///
/// This fraction-free representation keeps every intermediate a polynomial;
/// the recursion
///
/// ```text
/// N_k = adj(Ŷ_0) · Σ_{j=1..k} ( −Ŷ_j · N_{k−j} · D^{j−1} )
/// ```
///
/// follows directly from `Ŷ_0·V_k = −Σ_j Ŷ_j·V_{k−j}` with
/// `V_k = N_k / D^{k+1}`.
#[derive(Debug, Clone)]
pub struct SymbolicMoments {
    /// Determinant of the symbolic DC matrix `Ŷ_0`.
    pub d: MPoly,
    /// Numerators `P_k`; `m_k = P_k / d^{k+1}`.
    pub p: Vec<MPoly>,
    /// The symbols, in evaluation order.
    pub symbols: SymbolSet,
}

impl SymbolicMoments {
    /// Runs the symbolic recursion for `count` moments.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::SingularSymbolicSystem`] when `det(Ŷ_0)`
    /// is identically zero and propagates assembly errors.
    pub fn compute(sys: &SymbolicSystem, count: usize) -> Result<Self, PartitionError> {
        Ok(Self::compute_multi(sys, count)?.remove(0))
    }

    /// Runs the recursion once and projects the shared moment vectors onto
    /// *every* probe selector of the system, returning one symbolic moment
    /// set per output. The `N_k` recursion dominates the cost and does not
    /// depend on the selector, so observing additional outputs is nearly
    /// free.
    ///
    /// # Errors
    ///
    /// As [`SymbolicMoments::compute`].
    pub fn compute_multi(sys: &SymbolicSystem, count: usize) -> Result<Vec<Self>, PartitionError> {
        let nsym = sys.symbols().len();
        let np = sys.num_ports();
        let ys = sys.port_moments();
        assert!(
            ys.len() >= count,
            "system was assembled with too few port moments"
        );

        // Global symbolic matrices Ŷ_k.
        let mut yhat: Vec<SMat> = Vec::with_capacity(count);
        for (k, yk) in ys.iter().take(count).enumerate() {
            let mut m = SMat::zeros(np, np, nsym);
            for i in 0..np {
                for j in 0..np {
                    let v = yk[(i, j)];
                    if v != 0.0 {
                        m.set(i, j, MPoly::constant(nsym, v));
                    }
                }
            }
            let stamps = match k {
                0 => Some(sys.stamps_g()),
                1 => Some(sys.stamps_c()),
                _ => None,
            };
            if let Some(stamps) = stamps {
                for (s, entries) in stamps.iter().enumerate() {
                    for &(r, c, v) in entries {
                        let mono = MPoly::monomial(nsym, &unit_exp(nsym, s), v);
                        m.add_to(r, c, &mono);
                    }
                }
            }
            yhat.push(m);
        }

        // NOTE: no coefficient pruning here. Monomials carry different
        // physical units (a coefficient of c1·c2 multiplies values ~1e-18),
        // so magnitude-relative pruning is exactly the unreliable heuristic
        // the paper warns about — it silently corrupts evaluations at
        // extreme symbol values.
        let d = yhat[0].det();
        if d.is_zero() {
            return Err(PartitionError::SingularSymbolicSystem);
        }
        let adj = yhat[0].adjugate();

        // RHS and selector as polynomials.
        let j_vec: Vec<MPoly> = sys
            .rhs()
            .iter()
            .map(|&v| MPoly::constant(nsym, v))
            .collect();

        // N_0 = adj · J.
        let mut n: Vec<Vec<MPoly>> = Vec::with_capacity(count);
        n.push(adj.mul_vec(&j_vec));

        // Powers of D shared across the recursion.
        let mut d_pow: Vec<MPoly> = vec![MPoly::one(nsym)];
        for k in 1..count {
            // rhs_k = Σ_{j=1..k} −Ŷ_j · N_{k−j} · D^{j−1}
            let mut rhs = vec![MPoly::zero(nsym); np];
            for j in 1..=k {
                while d_pow.len() < j {
                    let next = d_pow.last().unwrap().mul(&d);
                    d_pow.push(next);
                }
                let term = yhat[j].mul_vec(&n[k - j]);
                for (acc, t) in rhs.iter_mut().zip(term.iter()) {
                    if !t.is_zero() {
                        *acc = acc.sub(&t.mul(&d_pow[j - 1]));
                    }
                }
            }
            n.push(adj.mul_vec(&rhs));
        }

        // Project the shared moment vectors onto every output selector.
        let out = sys
            .selectors()
            .iter()
            .map(|sel| {
                let p: Vec<MPoly> = n
                    .iter()
                    .map(|nk| {
                        let mut acc = MPoly::zero(nsym);
                        for (poly, &lv) in nk.iter().zip(sel.iter()) {
                            if lv != 0.0 {
                                acc = acc.add(&poly.scale(lv));
                            }
                        }
                        acc
                    })
                    .collect();
                SymbolicMoments {
                    d: d.clone(),
                    p,
                    symbols: sys.symbols().clone(),
                }
            })
            .collect();
        Ok(out)
    }

    /// Number of moments.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when no moments were computed.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Evaluates all moments at the given symbol values.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the symbol count.
    pub fn eval(&self, vals: &[f64]) -> Vec<f64> {
        let d = self.d.eval(vals);
        let mut dp = d;
        self.p
            .iter()
            .map(|pk| {
                let v = pk.eval(vals) / dp;
                dp *= d;
                v
            })
            .collect()
    }
}

fn unit_exp(nvars: usize, i: usize) -> Vec<u8> {
    let mut e = vec![0u8; nvars];
    e[i] = 1;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolBinding;
    use awesym_circuit::generators::fig1_rc;

    /// The critical correctness property: symbolic moments evaluated at any
    /// symbol values equal a full (non-partitioned) AWE moment run with the
    /// values substituted — the paper's "results are identical" claim.
    #[test]
    fn symbolic_moments_match_reference_at_many_points() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        let sys = SymbolicSystem::assemble(c, w.input, w.output, &bindings, 4).unwrap();
        let sm = SymbolicMoments::compute(&sys, 4).unwrap();
        for point in [[1e-9, 500.0], [5e-9, 2e3], [0.2e-9, 10e3], [3e-9, 50.0]] {
            let sym = sm.eval(&point);
            let reference = sys.reference_moments(&point, 4).unwrap();
            for (k, (a, b)) in sym.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * b.abs().max(1e-30),
                    "point {point:?} m{k}: symbolic {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn first_moments_multilinear_in_symbols() {
        // The paper: coefficients are multilinear in the symbols, and a
        // first-order form stays multilinear. D = det(Ŷ0) must have degree
        // ≤ 1 in each conductance/resistance symbol.
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::conductance("g1", vec![c.find("R1").unwrap()]),
            SymbolBinding::capacitance("c2", vec![c.find("C2").unwrap()]),
        ];
        let sys = SymbolicSystem::assemble(c, w.input, w.output, &bindings, 2).unwrap();
        let sm = SymbolicMoments::compute(&sys, 2).unwrap();
        for s in 0..2 {
            assert!(sm.d.degree_in(awesym_symbolic::Sym(s)) <= 1, "D degree");
            assert!(sm.p[0].degree_in(awesym_symbolic::Sym(s)) <= 1, "P0 degree");
        }
    }

    #[test]
    fn dc_gain_of_fig1_is_unity_for_any_symbols() {
        // Voltage divider at DC: H(0) = 1 regardless of element values.
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::resistance("r1", vec![c.find("R1").unwrap()])];
        let sys = SymbolicSystem::assemble(c, w.input, w.output, &bindings, 2).unwrap();
        let sm = SymbolicMoments::compute(&sys, 2).unwrap();
        for r in [10.0, 1e3, 1e6] {
            let m = sm.eval(&[r]);
            assert!((m[0] - 1.0).abs() < 1e-9, "r={r}: m0={}", m[0]);
        }
    }
}
