//! Builds the partitioned system: numeric-partition port moments plus
//! symbolic stamps on the small global matrix.

use crate::{PartitionError, SymbolBinding, SymbolRole};
use awesym_circuit::{Circuit, Element, ElementId, Node};
use awesym_linalg::Mat;
use awesym_mna::Mna;
use awesym_sparse::{Csc, LuOptions, SparseLu, Triplets};
use awesym_symbolic::SymbolSet;
use std::collections::{BTreeSet, HashMap};

/// Largest supported port count (bounded by the division-free symbolic
/// adjugate).
pub const MAX_PORTS: usize = 12;

/// One stamp entry `(row, col, coefficient)`: the matrix entry gains
/// `coefficient · σ`.
pub type Stamp = (usize, usize, f64);

/// The partitioned formulation of a circuit with symbolic elements.
///
/// Splits the MNA unknowns into the small *port* set (touched by symbol
/// stamps, the input, and the output) and the large numeric remainder; the
/// numeric partition is reduced to its multiport admittance moment
/// matrices `Y_k` (the Schur complement of the internal block, expanded in
/// `s`), after which the symbolic computation proceeds on matrices whose
/// dimension is proportional to the number of symbols — the paper's
/// moment-level partitioning.
#[derive(Debug)]
pub struct SymbolicSystem {
    symbols: SymbolSet,
    nominal: Vec<f64>,
    /// Port unknown indices (sorted, full-system numbering).
    ports: Vec<usize>,
    /// Numeric port moment matrices `Y_0 … Y_{K−1}` (ports × ports).
    y: Vec<Mat>,
    /// Per-symbol stamps into `Ŷ_0`, in *port* indices.
    stamps_g_port: Vec<Vec<Stamp>>,
    /// Per-symbol stamps into `Ŷ_1`, in *port* indices.
    stamps_c_port: Vec<Vec<Stamp>>,
    /// Per-symbol stamps in *full-system* indices (for reference solves).
    stamps_g_full: Vec<Vec<Stamp>>,
    stamps_c_full: Vec<Vec<Stamp>>,
    /// Port RHS for a unit input.
    j: Vec<f64>,
    /// Port output selectors, one per probe.
    ls: Vec<Vec<f64>>,
    /// Full numeric system (symbol contributions excluded).
    full_g: Csc<f64>,
    full_c: Csc<f64>,
    full_b: Vec<f64>,
    full_ls: Vec<Vec<f64>>,
}

impl SymbolicSystem {
    /// Assembles the partitioned system and computes `num_moments` port
    /// moment matrices.
    ///
    /// # Errors
    ///
    /// - [`PartitionError::BadBinding`] / [`PartitionError::RoleMismatch`]
    ///   for malformed symbol bindings;
    /// - [`PartitionError::TooManyPorts`] when the symbolic block would
    ///   exceed [`MAX_PORTS`];
    /// - [`PartitionError::SingularNumericPartition`] when an internal node
    ///   has no DC path independent of the ports;
    /// - [`PartitionError::Awe`] for formulation failures.
    pub fn assemble(
        circuit: &Circuit,
        input: ElementId,
        output: Node,
        bindings: &[SymbolBinding],
        num_moments: usize,
    ) -> Result<Self, PartitionError> {
        Self::assemble_probe(
            circuit,
            input,
            &awesym_mna::Probe::NodeVoltage(output),
            bindings,
            num_moments,
        )
    }

    /// As [`SymbolicSystem::assemble`], but observing an arbitrary probe
    /// (branch current or differential voltage) instead of a node voltage.
    ///
    /// # Errors
    ///
    /// As [`SymbolicSystem::assemble`], plus a bad-reference error for a
    /// branch probe without an explicit current.
    pub fn assemble_probe(
        circuit: &Circuit,
        input: ElementId,
        probe: &awesym_mna::Probe,
        bindings: &[SymbolBinding],
        num_moments: usize,
    ) -> Result<Self, PartitionError> {
        Self::assemble_multi(
            circuit,
            input,
            std::slice::from_ref(probe),
            bindings,
            num_moments,
        )
    }

    /// Assembles one partitioned system observing *several* probes at
    /// once: the expensive numeric reduction and the symbolic moment
    /// recursion are shared, and each probe gets its own output selector
    /// (used by the coupled-line workload for the direct and cross-talk
    /// outputs).
    ///
    /// # Errors
    ///
    /// As [`SymbolicSystem::assemble`]; `probes` must be non-empty.
    pub fn assemble_multi(
        circuit: &Circuit,
        input: ElementId,
        probes: &[awesym_mna::Probe],
        bindings: &[SymbolBinding],
        num_moments: usize,
    ) -> Result<Self, PartitionError> {
        if probes.is_empty() {
            return Err(PartitionError::BadBinding {
                what: "no probes given".into(),
            });
        }
        validate_bindings(circuit, bindings)?;
        let mut symbols = SymbolSet::new();
        let mut nominal = Vec::new();
        for b in bindings {
            symbols.intern(&b.name);
            nominal.push(b.nominal(circuit));
        }

        // Numeric skeleton: symbolic elements are neutralized so their
        // contribution enters only through the σ-stamps.
        let skeleton = neutralized_circuit(circuit, bindings);
        let mna = Mna::build(&skeleton)?;
        let full_b = mna.unit_source_vector(input)?;
        let full_ls: Vec<Vec<f64>> = probes
            .iter()
            .map(|p| mna.probe_selector(p))
            .collect::<Result<_, _>>()?;
        let dim = mna.dim();

        // Symbol stamps in full-system indices.
        let mut stamps_g_full: Vec<Vec<Stamp>> = Vec::new();
        let mut stamps_c_full: Vec<Vec<Stamp>> = Vec::new();
        for b in bindings {
            let mut sg = Vec::new();
            let mut sc = Vec::new();
            for &eid in &b.elements {
                let e = circuit.element(eid);
                stamp_symbol(&mna, e, b.role, &mut sg, &mut sc);
            }
            stamps_g_full.push(sg);
            stamps_c_full.push(sc);
        }

        // Port set: every index touched by a stamp, every terminal of a
        // symbolic element (a node whose only numeric connection may be the
        // neutralized element must not land in the internal block), the
        // RHS, and the output.
        let mut port_set: BTreeSet<usize> = BTreeSet::new();
        for s in stamps_g_full.iter().chain(stamps_c_full.iter()) {
            for &(r, c, _) in s {
                port_set.insert(r);
                port_set.insert(c);
            }
        }
        for b in bindings {
            for &eid in &b.elements {
                let e = circuit.element(eid);
                for node in [e.p, e.n] {
                    if let Some(i) = mna.node_index(node) {
                        port_set.insert(i);
                    }
                }
            }
        }
        for (i, &v) in full_b.iter().enumerate() {
            if v != 0.0 {
                port_set.insert(i);
            }
        }
        for full_l in &full_ls {
            for (i, &v) in full_l.iter().enumerate() {
                if v != 0.0 {
                    port_set.insert(i);
                }
            }
        }
        let ports: Vec<usize> = port_set.into_iter().collect();
        if ports.len() > MAX_PORTS {
            return Err(PartitionError::TooManyPorts {
                ports: ports.len(),
                max: MAX_PORTS,
            });
        }
        let port_of: HashMap<usize, usize> =
            ports.iter().enumerate().map(|(k, &i)| (i, k)).collect();

        // Map stamps into port indices.
        let map_stamps = |full: &Vec<Vec<Stamp>>| -> Vec<Vec<Stamp>> {
            full.iter()
                .map(|s| {
                    s.iter()
                        .map(|&(r, c, v)| (port_of[&r], port_of[&c], v))
                        .collect()
                })
                .collect()
        };
        let stamps_g_port = map_stamps(&stamps_g_full);
        let stamps_c_port = map_stamps(&stamps_c_full);

        // Reduce the numeric partition.
        let y = port_moment_matrices(&mna, &ports, &port_of, dim, num_moments)?;

        let j: Vec<f64> = ports.iter().map(|&i| full_b[i]).collect();
        let ls: Vec<Vec<f64>> = full_ls
            .iter()
            .map(|full_l| ports.iter().map(|&i| full_l[i]).collect())
            .collect();

        Ok(SymbolicSystem {
            symbols,
            nominal,
            ports,
            y,
            stamps_g_port,
            stamps_c_port,
            stamps_g_full,
            stamps_c_full,
            j,
            ls,
            full_g: mna.g().clone(),
            full_c: mna.c().clone(),
            full_b,
            full_ls,
        })
    }

    /// The symbol set (order matches evaluation vectors).
    pub fn symbols(&self) -> &SymbolSet {
        &self.symbols
    }

    /// Nominal symbol values from the circuit.
    pub fn nominal(&self) -> &[f64] {
        &self.nominal
    }

    /// Number of ports of the global symbolic system.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The numeric port moment matrices `Y_k`.
    pub fn port_moments(&self) -> &[Mat] {
        &self.y
    }

    /// Per-symbol `Ŷ_0` stamps in port indices.
    pub fn stamps_g(&self) -> &[Vec<Stamp>] {
        &self.stamps_g_port
    }

    /// Per-symbol `Ŷ_1` stamps in port indices.
    pub fn stamps_c(&self) -> &[Vec<Stamp>] {
        &self.stamps_c_port
    }

    /// Port RHS for the unit input.
    pub fn rhs(&self) -> &[f64] {
        &self.j
    }

    /// Port output selector of the first probe.
    pub fn selector(&self) -> &[f64] {
        &self.ls[0]
    }

    /// Port output selectors, one per probe.
    pub fn selectors(&self) -> &[Vec<f64>] {
        &self.ls
    }

    /// Number of probes observed.
    pub fn num_outputs(&self) -> usize {
        self.ls.len()
    }

    /// Assembles the *full* numeric `G`, `C` matrices with the symbols
    /// substituted at `vals` — the non-partitioned system a plain AWE run
    /// would use.
    ///
    /// # Panics
    ///
    /// Panics when `vals.len()` differs from the symbol count.
    pub fn full_system_at(&self, vals: &[f64]) -> (Csc<f64>, Csc<f64>) {
        assert_eq!(vals.len(), self.nominal.len(), "symbol value count");
        let dim = self.full_b.len();
        let mut g = Triplets::new(dim);
        let mut c = Triplets::new(dim);
        for col in 0..dim {
            for (r, v) in self.full_g.col_iter(col) {
                g.push(r, col, v);
            }
            for (r, v) in self.full_c.col_iter(col) {
                c.push(r, col, v);
            }
        }
        for (s, stamps) in self.stamps_g_full.iter().enumerate() {
            for &(r, cidx, v) in stamps {
                g.push(r, cidx, v * vals[s]);
            }
        }
        for (s, stamps) in self.stamps_c_full.iter().enumerate() {
            for &(r, cidx, v) in stamps {
                c.push(r, cidx, v * vals[s]);
            }
        }
        (g.to_csc(), c.to_csc())
    }

    /// Reference (non-partitioned) moment computation: substitutes the
    /// symbol values, factors the full `G`, and runs the plain AWE moment
    /// recursion. This is the per-datapoint cost that AWEsymbolic's
    /// compiled evaluation amortizes away.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Awe`] when the substituted system is
    /// singular.
    pub fn reference_moments(
        &self,
        vals: &[f64],
        count: usize,
    ) -> Result<Vec<f64>, PartitionError> {
        self.reference_moments_for(0, vals, count)
    }

    /// As [`SymbolicSystem::reference_moments`] for probe `output_idx`.
    ///
    /// # Errors
    ///
    /// As [`SymbolicSystem::reference_moments`].
    ///
    /// # Panics
    ///
    /// Panics when `output_idx` is out of range.
    pub fn reference_moments_for(
        &self,
        output_idx: usize,
        vals: &[f64],
        count: usize,
    ) -> Result<Vec<f64>, PartitionError> {
        let full_l = &self.full_ls[output_idx];
        let (g, c) = self.full_system_at(vals);
        let lu = SparseLu::factor(&g, LuOptions::default()).map_err(awesym_mna::MnaError::from)?;
        let mut m = Vec::with_capacity(count);
        let mut x = lu.solve(&self.full_b);
        for _ in 0..count {
            m.push(full_l.iter().zip(&x).map(|(a, b)| a * b).sum());
            let rhs: Vec<f64> = c.mul_vec(&x).iter().map(|v| -v).collect();
            x = lu.solve(&rhs);
        }
        Ok(m)
    }

    /// Moment sensitivities `∂m_k/∂σ_e` of the full system at `vals`, via
    /// the adjoint method (used by the partial-Padé Taylor tail).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Awe`] when the substituted system is
    /// singular.
    pub fn moment_jacobian(
        &self,
        vals: &[f64],
        count: usize,
    ) -> Result<Vec<Vec<f64>>, PartitionError> {
        self.moment_jacobian_for(0, vals, count)
    }

    /// As [`SymbolicSystem::moment_jacobian`] for probe `output_idx`.
    ///
    /// # Errors
    ///
    /// As [`SymbolicSystem::moment_jacobian`].
    ///
    /// # Panics
    ///
    /// Panics when `output_idx` is out of range.
    pub fn moment_jacobian_for(
        &self,
        output_idx: usize,
        vals: &[f64],
        count: usize,
    ) -> Result<Vec<Vec<f64>>, PartitionError> {
        let (g, c) = self.full_system_at(vals);
        let lu = SparseLu::factor(&g, LuOptions::default()).map_err(awesym_mna::MnaError::from)?;
        // Forward and adjoint moment vectors.
        let mut xs = Vec::with_capacity(count);
        let mut x = lu.solve(&self.full_b);
        for _ in 0..count {
            xs.push(x.clone());
            let rhs: Vec<f64> = c.mul_vec(&x).iter().map(|v| -v).collect();
            x = lu.solve(&rhs);
        }
        let mut ys = Vec::with_capacity(count);
        let mut yv = lu.solve_transposed(&self.full_ls[output_idx]);
        for _ in 0..count {
            ys.push(yv.clone());
            let rhs: Vec<f64> = c.mul_vec_transposed(&yv).iter().map(|v| -v).collect();
            yv = lu.solve_transposed(&rhs);
        }
        // ∂m_k/∂σ = −Σ_j Y_jᵀ (∂G/∂σ) X_{k−j} − Σ_j Y_jᵀ (∂C/∂σ) X_{k−1−j}.
        let nsym = self.nominal.len();
        let mut jac = vec![vec![0.0; nsym]; count];
        for (s, (g_stamps, c_stamps)) in self
            .stamps_g_full
            .iter()
            .zip(&self.stamps_c_full)
            .enumerate()
            .take(nsym)
        {
            for k in 0..count {
                let mut acc = 0.0;
                for j in 0..=k {
                    for &(r, cidx, v) in g_stamps {
                        acc -= ys[j][r] * v * xs[k - j][cidx];
                    }
                }
                for j in 0..k {
                    for &(r, cidx, v) in c_stamps {
                        acc -= ys[j][r] * v * xs[k - 1 - j][cidx];
                    }
                }
                jac[k][s] = acc;
            }
        }
        Ok(jac)
    }
}

fn validate_bindings(circuit: &Circuit, bindings: &[SymbolBinding]) -> Result<(), PartitionError> {
    if bindings.is_empty() {
        return Err(PartitionError::BadBinding {
            what: "no symbols given".into(),
        });
    }
    let mut seen_elem = BTreeSet::new();
    let mut seen_name = BTreeSet::new();
    for b in bindings {
        if !seen_name.insert(b.name.clone()) {
            return Err(PartitionError::BadBinding {
                what: format!("duplicate symbol name {}", b.name),
            });
        }
        if b.elements.is_empty() {
            return Err(PartitionError::BadBinding {
                what: format!("symbol {} binds no elements", b.name),
            });
        }
        for &eid in &b.elements {
            if eid.0 >= circuit.num_elements() {
                return Err(PartitionError::BadBinding {
                    what: format!("symbol {} binds missing element #{}", b.name, eid.0),
                });
            }
            if !seen_elem.insert(eid) {
                return Err(PartitionError::BadBinding {
                    what: format!("element #{} bound twice", eid.0),
                });
            }
            let e = circuit.element(eid);
            if e.kind != b.expected_kind() {
                return Err(PartitionError::RoleMismatch {
                    symbol: b.name.clone(),
                    element: e.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Rebuilds the circuit with each symbolic element neutralized so the
/// numeric stamps exclude it (its effect is restored by the σ-stamps):
/// admittance-form symbols are dropped (value that stamps to zero) and
/// impedance-form symbols become zero-valued inductors, which carry the
/// same value-independent branch pattern.
pub(crate) fn neutralized_circuit(circuit: &Circuit, bindings: &[SymbolBinding]) -> Circuit {
    let mut role_of: HashMap<ElementId, SymbolRole> = HashMap::new();
    for b in bindings {
        for &eid in &b.elements {
            role_of.insert(eid, b.role);
        }
    }
    let mut out = Circuit::new();
    for k in 1..circuit.num_nodes() {
        out.node(circuit.node_name(Node(k)));
    }
    for (i, e) in circuit.elements().iter().enumerate() {
        let id = ElementId(i);
        let replacement = match role_of.get(&id) {
            None => e.clone(),
            Some(SymbolRole::Conductance) => Element::resistor(&e.name, e.p, e.n, f64::INFINITY),
            Some(SymbolRole::Capacitance) => Element::capacitor(&e.name, e.p, e.n, 0.0),
            Some(SymbolRole::Transconductance) => Element::vccs(&e.name, e.p, e.n, e.cp, e.cn, 0.0),
            Some(SymbolRole::Resistance) | Some(SymbolRole::Inductance) => {
                Element::inductor(&e.name, e.p, e.n, 0.0)
            }
        };
        out.add(replacement);
    }
    out
}

/// Emits the σ-stamps of one element (coefficients of the symbol in
/// `G`/`C`).
pub(crate) fn stamp_symbol(
    mna: &Mna,
    e: &Element,
    role: SymbolRole,
    sg: &mut Vec<Stamp>,
    sc: &mut Vec<Stamp>,
) {
    let idx = |n: Node| mna.node_index(n);
    let four_pattern = |out: &mut Vec<Stamp>, p: Node, n: Node| {
        if let Some(a) = idx(p) {
            out.push((a, a, 1.0));
        }
        if let Some(b) = idx(n) {
            out.push((b, b, 1.0));
        }
        if let (Some(a), Some(b)) = (idx(p), idx(n)) {
            out.push((a, b, -1.0));
            out.push((b, a, -1.0));
        }
    };
    match role {
        SymbolRole::Conductance => four_pattern(sg, e.p, e.n),
        SymbolRole::Capacitance => four_pattern(sc, e.p, e.n),
        SymbolRole::Transconductance => {
            let (pi, ni, cpi, cni) = (idx(e.p), idx(e.n), idx(e.cp), idx(e.cn));
            if let Some(p) = pi {
                if let Some(cp) = cpi {
                    sg.push((p, cp, 1.0));
                }
                if let Some(cn) = cni {
                    sg.push((p, cn, -1.0));
                }
            }
            if let Some(n) = ni {
                if let Some(cp) = cpi {
                    sg.push((n, cp, -1.0));
                }
                if let Some(cn) = cni {
                    sg.push((n, cn, 1.0));
                }
            }
        }
        SymbolRole::Resistance => {
            let l = mna
                .branch_index(&e.name)
                .expect("neutralized impedance symbol has a branch");
            sg.push((l, l, -1.0));
        }
        SymbolRole::Inductance => {
            let l = mna
                .branch_index(&e.name)
                .expect("neutralized impedance symbol has a branch");
            sc.push((l, l, -1.0));
        }
    }
}

/// Computes the port moment matrices `Y_k` of the numeric partition via
/// the Maclaurin series of the Schur complement:
///
/// ```text
/// Y(s) = A_pp(s) − A_pi(s)·A_ii(s)⁻¹·A_ip(s),   A(s) = G + s·C
/// ```
///
/// One sparse LU of `G_ii` plus `2·P` back-substitution chains produce all
/// `K` coefficient matrices.
fn port_moment_matrices(
    mna: &Mna,
    ports: &[usize],
    port_of: &HashMap<usize, usize>,
    dim: usize,
    count: usize,
) -> Result<Vec<Mat>, PartitionError> {
    let np = ports.len();
    let internal: Vec<usize> = (0..dim).filter(|i| !port_of.contains_key(i)).collect();
    let int_of: HashMap<usize, usize> = internal.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let ni = internal.len();

    // Extract blocks.
    let mut gii = Triplets::new(ni);
    let mut cii = Triplets::new(ni);
    let mut gip: Vec<Vec<f64>> = vec![vec![0.0; ni]; np]; // columns, dense
    let mut cip: Vec<Vec<f64>> = vec![vec![0.0; ni]; np];
    let mut gpi: Vec<Vec<(usize, f64)>> = vec![Vec::new(); np]; // rows, sparse
    let mut cpi: Vec<Vec<(usize, f64)>> = vec![Vec::new(); np];
    let mut gpp = Mat::zeros(np, np);
    let mut cpp = Mat::zeros(np, np);
    let split = |m: &Csc<f64>,
                 ii: &mut Triplets<f64>,
                 ip: &mut [Vec<f64>],
                 pi: &mut [Vec<(usize, f64)>],
                 pp: &mut Mat| {
        for col in 0..dim {
            for (row, v) in m.col_iter(col) {
                match (int_of.get(&row), int_of.get(&col)) {
                    (Some(&ri), Some(&ci)) => ii.push(ri, ci, v),
                    (Some(&ri), None) => ip[port_of[&col]][ri] += v,
                    (None, Some(&ci)) => pi[port_of[&row]].push((ci, v)),
                    (None, None) => pp[(port_of[&row], port_of[&col])] += v,
                }
            }
        }
    };
    split(mna.g(), &mut gii, &mut gip, &mut gpi, &mut gpp);
    split(mna.c(), &mut cii, &mut cip, &mut cpi, &mut cpp);
    let gii = gii.to_csc();
    let cii = cii.to_csc();

    let mut y = vec![Mat::zeros(np, np); count];
    for (k, yk) in y.iter_mut().enumerate().take(count.min(2)) {
        for p in 0..np {
            for q in 0..np {
                yk[(p, q)] += if k == 0 { gpp[(p, q)] } else { cpp[(p, q)] };
            }
        }
    }
    if ni == 0 {
        return Ok(y);
    }
    let lu = SparseLu::factor(&gii, LuOptions::default())
        .map_err(|_| PartitionError::SingularNumericPartition)?;
    let dot_row =
        |row: &[(usize, f64)], z: &[f64]| -> f64 { row.iter().map(|&(i, v)| v * z[i]).sum() };
    for q in 0..np {
        for (b, u) in [(0usize, &gip[q]), (1usize, &cip[q])] {
            if u.iter().all(|&v| v == 0.0) {
                continue;
            }
            // z_j = M_j u, M_0 = G_ii⁻¹, M_j = −G_ii⁻¹ C_ii M_{j−1}.
            let mut z = lu.solve(u);
            for j in 0..count {
                // a = 0 term (G_pi):
                let k0 = j + b;
                if k0 < count {
                    for p in 0..np {
                        y[k0][(p, q)] -= dot_row(&gpi[p], &z);
                    }
                }
                // a = 1 term (C_pi):
                let k1 = j + b + 1;
                if k1 < count {
                    for p in 0..np {
                        y[k1][(p, q)] -= dot_row(&cpi[p], &z);
                    }
                }
                if j + 1 < count {
                    let rhs: Vec<f64> = cii.mul_vec(&z).iter().map(|v| -v).collect();
                    z = lu.solve(&rhs);
                } else {
                    break;
                }
            }
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;

    #[test]
    fn validation_catches_bad_bindings() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c = &w.circuit;
        let r1 = c.find("R1").unwrap();
        let c1 = c.find("C1").unwrap();
        // Empty set.
        assert!(matches!(
            SymbolicSystem::assemble(c, w.input, w.output, &[], 2),
            Err(PartitionError::BadBinding { .. })
        ));
        // Wrong kind.
        assert!(matches!(
            SymbolicSystem::assemble(
                c,
                w.input,
                w.output,
                &[SymbolBinding::capacitance("x", vec![r1])],
                2
            ),
            Err(PartitionError::RoleMismatch { .. })
        ));
        // Double binding.
        assert!(matches!(
            SymbolicSystem::assemble(
                c,
                w.input,
                w.output,
                &[
                    SymbolBinding::capacitance("a", vec![c1]),
                    SymbolBinding::capacitance("b", vec![c1])
                ],
                2
            ),
            Err(PartitionError::BadBinding { .. })
        ));
        // Duplicate names.
        assert!(matches!(
            SymbolicSystem::assemble(
                c,
                w.input,
                w.output,
                &[
                    SymbolBinding::capacitance("a", vec![c1]),
                    SymbolBinding::resistance("a", vec![r1])
                ],
                2
            ),
            Err(PartitionError::BadBinding { .. })
        ));
    }

    #[test]
    fn reference_moments_match_plain_awe() {
        // The reference solve on the reassembled full system must equal a
        // plain AWE run on the original circuit at nominal values.
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c2 = w.circuit.find("C2").unwrap();
        let sys = SymbolicSystem::assemble(
            &w.circuit,
            w.input,
            w.output,
            &[SymbolBinding::capacitance("c2", vec![c2])],
            4,
        )
        .unwrap();
        let m_ref = sys.reference_moments(&[3e-9], 4).unwrap();
        let mna = Mna::build(&w.circuit).unwrap();
        let eng = awesym_awe::MomentEngine::new(mna, w.input, w.output).unwrap();
        let m_awe = eng.compute(4).unwrap().m;
        for (a, b) in m_ref.iter().zip(m_awe.iter()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-30), "{a} vs {b}");
        }
    }

    #[test]
    fn port_set_is_small() {
        let w = fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
        let c2 = w.circuit.find("C2").unwrap();
        let sys = SymbolicSystem::assemble(
            &w.circuit,
            w.input,
            w.output,
            &[SymbolBinding::capacitance("c2", vec![c2])],
            2,
        )
        .unwrap();
        // Ports: node 2 (symbol + output) and the source branch row.
        assert_eq!(sys.num_ports(), 2);
        assert_eq!(sys.symbols().len(), 1);
        assert_eq!(sys.nominal(), &[1e-9]);
    }

    #[test]
    fn moment_jacobian_matches_finite_difference() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c2 = w.circuit.find("C2").unwrap();
        let r1 = w.circuit.find("R1").unwrap();
        let sys = SymbolicSystem::assemble(
            &w.circuit,
            w.input,
            w.output,
            &[
                SymbolBinding::capacitance("c2", vec![c2]),
                SymbolBinding::resistance("r1", vec![r1]),
            ],
            4,
        )
        .unwrap();
        let vals = [3e-9, 1.0e3];
        let jac = sys.moment_jacobian(&vals, 4).unwrap();
        for s in 0..2 {
            let h = vals[s] * 1e-6;
            let mut vp = vals;
            vp[s] += h;
            let mut vm = vals;
            vm[s] -= h;
            let mp = sys.reference_moments(&vp, 4).unwrap();
            let mm = sys.reference_moments(&vm, 4).unwrap();
            for k in 0..4 {
                let fd = (mp[k] - mm[k]) / (2.0 * h);
                let scale = fd
                    .abs()
                    .max(1e-9 * jac[k].iter().map(|v| v.abs()).fold(0.0, f64::max))
                    .max(1e-30);
                assert!(
                    (jac[k][s] - fd).abs() / scale < 1e-3,
                    "sym {s} m{k}: {} vs fd {fd}",
                    jac[k][s]
                );
            }
        }
    }
}
