//! Probe-based analyses: compiled driving-point admittance models and
//! differential-voltage observations.

use awesym_circuit::{Circuit, Element};
use awesym_mna::Probe;
use awesym_partition::{CompiledModel, ModelOptions, SymbolBinding};

/// Series RC driven by a V source: the source current is
/// `I(s) = V·sC/(1 + sRC)`, so the driving-point admittance moments are
/// `m0 = 0, m1 = C, m2 = −RC², …` (note the source current convention:
/// MNA's branch current flows out of the + terminal, giving a −1 factor).
#[test]
fn driving_point_admittance_model() {
    let mut c = Circuit::new();
    let n1 = c.node("1");
    let n2 = c.node("2");
    let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
    let r_id = c.add(Element::resistor("R1", n1, n2, 1e3));
    c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-9));
    let _ = r_id;
    let model = CompiledModel::build_probe(
        &c,
        v,
        &Probe::BranchCurrent("V1".into()),
        &[SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )],
        ModelOptions::order(2),
    )
    .unwrap();
    for cap in [0.5e-9, 1e-9, 4e-9] {
        let m = model.eval_moments(&[cap]);
        // Y(s) = sC/(1+sRC) ⇒ series −sC + s²RC² − …; branch current sign
        // is negative of the delivered current.
        assert!(m[0].abs() < 1e-15, "m0 {}", m[0]);
        assert!(
            (m[1].abs() - cap).abs() < 1e-12 * cap,
            "m1 {} for C={cap}",
            m[1]
        );
        let rc2 = 1e3 * cap * cap;
        assert!((m[2].abs() - rc2).abs() < 1e-9 * rc2, "m2 {}", m[2]);
    }
}

/// Differential probe across a floating element equals the difference of
/// two node-voltage models.
#[test]
fn differential_probe_consistency() {
    let w = awesym_circuit::generators::rc_ladder(8, 100.0, 1e-12);
    let c = &w.circuit;
    let n3 = c.find_node("n3").unwrap();
    let n5 = c.find_node("n5").unwrap();
    let bind = [SymbolBinding::resistance("r1", vec![c.find("R1").unwrap()])];
    let diff = CompiledModel::build_probe(
        c,
        w.input,
        &Probe::DifferentialVoltage(n3, n5),
        &bind,
        ModelOptions::order(2),
    )
    .unwrap();
    let va = CompiledModel::build_probe(
        c,
        w.input,
        &Probe::NodeVoltage(n3),
        &bind,
        ModelOptions::order(2),
    )
    .unwrap();
    let vb = CompiledModel::build_probe(
        c,
        w.input,
        &Probe::NodeVoltage(n5),
        &bind,
        ModelOptions::order(2),
    )
    .unwrap();
    for r in [50.0, 100.0, 400.0] {
        let md = diff.eval_moments(&[r]);
        let ma = va.eval_moments(&[r]);
        let mb = vb.eval_moments(&[r]);
        for k in 0..4 {
            let expect = ma[k] - mb[k];
            // The difference cancels (e.g. both DC gains are exactly 1), so
            // tolerate rounding noise at the scale of the operands.
            let scale = ma[k].abs().max(mb[k].abs()).max(1e-30);
            assert!(
                (md[k] - expect).abs() < 1e-9 * scale,
                "r={r} m{k}: {} vs {expect}",
                md[k]
            );
        }
    }
}

/// Probing a branchless element is rejected cleanly.
#[test]
fn branch_probe_requires_explicit_current() {
    let w = awesym_circuit::generators::fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
    let c = &w.circuit;
    let err = CompiledModel::build_probe(
        c,
        w.input,
        &Probe::BranchCurrent("R1".into()),
        &[SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )],
        ModelOptions::order(1),
    );
    assert!(err.is_err());
}
