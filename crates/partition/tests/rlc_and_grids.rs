//! The new interconnect topologies (RLC line, RC mesh, H-tree) through the
//! full AWEsymbolic stack: inductor branch symbols, complex pole pairs,
//! and mesh/tree port extraction.

use awesym_circuit::generators::{h_tree, rc_mesh, rlc_line};
use awesym_partition::{CompiledModel, SymbolBinding};

#[test]
fn rlc_line_has_ringing_and_matches_reference() {
    // Underdamped line: R small relative to sqrt(L/C).
    let w = rlc_line(20, 5.0, 10e-9, 2e-12, 25.0, 0.2e-12);
    let c = &w.circuit;
    let rdrv = c.find("rdrv").unwrap();
    let cload = c.find("cload").unwrap();
    let model = CompiledModel::build(
        c,
        w.input,
        w.output,
        &[
            SymbolBinding::resistance("rdrv", vec![rdrv]),
            SymbolBinding::capacitance("cload", vec![cload]),
        ],
        3,
    )
    .unwrap();
    // Identity with full AWE across the symbol plane.
    for (rs, cs) in [(1.0, 1.0), (0.4, 2.0), (3.0, 0.5)] {
        let vals = [25.0 * rs, 0.2e-12 * cs];
        let m_sym = model.eval_moments(&vals);
        let mut c2 = c.clone();
        c2.set_value(rdrv, vals[0]);
        c2.set_value(cload, vals[1]);
        let m_ref = awesym_awe::AweAnalysis::new(&c2, w.input, w.output)
            .unwrap()
            .moments(6)
            .unwrap()
            .m;
        for (k, (a, b)) in m_sym.iter().zip(m_ref.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * b.abs().max(1e-30),
                "rs={rs} cs={cs} m{k}: {a} vs {b}"
            );
        }
    }
    // Complex poles appear (ringing) when lightly damped.
    let rom = model.rom(&[25.0, 0.2e-12]).unwrap();
    assert!(rom.is_stable());
    assert!(
        rom.poles().iter().any(|p| p.im.abs() > 0.1 * p.re.abs()),
        "expected complex poles, got {:?}",
        rom.poles()
    );
    // Step response overshoots its final value.
    let tau = 1.0 / rom.dominant_pole().unwrap().re.abs();
    let peak = (0..400)
        .map(|i| rom.step_response(10.0 * tau * i as f64 / 400.0))
        .fold(f64::MIN, f64::max);
    assert!(
        peak > 1.02 * rom.dc_gain(),
        "peak {peak} vs dc {}",
        rom.dc_gain()
    );
}

#[test]
fn symbolic_inductance_binding() {
    // Bind the total-line inductance segments to one symbol and verify the
    // compiled model tracks a full re-analysis as L changes.
    let w = rlc_line(3, 2.0, 5e-9, 1e-12, 20.0, 0.1e-12);
    let c = &w.circuit;
    let l_ids: Vec<_> = (1..=3)
        .map(|i| c.find(&format!("tl{i}")).unwrap())
        .collect();
    let l_nom = c.element(l_ids[0]).value;
    let model = CompiledModel::build(
        c,
        w.input,
        w.output,
        &[SymbolBinding::inductance("lseg", l_ids.clone())],
        2,
    )
    .unwrap();
    for scale in [0.5, 1.0, 2.0] {
        let l = l_nom * scale;
        let m_sym = model.eval_moments(&[l]);
        let mut c2 = c.clone();
        for &id in &l_ids {
            c2.set_value(id, l);
        }
        let m_ref = awesym_awe::AweAnalysis::new(&c2, w.input, w.output)
            .unwrap()
            .moments(4)
            .unwrap()
            .m;
        for (k, (a, b)) in m_sym.iter().zip(m_ref.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-8 * b.abs().max(1e-30),
                "scale={scale} m{k}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn delay_metric_family_tracks_symbols() {
    // Compiled delay metrics respond to the driver-resistance symbol the
    // way a timer expects: every metric grows monotonically with Rdrv.
    let mesh = rc_mesh(4, 4, 20.0, 0.5e-12);
    let rdrv = mesh.circuit.find("rdrv").unwrap();
    let model = CompiledModel::build(
        &mesh.circuit,
        mesh.input,
        mesh.output,
        &[SymbolBinding::resistance("rdrv", vec![rdrv])],
        2,
    )
    .unwrap();
    let mut prev: Option<awesym_awe::DelayEstimates> = None;
    for r in [10.0, 50.0, 250.0] {
        let d = model.delay_estimates(&[r]).unwrap();
        assert!(d.elmore > 0.0 && d.d2m > 0.0);
        // From E[t²] ≥ E[t]² (so m₂ ≥ m₁²/2): D2M ≤ √2·ln2·Elmore.
        let bound = std::f64::consts::SQRT_2 * std::f64::consts::LN_2 * d.elmore;
        assert!(d.d2m <= bound + 1e-18, "d2m {} vs bound {bound}", d.d2m);
        if let Some(p) = prev {
            assert!(d.elmore > p.elmore);
            assert!(d.d2m > p.d2m);
            assert!(d.two_pole.unwrap() > p.two_pole.unwrap());
        }
        prev = Some(d);
    }
}

#[test]
fn mesh_and_tree_compile() {
    let mesh = rc_mesh(5, 5, 10.0, 0.2e-12);
    let rdrv = mesh.circuit.find("rdrv").unwrap();
    let model = CompiledModel::build(
        &mesh.circuit,
        mesh.input,
        mesh.output,
        &[SymbolBinding::resistance("rdrv", vec![rdrv])],
        2,
    )
    .unwrap();
    assert!((model.dc_gain(&[10.0]) - 1.0).abs() < 1e-9);
    // Elmore delay grows with the driver resistance.
    let d1 = model.rom(&[5.0]).unwrap().delay_50().unwrap();
    let d2 = model.rom(&[500.0]).unwrap().delay_50().unwrap();
    assert!(d2 > d1);

    let tree = h_tree(4, 50.0, 1e-12, 20e-15);
    let sink = tree.circuit.find("sink0").unwrap();
    let model = CompiledModel::build(
        &tree.circuit,
        tree.input,
        tree.output,
        &[SymbolBinding::capacitance("csink", vec![sink])],
        2,
    )
    .unwrap();
    let d_small = model.rom(&[5e-15]).unwrap().delay_50().unwrap();
    let d_big = model.rom(&[200e-15]).unwrap().delay_50().unwrap();
    assert!(d_big > d_small);
}
