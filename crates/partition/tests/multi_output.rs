//! Multi-output models: one assembly and one symbolic recursion shared by
//! several probes.

use awesym_circuit::generators::{coupled_lines, CoupledLineSpec};
use awesym_mna::Probe;
use awesym_partition::{CompiledModel, ModelOptions, SymbolBinding};

#[test]
fn multi_output_equals_separate_builds() {
    let spec = CoupledLineSpec {
        segments: 120,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let c = &lines.circuit;
    let bindings = [
        SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
        SymbolBinding::capacitance("cload", lines.cload.to_vec()),
    ];
    let probes = [
        Probe::NodeVoltage(lines.aggressor_out),
        Probe::NodeVoltage(lines.victim_out),
    ];
    let multi =
        CompiledModel::build_multi(c, lines.input, &probes, &bindings, ModelOptions::order(2))
            .unwrap();
    assert_eq!(multi.len(), 2);
    let sep_a = CompiledModel::build(c, lines.input, lines.aggressor_out, &bindings, 2).unwrap();
    let sep_v = CompiledModel::build(c, lines.input, lines.victim_out, &bindings, 2).unwrap();
    for vals in [[100.0, 0.5e-12], [40.0, 2e-12]] {
        let ma = multi[0].eval_moments(&vals);
        let mv = multi[1].eval_moments(&vals);
        let ra = sep_a.eval_moments(&vals);
        let rv = sep_v.eval_moments(&vals);
        for k in 0..4 {
            assert!(
                (ma[k] - ra[k]).abs() <= 1e-12 * ra[k].abs().max(1e-30),
                "agg m{k}"
            );
            assert!(
                (mv[k] - rv[k]).abs() <= 1e-12 * rv[k].abs().max(1e-30),
                "vic m{k}"
            );
        }
    }
}

#[test]
fn multi_output_with_taylor_tail() {
    let spec = CoupledLineSpec {
        segments: 60,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let c = &lines.circuit;
    let bindings = [SymbolBinding::resistance("rdrv", lines.rdrv.to_vec())];
    let probes = [
        Probe::NodeVoltage(lines.aggressor_out),
        Probe::NodeVoltage(lines.victim_out),
    ];
    let multi = CompiledModel::build_multi(
        c,
        lines.input,
        &probes,
        &bindings,
        ModelOptions::order(2).with_symbolic_moments(2),
    )
    .unwrap();
    // At nominal the Taylor tails are exact per output.
    let nominal = [spec.rdrv];
    let full =
        CompiledModel::build_multi(c, lines.input, &probes, &bindings, ModelOptions::order(2))
            .unwrap();
    for (partial, complete) in multi.iter().zip(full.iter()) {
        let mp = partial.eval_moments(&nominal);
        let mf = complete.eval_moments(&nominal);
        for (a, b) in mp.iter().zip(mf.iter()) {
            assert!((a - b).abs() < 1e-8 * b.abs().max(1e-30), "{a} vs {b}");
        }
    }
}

#[test]
fn empty_probe_list_rejected() {
    let spec = CoupledLineSpec {
        segments: 10,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let bindings = [SymbolBinding::resistance("rdrv", lines.rdrv.to_vec())];
    assert!(CompiledModel::build_multi(
        &lines.circuit,
        lines.input,
        &[],
        &bindings,
        ModelOptions::order(1)
    )
    .is_err());
}
