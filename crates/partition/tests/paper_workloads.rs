//! End-to-end checks of the two paper workloads: the linearized 741
//! (§3.1, frequency domain) and the 1000-segment coupled lines (§3.2,
//! time domain). The load-bearing claim is that the compiled symbolic
//! model reproduces a full numeric AWE analysis *identically* (to
//! floating-point accuracy) at any symbol values, at a fraction of the
//! per-evaluation cost.

use awesym_circuit::generators::{coupled_lines, opamp741, CoupledLineSpec};
use awesym_partition::{CompiledModel, SymbolBinding};

#[test]
fn opamp_compiled_model_matches_full_awe() {
    let amp = opamp741();
    let c = &amp.circuit;
    let bindings = [
        SymbolBinding::conductance("g_out_q14", vec![amp.ro_q14]),
        SymbolBinding::capacitance("c_comp", vec![amp.c_comp]),
    ];
    let model = CompiledModel::build(c, amp.input, amp.output, &bindings, 2).expect("build");
    assert_eq!(model.symbols().len(), 2);

    let g_nom = 1.0 / c.element(amp.ro_q14).value;
    let c_nom = c.element(amp.c_comp).value;
    // Sweep both symbols over a 10:1 range around nominal.
    for gs in [0.3, 1.0, 3.0] {
        for cs in [0.3, 1.0, 3.0] {
            let vals = [g_nom * gs, c_nom * cs];
            let m_sym = model.eval_moments(&vals);
            // Full AWE with the values substituted into the circuit.
            let mut c2 = c.clone();
            c2.set_value(amp.ro_q14, 1.0 / vals[0]);
            c2.set_value(amp.c_comp, vals[1]);
            let awe = awesym_awe::AweAnalysis::new(&c2, amp.input, amp.output).unwrap();
            let m_ref = awe.moments(4).unwrap().m;
            for (k, (a, b)) in m_sym.iter().zip(m_ref.iter()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6 * b.abs(),
                    "gs={gs} cs={cs} m{k}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn opamp_symbolic_forms_behave_physically() {
    let amp = opamp741();
    let c = &amp.circuit;
    let bindings = [
        SymbolBinding::conductance("g_out_q14", vec![amp.ro_q14]),
        SymbolBinding::capacitance("c_comp", vec![amp.c_comp]),
    ];
    let model = CompiledModel::build(c, amp.input, amp.output, &bindings, 2).expect("build");
    let g_nom = 1.0 / c.element(amp.ro_q14).value;
    let c_nom = c.element(amp.c_comp).value;

    // Miller compensation: dominant pole frequency ∝ 1/Ccomp.
    let p_small = model.dominant_pole(&[g_nom, 0.5 * c_nom]).unwrap().abs();
    let p_large = model.dominant_pole(&[g_nom, 2.0 * c_nom]).unwrap().abs();
    assert!(
        p_small > 2.0 * p_large,
        "dominant pole must move ~1/Ccomp: {p_small} vs {p_large}"
    );
    // Stability over the whole sweep (the paper notes the symbolic form is
    // stable for all values of the two symbols).
    for gs in [0.2, 1.0, 5.0] {
        for cs in [0.2, 1.0, 5.0] {
            let rom = model.rom(&[g_nom * gs, c_nom * cs]).unwrap();
            assert!(rom.is_stable(), "unstable at gs={gs}, cs={cs}");
        }
    }
}

#[test]
fn coupled_lines_crosstalk_model() {
    // Reduced segment count keeps the test quick; the bench harness runs
    // the full 1000-segment version.
    let spec = CoupledLineSpec {
        segments: 200,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let c = &lines.circuit;
    let bindings = [
        SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
        SymbolBinding::capacitance("cload", lines.cload.to_vec()),
    ];
    // Cross-talk output on the victim line, second order as in the paper.
    let model =
        CompiledModel::build(c, lines.input, lines.victim_out, &bindings, 2).expect("build");

    // Identity with full AWE at scattered symbol values.
    for (rs, cs) in [(0.5, 1.0), (1.0, 0.25), (2.5, 3.0)] {
        let vals = [spec.rdrv * rs, spec.cload * cs];
        let m_sym = model.eval_moments(&vals);
        let mut c2 = c.clone();
        for id in lines.rdrv {
            c2.set_value(id, vals[0]);
        }
        for id in lines.cload {
            c2.set_value(id, vals[1]);
        }
        let awe = awesym_awe::AweAnalysis::new(&c2, lines.input, lines.victim_out).unwrap();
        let m_ref = awe.moments(4).unwrap().m;
        for (k, (a, b)) in m_sym.iter().zip(m_ref.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * b.abs().max(1e-30),
                "rs={rs} cs={cs} m{k}: {a} vs {b}"
            );
        }
    }

    // Cross-talk shape: zero at DC (capacitive coupling only), non-zero
    // transient peak that grows with the coupling drive (larger Rdrv slows
    // the aggressor and reduces the peak).
    let m = model.eval_moments(&[spec.rdrv, spec.cload]);
    assert!(m[0].abs() < 1e-9, "victim DC level {}", m[0]);
    let rom = model.rom(&[spec.rdrv, spec.cload]).unwrap();
    let (_, peak_nom) = rom.step_peak().unwrap();
    assert!(peak_nom.abs() > 1e-4, "no crosstalk peak: {peak_nom}");
}

#[test]
fn coupled_lines_direct_transmission_first_order() {
    let spec = CoupledLineSpec {
        segments: 100,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let c = &lines.circuit;
    let bindings = [
        SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
        SymbolBinding::capacitance("cload", lines.cload.to_vec()),
    ];
    // First order suffices for direct transmission (paper §3.2).
    let model =
        CompiledModel::build(c, lines.input, lines.aggressor_out, &bindings, 1).expect("build");
    let vals = [spec.rdrv, spec.cload];
    assert!((model.dc_gain(&vals) - 1.0).abs() < 1e-9);
    // Elmore-style delay grows with both symbols.
    let d_nom = model.rom(&vals).unwrap().delay_50().unwrap();
    let d_big_r = model
        .rom(&[4.0 * spec.rdrv, spec.cload])
        .unwrap()
        .delay_50()
        .unwrap();
    let d_big_c = model
        .rom(&[spec.rdrv, 6.0 * spec.cload])
        .unwrap()
        .delay_50()
        .unwrap();
    assert!(d_big_r > d_nom, "{d_big_r} vs {d_nom}");
    assert!(d_big_c > d_nom, "{d_big_c} vs {d_nom}");
}
