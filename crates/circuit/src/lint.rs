//! Netlist sanity checks — catches the common formulation mistakes before
//! they surface as cryptic "singular matrix" failures downstream.

use crate::{Circuit, ElementKind, Node};
use std::collections::HashSet;
use std::fmt;

/// A problem found by [`lint`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintIssue {
    /// A node has no DC (resistive/source) path to ground: the MNA `G`
    /// matrix will be singular.
    FloatingNode {
        /// The offending node.
        node: Node,
        /// Its name.
        name: String,
    },
    /// An element value is non-positive where that is non-physical
    /// (R, C, L must be positive).
    NonPositiveValue {
        /// Element name.
        element: String,
        /// The stored value.
        value: f64,
    },
    /// A CCCS/CCVS references a control branch that does not exist or
    /// carries no explicit current.
    DanglingControl {
        /// Element name.
        element: String,
        /// The missing branch name.
        branch: String,
    },
    /// The circuit has no independent source to analyze.
    NoSource,
    /// A node connects to exactly one element terminal (dead end with no
    /// effect unless it is a source or probe point).
    DanglingNode {
        /// The node.
        node: Node,
        /// Its name.
        name: String,
    },
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::FloatingNode { name, .. } => {
                write!(
                    f,
                    "node '{name}' has no dc path to ground (G will be singular)"
                )
            }
            LintIssue::NonPositiveValue { element, value } => {
                write!(f, "element {element} has non-positive value {value}")
            }
            LintIssue::DanglingControl { element, branch } => {
                write!(
                    f,
                    "element {element} controls from missing branch '{branch}'"
                )
            }
            LintIssue::NoSource => write!(f, "circuit has no independent source"),
            LintIssue::DanglingNode { name, .. } => {
                write!(f, "node '{name}' connects to a single terminal")
            }
        }
    }
}

/// Checks a circuit for the problems that make analyses fail or lie.
///
/// Returns the issues found (empty = clean). This is a *heuristic* DC-path
/// check: it treats resistors, inductors, voltage-defined sources and
/// controlled-source output branches as DC-conducting, which matches the
/// MNA structure used by the analyses.
pub fn lint(circuit: &Circuit) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    let n = circuit.num_nodes();

    // Branch names that carry explicit currents.
    let branches: HashSet<&str> = circuit
        .elements()
        .iter()
        .filter(|e| e.needs_branch_current())
        .map(|e| e.name.as_str())
        .collect();

    let mut has_source = false;
    // Union-find over nodes through DC-conducting elements.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };

    let mut degree = vec![0usize; n];
    for e in circuit.elements() {
        match e.kind {
            ElementKind::Vsource | ElementKind::Isource => has_source = true,
            _ => {}
        }
        // Terminal degree (controlled-source sense terminals excluded —
        // they draw no current).
        degree[e.p.0] += 1;
        degree[e.n.0] += 1;
        // DC conduction.
        let conducts = matches!(
            e.kind,
            ElementKind::Resistor
                | ElementKind::Inductor
                | ElementKind::Vsource
                | ElementKind::Vcvs
                | ElementKind::Ccvs
        );
        if conducts {
            union(&mut parent, e.p.0, e.n.0);
        }
        // Value sanity for passives.
        if matches!(
            e.kind,
            ElementKind::Resistor | ElementKind::Capacitor | ElementKind::Inductor
        ) && e.value <= 0.0
        {
            issues.push(LintIssue::NonPositiveValue {
                element: e.name.clone(),
                value: e.value,
            });
        }
        // Control references.
        if matches!(e.kind, ElementKind::Cccs | ElementKind::Ccvs)
            && !branches.contains(e.ctrl_branch.as_str())
        {
            issues.push(LintIssue::DanglingControl {
                element: e.name.clone(),
                branch: e.ctrl_branch.clone(),
            });
        }
    }

    if !has_source {
        issues.push(LintIssue::NoSource);
    }

    let ground_root = find(&mut parent, 0);
    for (k, &deg) in degree.iter().enumerate().take(n).skip(1) {
        let node = Node(k);
        if find(&mut parent, k) != ground_root {
            issues.push(LintIssue::FloatingNode {
                node,
                name: circuit.node_name(node).to_string(),
            });
        } else if deg == 1 {
            issues.push(LintIssue::DanglingNode {
                node,
                name: circuit.node_name(node).to_string(),
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    #[test]
    fn clean_circuit_has_no_issues() {
        let w = crate::generators::rc_ladder(5, 10.0, 1e-12);
        assert!(lint(&w.circuit).is_empty());
    }

    #[test]
    fn opamp_is_clean() {
        let amp = crate::generators::opamp741();
        let issues = lint(&amp.circuit);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn cap_only_node_is_floating() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("iso");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-12));
        let issues = lint(&c);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::FloatingNode { name, .. } if name == "iso")));
    }

    #[test]
    fn bad_values_flagged() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, -5.0));
        let issues = lint(&c);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::NonPositiveValue { element, .. } if element == "R1")));
    }

    #[test]
    fn dangling_control_flagged() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::cccs("F1", n1, Circuit::GROUND, "Vmissing", 2.0));
        let issues = lint(&c);
        assert!(issues.iter().any(
            |i| matches!(i, LintIssue::DanglingControl { branch, .. } if branch == "Vmissing")
        ));
    }

    #[test]
    fn no_source_flagged() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        assert!(lint(&c).contains(&LintIssue::NoSource));
    }

    #[test]
    fn dangling_node_flagged() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let stub = c.node("stub");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R2", n1, stub, 1.0));
        let issues = lint(&c);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::DanglingNode { name, .. } if name == "stub")));
        // Display forms are non-empty.
        for i in &issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
