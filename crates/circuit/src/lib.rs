//! Circuit (netlist) representation and workload generators for AWEsymbolic.
//!
//! A [`Circuit`] is a flat list of linear elements over numbered nodes, with
//! node 0 as ground. Linearized devices (the paper analyzes *linearized*
//! circuits) are expressed with the classical small-signal primitives:
//! resistors, capacitors, inductors, independent sources, and the four
//! controlled sources.
//!
//! The crate also ships the paper's workloads as generators:
//!
//! - [`generators::fig1_rc`] — the two-node RC circuit of Fig. 1 whose exact
//!   symbolic transfer function is eq. (5)/(6);
//! - [`generators::rc_ladder`] / [`generators::rc_tree`] — interconnect
//!   stand-ins used by tests and benches;
//! - [`generators::coupled_lines`] — the Fig. 8 coupled-line timing workload
//!   (N-segment lumped RC lines with capacitive coupling, Thevenin drivers
//!   and capacitive loads);
//! - [`generators::opamp741`] — a structurally faithful linearized 741
//!   op-amp built from hybrid-π BJT models (see `DESIGN.md` §4 for the
//!   substitution rationale).
//!
//! # Example
//!
//! ```
//! use awesym_circuit::{Circuit, Element};
//!
//! let mut c = Circuit::new();
//! let n1 = c.node("in");
//! let n2 = c.node("out");
//! c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
//! c.add(Element::resistor("R1", n1, n2, 1e3));
//! c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-12));
//! assert_eq!(c.num_nodes(), 3); // ground + 2
//! ```

#![forbid(unsafe_code)]

mod element;
mod netlist;
mod parse;

pub mod generators;
pub mod lint;

pub use element::{Element, ElementId, ElementKind, Node};
pub use lint::{lint, LintIssue};
pub use netlist::Circuit;
pub use parse::{parse_spice, parse_value, ParseNetlistError};
