//! Circuit element primitives.

use std::fmt;

/// A circuit node. `Node(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub usize);

impl Node {
    /// True for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of an element within its [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub usize);

/// Discriminant of an [`Element`], used for filtering and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Resistor.
    Resistor,
    /// Capacitor.
    Capacitor,
    /// Inductor.
    Inductor,
    /// Independent voltage source.
    Vsource,
    /// Independent current source.
    Isource,
    /// Voltage-controlled current source (transconductance).
    Vccs,
    /// Voltage-controlled voltage source.
    Vcvs,
    /// Current-controlled current source.
    Cccs,
    /// Current-controlled voltage source.
    Ccvs,
}

impl ElementKind {
    /// True for capacitors and inductors (the paper's "energy storage
    /// elements").
    pub fn is_storage(self) -> bool {
        matches!(self, ElementKind::Capacitor | ElementKind::Inductor)
    }
}

/// A linear circuit element.
///
/// Current-controlled sources reference the *name* of the element whose
/// branch current controls them (a voltage source or inductor, which carry
/// explicit branch currents in MNA).
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Unique name, e.g. `"R1"`.
    pub name: String,
    /// Element kind and connection data.
    pub kind: ElementKind,
    /// Positive terminal.
    pub p: Node,
    /// Negative terminal.
    pub n: Node,
    /// Controlling positive terminal (VCCS/VCVS only).
    pub cp: Node,
    /// Controlling negative terminal (VCCS/VCVS only).
    pub cn: Node,
    /// Name of the branch element providing the controlling current
    /// (CCCS/CCVS only); empty otherwise.
    pub ctrl_branch: String,
    /// Element value: resistance, capacitance, inductance, source value,
    /// transconductance, gain, or transresistance depending on `kind`.
    pub value: f64,
}

impl Element {
    fn base(name: &str, kind: ElementKind, p: Node, n: Node, value: f64) -> Element {
        Element {
            name: name.to_string(),
            kind,
            p,
            n,
            cp: Node(0),
            cn: Node(0),
            ctrl_branch: String::new(),
            value,
        }
    }

    /// Resistor of `value` ohms between `p` and `n`.
    pub fn resistor(name: &str, p: Node, n: Node, value: f64) -> Element {
        Element::base(name, ElementKind::Resistor, p, n, value)
    }

    /// Capacitor of `value` farads between `p` and `n`.
    pub fn capacitor(name: &str, p: Node, n: Node, value: f64) -> Element {
        Element::base(name, ElementKind::Capacitor, p, n, value)
    }

    /// Inductor of `value` henries between `p` and `n`.
    pub fn inductor(name: &str, p: Node, n: Node, value: f64) -> Element {
        Element::base(name, ElementKind::Inductor, p, n, value)
    }

    /// Independent voltage source of `value` volts (`p` is the + terminal).
    pub fn vsource(name: &str, p: Node, n: Node, value: f64) -> Element {
        Element::base(name, ElementKind::Vsource, p, n, value)
    }

    /// Independent current source of `value` amperes flowing `p → n`
    /// through the source (i.e. it pushes current into node `n`).
    pub fn isource(name: &str, p: Node, n: Node, value: f64) -> Element {
        Element::base(name, ElementKind::Isource, p, n, value)
    }

    /// Voltage-controlled current source: a current `gm·(v(cp) − v(cn))`
    /// flows from `p` to `n` inside the source.
    pub fn vccs(name: &str, p: Node, n: Node, cp: Node, cn: Node, gm: f64) -> Element {
        let mut e = Element::base(name, ElementKind::Vccs, p, n, gm);
        e.cp = cp;
        e.cn = cn;
        e
    }

    /// Voltage-controlled voltage source: `v(p) − v(n) = gain·(v(cp) − v(cn))`.
    pub fn vcvs(name: &str, p: Node, n: Node, cp: Node, cn: Node, gain: f64) -> Element {
        let mut e = Element::base(name, ElementKind::Vcvs, p, n, gain);
        e.cp = cp;
        e.cn = cn;
        e
    }

    /// Current-controlled current source: a current `gain·i(ctrl)` flows
    /// from `p` to `n`, where `i(ctrl)` is the branch current of the named
    /// voltage source or inductor.
    pub fn cccs(name: &str, p: Node, n: Node, ctrl_branch: &str, gain: f64) -> Element {
        let mut e = Element::base(name, ElementKind::Cccs, p, n, gain);
        e.ctrl_branch = ctrl_branch.to_string();
        e
    }

    /// Current-controlled voltage source: `v(p) − v(n) = r·i(ctrl)`.
    pub fn ccvs(name: &str, p: Node, n: Node, ctrl_branch: &str, r: f64) -> Element {
        let mut e = Element::base(name, ElementKind::Ccvs, p, n, r);
        e.ctrl_branch = ctrl_branch.to_string();
        e
    }

    /// True when the element needs an explicit MNA branch current
    /// (voltage-defined elements).
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::Vsource | ElementKind::Inductor | ElementKind::Vcvs | ElementKind::Ccvs
        )
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ElementKind::Vccs | ElementKind::Vcvs => write!(
                f,
                "{} {} {} {} {} {:e}",
                self.name, self.p, self.n, self.cp, self.cn, self.value
            ),
            ElementKind::Cccs | ElementKind::Ccvs => write!(
                f,
                "{} {} {} {} {:e}",
                self.name, self.p, self.n, self.ctrl_branch, self.value
            ),
            _ => write!(f, "{} {} {} {:e}", self.name, self.p, self.n, self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let r = Element::resistor("R1", Node(1), Node(2), 50.0);
        assert_eq!(r.kind, ElementKind::Resistor);
        assert_eq!(r.value, 50.0);
        assert!(!r.needs_branch_current());

        let g = Element::vccs("G1", Node(1), Node(0), Node(2), Node(3), 1e-3);
        assert_eq!(g.cp, Node(2));
        assert_eq!(g.cn, Node(3));

        let fsrc = Element::cccs("F1", Node(1), Node(0), "V1", 2.0);
        assert_eq!(fsrc.ctrl_branch, "V1");
    }

    #[test]
    fn branch_current_elements() {
        assert!(Element::vsource("V", Node(1), Node(0), 1.0).needs_branch_current());
        assert!(Element::inductor("L", Node(1), Node(0), 1e-9).needs_branch_current());
        assert!(Element::vcvs("E", Node(1), Node(0), Node(2), Node(0), 2.0).needs_branch_current());
        assert!(Element::ccvs("H", Node(1), Node(0), "V1", 2.0).needs_branch_current());
        assert!(!Element::capacitor("C", Node(1), Node(0), 1e-12).needs_branch_current());
    }

    #[test]
    fn storage_kinds() {
        assert!(ElementKind::Capacitor.is_storage());
        assert!(ElementKind::Inductor.is_storage());
        assert!(!ElementKind::Resistor.is_storage());
    }

    #[test]
    fn display_round_trippable_shapes() {
        let r = Element::resistor("R1", Node(1), Node(2), 50.0);
        assert_eq!(r.to_string(), "R1 1 2 5e1");
        let g = Element::vccs("G1", Node(1), Node(0), Node(2), Node(3), 1e-3);
        assert_eq!(g.to_string(), "G1 1 0 2 3 1e-3");
    }

    #[test]
    fn ground_check() {
        assert!(Node(0).is_ground());
        assert!(!Node(1).is_ground());
    }
}
