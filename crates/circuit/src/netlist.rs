//! The [`Circuit`] container.

use crate::{Element, ElementId, ElementKind, Node};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A linear(ized) circuit: a set of named nodes and a list of elements.
///
/// Nodes are created on demand by [`Circuit::node`]; node `0` is ground and
/// always exists. Elements are appended with [`Circuit::add`] and retrieved
/// by [`ElementId`] or by name.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    elements: Vec<Element>,
    node_names: Vec<String>,
    by_name: HashMap<String, ElementId>,
    node_by_name: HashMap<String, Node>,
}

impl Circuit {
    /// The ground node.
    pub const GROUND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            elements: Vec::new(),
            node_names: vec!["0".to_string()],
            by_name: HashMap::new(),
            node_by_name: HashMap::new(),
        };
        c.node_by_name.insert("0".to_string(), Node(0));
        c.node_by_name.insert("gnd".to_string(), Node(0));
        c
    }

    /// Returns the node with the given name, creating it if needed.
    /// `"0"` and `"gnd"` (any case) are ground.
    pub fn node(&mut self, name: &str) -> Node {
        let key = name.to_ascii_lowercase();
        if let Some(&n) = self.node_by_name.get(&key) {
            return n;
        }
        let n = Node(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_by_name.insert(key, n);
        n
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> Node {
        let name = format!("_n{}", self.node_names.len());
        self.node(&name)
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics when the node does not belong to this circuit.
    pub fn node_name(&self, n: Node) -> &str {
        &self.node_names[n.0]
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        self.node_by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Appends an element and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when an element with the same name already exists or when the
    /// element references nodes that were not created through this circuit.
    pub fn add(&mut self, e: Element) -> ElementId {
        assert!(
            !self.by_name.contains_key(&e.name),
            "duplicate element name {}",
            e.name
        );
        for node in [e.p, e.n, e.cp, e.cn] {
            assert!(
                node.0 < self.num_nodes(),
                "element {} references unknown node",
                e.name
            );
        }
        let id = ElementId(self.elements.len());
        self.by_name.insert(e.name.clone(), id);
        self.elements.push(e);
        id
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The element with the given id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Mutable access to an element's value (for sweeps).
    pub fn set_value(&mut self, id: ElementId, value: f64) {
        self.elements[id.0].value = value;
    }

    /// Finds an element id by name.
    pub fn find(&self, name: &str) -> Option<ElementId> {
        self.by_name.get(name).copied()
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Number of energy-storage elements (capacitors and inductors).
    pub fn num_storage_elements(&self) -> usize {
        self.elements.iter().filter(|e| e.kind.is_storage()).count()
    }

    /// Ids of all independent sources.
    pub fn sources(&self) -> Vec<ElementId> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, ElementKind::Vsource | ElementKind::Isource))
            .map(|(i, _)| ElementId(i))
            .collect()
    }

    /// Serializes to a SPICE-like netlist accepted by
    /// [`crate::parse_spice`], using node *names* so a parse round trip
    /// preserves lookups.
    pub fn to_spice(&self) -> String {
        let mut out = String::from("* AWEsymbolic netlist\n");
        let name = |n: Node| self.node_name(n);
        for e in &self.elements {
            use crate::ElementKind::*;
            let _ = match e.kind {
                Vccs | Vcvs => writeln!(
                    out,
                    "{} {} {} {} {} {:e}",
                    e.name,
                    name(e.p),
                    name(e.n),
                    name(e.cp),
                    name(e.cn),
                    e.value
                ),
                Cccs | Ccvs => writeln!(
                    out,
                    "{} {} {} {} {:e}",
                    e.name,
                    name(e.p),
                    name(e.n),
                    e.ctrl_branch,
                    e.value
                ),
                _ => writeln!(out, "{} {} {} {:e}", e.name, name(e.p), name(e.n), e.value),
            };
        }
        out.push_str(".end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_deduplicate_case_insensitively() {
        let mut c = Circuit::new();
        let a = c.node("N1");
        let b = c.node("n1");
        assert_eq!(a, b);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("0"), Circuit::GROUND);
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut c = Circuit::new();
        let a = c.fresh_node();
        let b = c.fresh_node();
        assert_ne!(a, b);
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let id = c.add(Element::resistor("R1", n1, Circuit::GROUND, 10.0));
        assert_eq!(c.find("R1"), Some(id));
        assert_eq!(c.element(id).value, 10.0);
        c.set_value(id, 20.0);
        assert_eq!(c.element(id).value, 20.0);
        assert_eq!(c.find("R2"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_name_panics() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 2.0));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let mut c = Circuit::new();
        c.add(Element::resistor("R1", Node(5), Circuit::GROUND, 1.0));
    }

    #[test]
    fn statistics() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1.0));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1.0));
        c.add(Element::inductor("L1", n2, Circuit::GROUND, 1.0));
        assert_eq!(c.num_elements(), 4);
        assert_eq!(c.num_storage_elements(), 2);
        assert_eq!(c.sources().len(), 1);
    }

    #[test]
    fn spice_round_trip() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1e3));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-12));
        let text = c.to_spice();
        let c2 = crate::parse_spice(&text).unwrap();
        assert_eq!(c2.num_elements(), 3);
        assert_eq!(c2.element(c2.find("R1").unwrap()).value, 1e3);
    }
}
