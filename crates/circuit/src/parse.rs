//! A SPICE-subset netlist parser.
//!
//! Supported cards (first letter selects the element, case-insensitive):
//!
//! ```text
//! Rname n+ n- value          resistor
//! Cname n+ n- value          capacitor
//! Lname n+ n- value          inductor
//! Vname n+ n- value          independent voltage source
//! Iname n+ n- value          independent current source
//! Gname n+ n- nc+ nc- gm     VCCS
//! Ename n+ n- nc+ nc- gain   VCVS
//! Fname n+ n- vname gain     CCCS
//! Hname n+ n- vname r        CCVS
//! * comment, .end / . cards ignored
//! ```
//!
//! Values accept engineering suffixes `T G MEG K M U N P F` (SPICE
//! conventions: `M` is milli, `MEG` is mega; suffixes are case-insensitive
//! and may be followed by trailing unit letters, e.g. `1pF`).

use crate::{Circuit, Element};
use std::fmt;

/// Error from [`parse_spice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseNetlistError {}

/// Parses a numeric value with SPICE engineering suffixes.
///
/// # Examples
///
/// ```
/// use awesym_circuit::parse_value;
///
/// assert_eq!(parse_value("1k"), Some(1e3));
/// assert_eq!(parse_value("2.5meg"), Some(2.5e6));
/// assert_eq!(parse_value("10pF"), Some(10e-12));
/// assert_eq!(parse_value("3m"), Some(3e-3));
/// assert_eq!(parse_value("bogus"), None);
/// ```
pub fn parse_value(text: &str) -> Option<f64> {
    let t = text.trim().to_ascii_lowercase();
    // Split the longest numeric prefix.
    let split = t
        .char_indices()
        .find(|&(i, ch)| {
            !(ch.is_ascii_digit()
                || ch == '.'
                || ch == '+'
                || ch == '-'
                || (ch == 'e'
                    && t[..i].chars().any(|c| c.is_ascii_digit())
                    && t[i + 1..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')))
        })
        .map_or(t.len(), |(i, _)| i);
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = match suffix {
        "" => 1.0,
        s if s.starts_with("meg") => 1e6,
        s if s.starts_with('t') => 1e12,
        s if s.starts_with('g') => 1e9,
        s if s.starts_with('k') => 1e3,
        s if s.starts_with('m') => 1e-3,
        s if s.starts_with('u') => 1e-6,
        s if s.starts_with('n') => 1e-9,
        s if s.starts_with('p') => 1e-12,
        s if s.starts_with('f') => 1e-15,
        // Trailing unit letters with no scale, e.g. "2.2ohm" → only units
        // that do not begin with a scale letter are accepted.
        s if s.chars().all(|c| c.is_ascii_alphabetic()) && s.starts_with('o') => 1.0,
        s if s.chars().all(|c| c.is_ascii_alphabetic()) && s.starts_with('v') => 1.0,
        s if s.chars().all(|c| c.is_ascii_alphabetic()) && s.starts_with('a') => 1.0,
        s if s.chars().all(|c| c.is_ascii_alphabetic()) && s.starts_with('h') => 1.0,
        _ => return None,
    };
    Some(base * mult)
}

/// Parses a SPICE-subset netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line number for unknown
/// cards, bad arity, or unparseable values.
pub fn parse_spice(text: &str) -> Result<Circuit, ParseNetlistError> {
    let mut c = Circuit::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with('.') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let name = toks[0];
        let err = |message: String| ParseNetlistError {
            line: lineno,
            message,
        };
        let first = name
            .chars()
            .next()
            .ok_or_else(|| err("empty element name".into()))?
            .to_ascii_uppercase();
        let need = |n: usize| -> Result<(), ParseNetlistError> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(err(format!("expected {n} fields, found {}", toks.len())))
            }
        };
        let val = |s: &str| -> Result<f64, ParseNetlistError> {
            parse_value(s).ok_or_else(|| err(format!("bad value '{s}'")))
        };
        let e = match first {
            'R' | 'C' | 'L' | 'V' | 'I' => {
                need(4)?;
                let p = c.node(toks[1]);
                let n = c.node(toks[2]);
                let v = val(toks[3])?;
                match first {
                    'R' => Element::resistor(name, p, n, v),
                    'C' => Element::capacitor(name, p, n, v),
                    'L' => Element::inductor(name, p, n, v),
                    'V' => Element::vsource(name, p, n, v),
                    _ => Element::isource(name, p, n, v),
                }
            }
            'G' | 'E' => {
                need(6)?;
                let p = c.node(toks[1]);
                let n = c.node(toks[2]);
                let cp = c.node(toks[3]);
                let cn = c.node(toks[4]);
                let v = val(toks[5])?;
                if first == 'G' {
                    Element::vccs(name, p, n, cp, cn, v)
                } else {
                    Element::vcvs(name, p, n, cp, cn, v)
                }
            }
            'F' | 'H' => {
                need(5)?;
                let p = c.node(toks[1]);
                let n = c.node(toks[2]);
                let v = val(toks[4])?;
                if first == 'F' {
                    Element::cccs(name, p, n, toks[3], v)
                } else {
                    Element::ccvs(name, p, n, toks[3], v)
                }
            }
            other => return Err(err(format!("unknown element type '{other}'"))),
        };
        c.add(e);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementKind;

    #[test]
    fn values_with_suffixes() {
        assert_eq!(parse_value("100"), Some(100.0));
        assert_eq!(parse_value("1.5k"), Some(1500.0));
        assert_eq!(parse_value("1MEG"), Some(1e6));
        assert_eq!(parse_value("1m"), Some(1e-3));
        assert_eq!(parse_value("2u"), Some(2e-6));
        assert!((parse_value("3n").unwrap() - 3e-9).abs() < 1e-22);
        assert!((parse_value("4p").unwrap() - 4e-12).abs() < 1e-25);
        assert!((parse_value("5f").unwrap() - 5e-15).abs() < 1e-28);
        assert_eq!(parse_value("6G"), Some(6e9));
        assert_eq!(parse_value("7T"), Some(7e12));
        assert_eq!(parse_value("-2.5e-3"), Some(-2.5e-3));
        assert_eq!(parse_value("1e3"), Some(1000.0));
        assert_eq!(parse_value("1kohm"), Some(1000.0));
        assert_eq!(parse_value("10pF"), Some(10e-12));
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("k1"), None);
    }

    #[test]
    fn parse_small_netlist() {
        let text = "\
* demo
V1 in 0 1
R1 in out 1k
C1 out 0 1p
G1 out 0 in 0 2m
.end";
        let c = parse_spice(text).unwrap();
        assert_eq!(c.num_elements(), 4);
        let g = c.element(c.find("G1").unwrap());
        assert_eq!(g.kind, ElementKind::Vccs);
        assert_eq!(g.value, 2e-3);
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn parse_controlled_sources() {
        let text = "\
V1 1 0 1
E1 2 0 1 0 10
F1 3 0 V1 2
H1 4 0 V1 50
R1 2 0 1
R2 3 0 1
R3 4 0 1";
        let c = parse_spice(text).unwrap();
        assert_eq!(c.element(c.find("F1").unwrap()).ctrl_branch, "V1");
        assert_eq!(c.element(c.find("H1").unwrap()).value, 50.0);
        assert_eq!(c.element(c.find("E1").unwrap()).kind, ElementKind::Vcvs);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_spice("R1 1 0 1k\nXunknown 1 0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse_spice("R1 1 0").unwrap_err();
        assert!(e.message.contains("expected 4 fields"));

        let e = parse_spice("R1 1 0 abc").unwrap_err();
        assert!(e.message.contains("bad value"));
    }

    #[test]
    fn comments_and_directives_skipped() {
        let c = parse_spice("* hi\n.option foo\n\nR1 a b 1\n.end\n").unwrap();
        assert_eq!(c.num_elements(), 1);
    }
}
