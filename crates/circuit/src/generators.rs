//! Workload generators reproducing the paper's example circuits.

use crate::{Circuit, Element, ElementId, Node};

/// A generated circuit together with its driving source and observed node.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The circuit.
    pub circuit: Circuit,
    /// Id of the independent source that drives the analysis.
    pub input: ElementId,
    /// Node whose voltage is the observed output.
    pub output: Node,
}

/// The Fig. 1 sample RC circuit of the paper.
///
/// Topology: `vin —R1(=1/g1)— n1 —R2(=1/g2)— n2`, with `C1` at `n1` and
/// `C2` at `n2`; output is `v(n2)`. Its exact transfer function is the
/// paper's eq. (5):
///
/// ```text
/// H(s) = G1·G2 / (C1·C2·s² + (G2·C1 + G2·C2 + G1·C2)·s + G1·G2)
/// ```
///
/// # Example
///
/// ```
/// use awesym_circuit::generators::fig1_rc;
///
/// let w = fig1_rc(1e-3, 2e-3, 1e-9, 2e-9);
/// assert_eq!(w.circuit.num_elements(), 5);
/// ```
pub fn fig1_rc(g1: f64, g2: f64, c1: f64, c2: f64) -> Workload {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let n1 = c.node("1");
    let n2 = c.node("2");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    c.add(Element::resistor("R1", vin, n1, 1.0 / g1));
    c.add(Element::capacitor("C1", n1, Circuit::GROUND, c1));
    c.add(Element::resistor("R2", n1, n2, 1.0 / g2));
    c.add(Element::capacitor("C2", n2, Circuit::GROUND, c2));
    Workload {
        circuit: c,
        input,
        output: n2,
    }
}

/// A uniform RC ladder with `n` sections driven by a voltage source; the
/// output is the far-end node. A classic distributed-interconnect stand-in.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn rc_ladder(n: usize, r_per_seg: f64, c_per_seg: f64) -> Workload {
    assert!(n > 0, "ladder needs at least one section");
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let mut prev = vin;
    let mut last = prev;
    for i in 0..n {
        let node = c.node(&format!("n{}", i + 1));
        c.add(Element::resistor(
            &format!("R{}", i + 1),
            prev,
            node,
            r_per_seg,
        ));
        c.add(Element::capacitor(
            &format!("C{}", i + 1),
            node,
            Circuit::GROUND,
            c_per_seg,
        ));
        prev = node;
        last = node;
    }
    Workload {
        circuit: c,
        input,
        output: last,
    }
}

/// A balanced binary RC tree of the given depth (a physical-design
/// interconnect topology). Each branch contributes a series resistor and a
/// grounded capacitor; the output is the first leaf.
///
/// # Panics
///
/// Panics when `depth == 0`.
pub fn rc_tree(depth: usize, r_per_branch: f64, c_per_branch: f64) -> Workload {
    assert!(depth > 0, "tree needs depth >= 1");
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let root = c.node("root");
    c.add(Element::resistor("Rdrv", vin, root, r_per_branch));
    c.add(Element::capacitor(
        "Cdrv",
        root,
        Circuit::GROUND,
        c_per_branch,
    ));
    let mut frontier = vec![root];
    let mut counter = 0usize;
    let mut first_leaf = root;
    for level in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..2 {
                counter += 1;
                let node = c.node(&format!("t{counter}"));
                c.add(Element::resistor(
                    &format!("Rt{counter}"),
                    parent,
                    node,
                    r_per_branch,
                ));
                c.add(Element::capacitor(
                    &format!("Ct{counter}"),
                    node,
                    Circuit::GROUND,
                    c_per_branch,
                ));
                next.push(node);
            }
        }
        if level == depth - 1 {
            first_leaf = next[0];
        }
        frontier = next;
    }
    Workload {
        circuit: c,
        input,
        output: first_leaf,
    }
}

/// Parameters for the Fig. 8 coupled-line workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledLineSpec {
    /// Number of lumped segments per line (the paper uses 1000).
    pub segments: usize,
    /// Total line resistance, distributed uniformly over the segments.
    pub total_r: f64,
    /// Total line-to-ground capacitance per line.
    pub total_c: f64,
    /// Total line-to-line coupling capacitance.
    pub total_cc: f64,
    /// Thevenin driver resistance (the symbolic element `rdrv`).
    pub rdrv: f64,
    /// Load capacitance at each far end (the symbolic element `cload`).
    pub cload: f64,
}

impl Default for CoupledLineSpec {
    fn default() -> Self {
        // A plausible 10 mm global wire in an early-90s technology:
        // 200 Ω total, 2 pF ground capacitance, 1 pF coupling.
        CoupledLineSpec {
            segments: 1000,
            total_r: 200.0,
            total_c: 2e-12,
            total_cc: 1e-12,
            rdrv: 100.0,
            cload: 0.5e-12,
        }
    }
}

/// The two symmetric coupled RC lines of Fig. 8.
///
/// Line 1 (the aggressor) is driven by the voltage source through `rdrv1`;
/// line 2 (the victim) has its driver input grounded through `rdrv2`. Both
/// far ends carry load capacitors `cload1`/`cload2`. The returned
/// [`CoupledLines::aggressor_out`] and [`CoupledLines::victim_out`] nodes
/// give the direct-transmission and cross-talk observation points.
///
/// # Panics
///
/// Panics when `spec.segments == 0`.
pub fn coupled_lines(spec: &CoupledLineSpec) -> CoupledLines {
    assert!(spec.segments > 0, "need at least one segment");
    let n = spec.segments;
    let rs = spec.total_r / n as f64;
    let cs = spec.total_c / n as f64;
    let ccs = spec.total_cc / n as f64;
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let a0 = c.node("a0");
    let b0 = c.node("b0");
    let rdrv1 = c.add(Element::resistor("rdrv1", vin, a0, spec.rdrv));
    let rdrv2 = c.add(Element::resistor("rdrv2", Circuit::GROUND, b0, spec.rdrv));
    let mut pa = a0;
    let mut pb = b0;
    for i in 1..=n {
        let na = c.node(&format!("a{i}"));
        let nb = c.node(&format!("b{i}"));
        c.add(Element::resistor(&format!("ra{i}"), pa, na, rs));
        c.add(Element::resistor(&format!("rb{i}"), pb, nb, rs));
        c.add(Element::capacitor(
            &format!("ca{i}"),
            na,
            Circuit::GROUND,
            cs,
        ));
        c.add(Element::capacitor(
            &format!("cb{i}"),
            nb,
            Circuit::GROUND,
            cs,
        ));
        c.add(Element::capacitor(&format!("cc{i}"), na, nb, ccs));
        pa = na;
        pb = nb;
    }
    let cload1 = c.add(Element::capacitor(
        "cload1",
        pa,
        Circuit::GROUND,
        spec.cload,
    ));
    let cload2 = c.add(Element::capacitor(
        "cload2",
        pb,
        Circuit::GROUND,
        spec.cload,
    ));
    CoupledLines {
        circuit: c,
        input,
        aggressor_out: pa,
        victim_out: pb,
        rdrv: [rdrv1, rdrv2],
        cload: [cload1, cload2],
    }
}

/// Result of [`coupled_lines`].
#[derive(Debug, Clone)]
pub struct CoupledLines {
    /// The circuit.
    pub circuit: Circuit,
    /// Driving source on line 1.
    pub input: ElementId,
    /// Far end of the driven line (direct transmission output).
    pub aggressor_out: Node,
    /// Far end of the quiet line (cross-talk output).
    pub victim_out: Node,
    /// Driver resistors `[rdrv1, rdrv2]` — bind both to the symbol `rdrv`.
    pub rdrv: [ElementId; 2],
    /// Load capacitors `[cload1, cload2]` — bind both to the symbol `cload`.
    pub cload: [ElementId; 2],
}

/// Small-signal hybrid-π BJT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtSmallSignal {
    /// Transconductance (S).
    pub gm: f64,
    /// Base-emitter resistance (Ω).
    pub rpi: f64,
    /// Output resistance (Ω).
    pub ro: f64,
    /// Base spreading resistance (Ω).
    pub rb: f64,
    /// Base-emitter capacitance (F).
    pub cpi: f64,
    /// Base-collector capacitance (F).
    pub cmu: f64,
    /// Collector-substrate capacitance (F), 0 to omit.
    pub ccs: f64,
}

impl BjtSmallSignal {
    /// Parameters derived from collector bias current `ic` with typical 741
    /// process constants (β = 200, VA = 50 V, fT-class capacitances).
    pub fn at_current(ic: f64) -> Self {
        let vt = 0.02585;
        let beta = 200.0;
        let va = 50.0;
        let gm = ic / vt;
        BjtSmallSignal {
            gm,
            rpi: beta / gm,
            ro: va / ic,
            rb: 200.0,
            cpi: 10e-12 * (ic / 500e-6).max(0.05),
            cmu: 2e-12,
            ccs: 3e-12,
        }
    }

    /// Same bias point but without the substrate capacitance.
    pub fn without_ccs(mut self) -> Self {
        self.ccs = 0.0;
        self
    }
}

/// Stamps a hybrid-π BJT: `rb`, `rpi`, `gm` VCCS, `ro`, `cpi`, `cmu`, and
/// optionally `ccs`. Returns nothing; elements are named `<kind>_<name>`.
fn add_bjt(c: &mut Circuit, name: &str, b: Node, col: Node, e: Node, p: &BjtSmallSignal) {
    let bi = c.node(&format!("{name}_bi"));
    c.add(Element::resistor(&format!("rb_{name}"), b, bi, p.rb));
    c.add(Element::resistor(&format!("rpi_{name}"), bi, e, p.rpi));
    c.add(Element::vccs(&format!("gm_{name}"), col, e, bi, e, p.gm));
    c.add(Element::resistor(&format!("ro_{name}"), col, e, p.ro));
    c.add(Element::capacitor(&format!("cpi_{name}"), bi, e, p.cpi));
    c.add(Element::capacitor(&format!("cmu_{name}"), bi, col, p.cmu));
    if p.ccs > 0.0 {
        c.add(Element::capacitor(
            &format!("ccs_{name}"),
            col,
            Circuit::GROUND,
            p.ccs,
        ));
    }
}

/// Result of [`opamp741`].
#[derive(Debug, Clone)]
pub struct OpAmp741 {
    /// The linearized circuit.
    pub circuit: Circuit,
    /// Driving source at the non-inverting input.
    pub input: ElementId,
    /// Output node.
    pub output: Node,
    /// The compensation capacitor `c_comp` (the paper's symbol `Ccomp`).
    pub c_comp: ElementId,
    /// The output-transistor output resistance `ro_q14`
    /// (its conductance is the paper's symbol `g_out,Q14`).
    pub ro_q14: ElementId,
}

/// A structurally faithful linearized 741 operational amplifier (Fig. 3).
///
/// Every transistor of the classic schematic that carries signal or shapes
/// the bias impedances is present as a hybrid-π model; supplies are AC
/// ground. See `DESIGN.md` §4 for the substitution rationale. The element
/// and storage counts land in the paper's reported range (≈170 linear
/// elements, ≈62 energy-storage elements).
///
/// # Example
///
/// ```
/// use awesym_circuit::generators::opamp741;
///
/// let amp = opamp741();
/// assert!(amp.circuit.num_elements() > 150);
/// assert!(amp.circuit.num_storage_elements() > 55);
/// ```
pub fn opamp741() -> OpAmp741 {
    let mut c = Circuit::new();
    let gnd = Circuit::GROUND;

    // Bias currents (A) per stage, classic 741 values.
    let i_in = 9.5e-6; // input transistors
    let i_mid = 550e-6; // second stage
    let i_out = 1.0e-3; // output stage
    let i_bias = 19e-6; // bias chain

    let q_in = BjtSmallSignal::at_current(i_in);
    let q_mid = BjtSmallSignal::at_current(i_mid);
    let q_out = BjtSmallSignal::at_current(i_out);
    let q_bias = BjtSmallSignal::at_current(i_bias).without_ccs();

    // --- Input drive.
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, gnd, 1.0));
    let b1 = c.node("b1");
    let b2 = c.node("b2");
    c.add(Element::resistor("rs1", vin, b1, 1e3));
    c.add(Element::resistor("rs2", gnd, b2, 1e3));

    // --- Input stage: Q1/Q2 emitter followers into Q3/Q4 common base.
    let e1 = c.node("e1");
    let e2 = c.node("e2");
    let cq12 = c.node("cq12"); // Q1/Q2 collectors (bias rail)
    add_bjt(&mut c, "q1", b1, cq12, e1, &q_in);
    add_bjt(&mut c, "q2", b2, cq12, e2, &q_in);
    let nb1 = c.node("nb1"); // Q3/Q4 base bias node
    let m1 = c.node("m1"); // mirror input
    let o1 = c.node("o1"); // first-stage output
    add_bjt(&mut c, "q3", nb1, m1, e1, &q_in);
    add_bjt(&mut c, "q4", nb1, o1, e2, &q_in);

    // --- Active load mirror Q5/Q6 with helper Q7.
    let e5 = c.node("e5");
    let e6 = c.node("e6");
    let b56 = c.node("b56");
    add_bjt(&mut c, "q5", b56, m1, e5, &q_in);
    add_bjt(&mut c, "q6", b56, o1, e6, &q_in);
    // Q7 buffers the mirror input onto the shared base node b56 (its
    // emitter ties directly to b56, as in the real schematic).
    add_bjt(&mut c, "q7", m1, gnd, b56, &q_bias);
    c.add(Element::resistor("re5", e5, gnd, 1e3));
    c.add(Element::resistor("re6", e6, gnd, 1e3));
    c.add(Element::resistor("rb56", b56, gnd, 50e3));

    // --- Input-stage bias: Q8 diode at the Q1/Q2 collector rail,
    //     Q9 current source, Q10/Q11 Widlar chain biasing nb1.
    //     Q9's base is tied to the quiet bias reference (AC ground) —
    //     the DC common-mode loop is not part of the small-signal model,
    //     see DESIGN.md §4.
    let e8 = c.node("e8");
    add_bjt(&mut c, "q8", cq12, cq12, e8, &q_bias);
    c.add(Element::resistor("re8", e8, gnd, 1e3));
    add_bjt(&mut c, "q9", gnd, nb1, gnd, &q_bias);
    let e10 = c.node("e10");
    add_bjt(&mut c, "q10", nb1, nb1, e10, &q_bias);
    c.add(Element::resistor("re10", e10, gnd, 5e3));
    add_bjt(&mut c, "q11", nb1, gnd, gnd, &q_bias);

    // --- Second stage: Darlington Q16 → Q17, current-source load Q13B.
    let o2 = c.node("o2");
    let e16 = c.node("e16");
    add_bjt(
        &mut c,
        "q16",
        o1,
        gnd,
        e16,
        &BjtSmallSignal::at_current(16e-6),
    );
    c.add(Element::resistor("r9", e16, gnd, 50e3));
    let e17 = c.node("e17");
    add_bjt(&mut c, "q17", e16, o2, e17, &q_mid);
    c.add(Element::resistor("r8", e17, gnd, 100.0));
    // Q13B: current-source load; its collector is the *top* of the output
    // stage (Q14's base side), with the floating VBE multiplier between the
    // top node and Q17's collector.
    let o2t = c.node("o2t");
    add_bjt(
        &mut c,
        "q13b",
        gnd,
        o2t,
        gnd,
        &BjtSmallSignal::at_current(i_mid),
    );
    // Q12 pairs with Q13 in the real bias chain; diode-connected at ground
    // rail with its impedance visible from o2 through Q13's cmu.
    let e12n = c.node("e12n");
    add_bjt(&mut c, "q12", e12n, e12n, gnd, &q_bias);
    c.add(Element::resistor("re12", e12n, gnd, 40e3));

    // Miller compensation: the paper's symbol Ccomp.
    let c_comp = c.add(Element::capacitor("c_comp", o1, o2, 30e-12));

    // --- Output stage: floating VBE multiplier Q18/Q19 between o2t and o2,
    //     followers Q14 (from the top) and Q20 (from the bottom).
    let o2m = c.node("o2m"); // multiplier tap
    let e18 = c.node("e18");
    add_bjt(&mut c, "q18", o2m, o2t, e18, &q_bias);
    c.add(Element::resistor("re18", e18, o2, 100.0));
    add_bjt(&mut c, "q19", o2t, o2t, o2m, &q_bias);
    c.add(Element::resistor("r10", o2m, o2, 200.0));
    let out = c.node("out");
    // Q14: NPN follower; its ro is the paper's symbolic element g_out,Q14.
    let bi14 = c.node("q14_bi");
    c.add(Element::resistor("rb_q14", o2t, bi14, q_out.rb));
    c.add(Element::resistor("rpi_q14", bi14, out, q_out.rpi));
    c.add(Element::vccs("gm_q14", gnd, out, bi14, out, q_out.gm));
    let ro_q14 = c.add(Element::resistor("ro_q14", gnd, out, 75e3));
    c.add(Element::capacitor("cpi_q14", bi14, out, q_out.cpi));
    c.add(Element::capacitor("cmu_q14", bi14, gnd, q_out.cmu));
    // Q20: complementary follower from the multiplier bottom.
    add_bjt(&mut c, "q20", o2, gnd, out, &q_out);
    // Short-circuit protection devices Q15/Q21-Q24 contribute parasitics.
    let e15 = c.node("e15");
    add_bjt(&mut c, "q15", out, o2t, e15, &q_bias);
    c.add(Element::resistor("r6", e15, out, 27.0));
    // Q21 senses the load current across r6 (base-emitter ≈ 0 in normal
    // operation), collector at the second-stage output.
    add_bjt(&mut c, "q21", e15, o2, out, &q_bias);
    let e22 = c.node("e22");
    add_bjt(&mut c, "q22", o1, gnd, e22, &q_bias);
    c.add(Element::resistor("re22", e22, gnd, 10e3));
    // Q23: current-source load at the first-stage output (base on the
    // quiet bias rail so it does not close a shunt-feedback loop).
    add_bjt(&mut c, "q23", gnd, o1, gnd, &q_bias);
    add_bjt(&mut c, "q24", e22, e22, gnd, &q_bias);

    // --- Load.
    c.add(Element::resistor("rl", out, gnd, 2e3));
    c.add(Element::capacitor("cl", out, gnd, 100e-12));

    OpAmp741 {
        circuit: c,
        input,
        output: out,
        c_comp,
        ro_q14,
    }
}

/// A rectangular RC mesh (power-grid-like topology): `rows × cols` nodes,
/// horizontal and vertical resistors, a grounded capacitor at every node.
/// Driven at the top-left corner, observed at the bottom-right.
///
/// # Panics
///
/// Panics when `rows` or `cols` is zero.
pub fn rc_mesh(rows: usize, cols: usize, r_per_edge: f64, c_per_node: f64) -> Workload {
    assert!(rows > 0 && cols > 0, "mesh needs at least one node");
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let mut nodes = vec![vec![Circuit::GROUND; cols]; rows];
    for (i, row) in nodes.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = c.node(&format!("m{i}_{j}"));
        }
    }
    c.add(Element::resistor("rdrv", vin, nodes[0][0], r_per_edge));
    for i in 0..rows {
        for j in 0..cols {
            c.add(Element::capacitor(
                &format!("cm{i}_{j}"),
                nodes[i][j],
                Circuit::GROUND,
                c_per_node,
            ));
            if j + 1 < cols {
                c.add(Element::resistor(
                    &format!("rh{i}_{j}"),
                    nodes[i][j],
                    nodes[i][j + 1],
                    r_per_edge,
                ));
            }
            if i + 1 < rows {
                c.add(Element::resistor(
                    &format!("rv{i}_{j}"),
                    nodes[i][j],
                    nodes[i + 1][j],
                    r_per_edge,
                ));
            }
        }
    }
    Workload {
        circuit: c,
        input,
        output: nodes[rows - 1][cols - 1],
    }
}

/// A balanced H-tree clock distribution network of the given depth: each
/// level halves the wire length (R and C scale by ½), leaves carry sink
/// capacitors. Output is the first leaf.
///
/// # Panics
///
/// Panics when `levels == 0`.
pub fn h_tree(levels: usize, trunk_r: f64, trunk_c: f64, sink_c: f64) -> Workload {
    assert!(levels > 0, "tree needs at least one level");
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let mut frontier = vec![vin];
    let mut counter = 0usize;
    let mut first_leaf = vin;
    for level in 0..levels {
        let scale = 0.5f64.powi(level as i32);
        let (r, cc) = (trunk_r * scale, trunk_c * scale);
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &parent in &frontier {
            for _ in 0..2 {
                counter += 1;
                let mid = c.node(&format!("h{counter}m"));
                let end = c.node(&format!("h{counter}e"));
                // Π-model per branch: C/2 — R — C/2.
                c.add(Element::resistor(&format!("hr{counter}"), mid, end, r));
                c.add(Element::resistor(
                    &format!("hrs{counter}"),
                    parent,
                    mid,
                    r * 0.5,
                ));
                c.add(Element::capacitor(
                    &format!("hc{counter}a"),
                    mid,
                    Circuit::GROUND,
                    cc * 0.5,
                ));
                c.add(Element::capacitor(
                    &format!("hc{counter}b"),
                    end,
                    Circuit::GROUND,
                    cc * 0.5,
                ));
                next.push(end);
            }
        }
        if level == levels - 1 {
            first_leaf = next[0];
            for (k, &leaf) in next.iter().enumerate() {
                c.add(Element::capacitor(
                    &format!("sink{k}"),
                    leaf,
                    Circuit::GROUND,
                    sink_c,
                ));
            }
        }
        frontier = next;
    }
    Workload {
        circuit: c,
        input,
        output: first_leaf,
    }
}

/// One linearized logic stage for gate-chain timing: a Thevenin driver
/// resistor `Rdrv` (the switching transistor's linearized on-resistance)
/// into a lumped RC interconnect of `segments` sections (`r_wire`/`c_wire`
/// total), terminated by the receiving gate's input capacitance `Cload`.
/// The observed output is the receiver input node — the stage's 50 % delay
/// there is the quantity gate-level timing composes along a path.
///
/// The driver resistor is named `Rdrv` and the load capacitor `Cload` so
/// model builders can bind process-variation symbols to them by name.
///
/// # Panics
///
/// Panics when `segments == 0`.
pub fn gate_stage(rdrv: f64, segments: usize, r_wire: f64, c_wire: f64, cload: f64) -> Workload {
    assert!(segments > 0, "stage needs at least one wire segment");
    let n = segments;
    let (rs, cs) = (r_wire / n as f64, c_wire / n as f64);
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let first = c.node("drv");
    c.add(Element::resistor("Rdrv", vin, first, rdrv));
    let mut prev = first;
    for i in 1..=n {
        let node = c.node(&format!("w{i}"));
        c.add(Element::resistor(&format!("rw{i}"), prev, node, rs));
        c.add(Element::capacitor(
            &format!("cw{i}"),
            node,
            Circuit::GROUND,
            cs,
        ));
        prev = node;
    }
    c.add(Element::capacitor("Cload", prev, Circuit::GROUND, cload));
    Workload {
        circuit: c,
        input,
        output: prev,
    }
}

/// A lossy RLC transmission line (N lumped RLC segments): exercises the
/// inductor branch stamps and produces complex pole pairs / ringing.
///
/// # Panics
///
/// Panics when `segments == 0`.
pub fn rlc_line(
    segments: usize,
    total_r: f64,
    total_l: f64,
    total_c: f64,
    rdrv: f64,
    cload: f64,
) -> Workload {
    assert!(segments > 0, "line needs at least one segment");
    let n = segments;
    let (rs, ls, cs) = (total_r / n as f64, total_l / n as f64, total_c / n as f64);
    let mut c = Circuit::new();
    let vin = c.node("in");
    let input = c.add(Element::vsource("vin", vin, Circuit::GROUND, 1.0));
    let first = c.node("t0");
    c.add(Element::resistor("rdrv", vin, first, rdrv));
    let mut prev = first;
    for i in 1..=n {
        let mid = c.node(&format!("t{i}m"));
        let node = c.node(&format!("t{i}"));
        c.add(Element::resistor(&format!("tr{i}"), prev, mid, rs));
        c.add(Element::inductor(&format!("tl{i}"), mid, node, ls));
        c.add(Element::capacitor(
            &format!("tc{i}"),
            node,
            Circuit::GROUND,
            cs,
        ));
        prev = node;
    }
    c.add(Element::capacitor("cload", prev, Circuit::GROUND, cload));
    Workload {
        circuit: c,
        input,
        output: prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_structure() {
        let w = fig1_rc(1.0, 1.0, 1.0, 1.0);
        assert_eq!(w.circuit.num_elements(), 5);
        assert_eq!(w.circuit.num_storage_elements(), 2);
        assert_eq!(w.circuit.node_name(w.output), "2");
    }

    #[test]
    fn ladder_counts() {
        let w = rc_ladder(10, 1.0, 1e-12);
        assert_eq!(w.circuit.num_elements(), 1 + 20);
        assert_eq!(w.circuit.num_storage_elements(), 10);
    }

    #[test]
    fn gate_stage_structure() {
        let w = gate_stage(120.0, 4, 80.0, 0.4e-12, 5e-15);
        // vsource + Rdrv + 4×(R,C) + Cload.
        assert_eq!(w.circuit.num_elements(), 2 + 8 + 1);
        assert_eq!(w.circuit.num_storage_elements(), 5);
        assert!(w.circuit.find("Rdrv").is_some());
        assert!(w.circuit.find("Cload").is_some());
        assert_eq!(w.circuit.node_name(w.output), "w4");
    }

    #[test]
    #[should_panic(expected = "at least one wire segment")]
    fn gate_stage_zero_panics() {
        gate_stage(1.0, 0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn ladder_zero_panics() {
        rc_ladder(0, 1.0, 1.0);
    }

    #[test]
    fn tree_counts() {
        let w = rc_tree(3, 10.0, 1e-13);
        // 2 + 4 + 8 = 14 branches + driver.
        assert_eq!(w.circuit.num_storage_elements(), 15);
        assert!(w.circuit.num_elements() >= 30);
    }

    #[test]
    fn coupled_lines_counts() {
        let spec = CoupledLineSpec {
            segments: 10,
            ..Default::default()
        };
        let w = coupled_lines(&spec);
        // vin + 2 drivers + 10*(2R + 3C) + 2 loads
        assert_eq!(w.circuit.num_elements(), 1 + 2 + 50 + 2);
        assert_eq!(w.circuit.num_storage_elements(), 32);
        assert_ne!(w.aggressor_out, w.victim_out);
        // Total line resistance is preserved.
        let r: f64 = w
            .circuit
            .elements()
            .iter()
            .filter(|e| e.name.starts_with("ra"))
            .map(|e| e.value)
            .sum();
        assert!((r - spec.total_r).abs() < 1e-9);
    }

    #[test]
    fn opamp_counts_match_paper_range() {
        let amp = opamp741();
        let n = amp.circuit.num_elements();
        let s = amp.circuit.num_storage_elements();
        // Paper: 170 linear elements, 62 energy-storage elements.
        assert!((150..=200).contains(&n), "element count {n}");
        assert!((55..=75).contains(&s), "storage count {s}");
        assert!(amp.circuit.find("c_comp").is_some());
        assert!(amp.circuit.find("ro_q14").is_some());
    }

    #[test]
    fn mesh_counts() {
        let w = rc_mesh(3, 4, 5.0, 1e-13);
        // 12 caps + edges: horizontal 3*3=9, vertical 2*4=8, +driver, +vin.
        assert_eq!(w.circuit.num_storage_elements(), 12);
        assert_eq!(w.circuit.num_elements(), 1 + 1 + 12 + 9 + 8);
        assert_eq!(w.circuit.node_name(w.output), "m2_3");
    }

    #[test]
    fn h_tree_counts() {
        let w = h_tree(3, 100.0, 1e-12, 5e-13);
        // Branches: 2 + 4 + 8 = 14, each 2R + 2C; 8 sinks.
        assert_eq!(w.circuit.num_storage_elements(), 14 * 2 + 8);
        assert!(w.circuit.find("sink0").is_some());
    }

    #[test]
    fn rlc_line_counts() {
        let w = rlc_line(5, 10.0, 1e-9, 1e-12, 50.0, 1e-13);
        let inductors = w
            .circuit
            .elements()
            .iter()
            .filter(|e| e.kind == crate::ElementKind::Inductor)
            .count();
        assert_eq!(inductors, 5);
        assert_eq!(w.circuit.num_storage_elements(), 5 + 5 + 1);
        // Total inductance preserved.
        let l: f64 = w
            .circuit
            .elements()
            .iter()
            .filter(|e| e.kind == crate::ElementKind::Inductor)
            .map(|e| e.value)
            .sum();
        assert!((l - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn bjt_parameters_scale_with_current() {
        let lo = BjtSmallSignal::at_current(10e-6);
        let hi = BjtSmallSignal::at_current(1e-3);
        assert!(hi.gm > lo.gm);
        assert!(hi.ro < lo.ro);
        assert!(hi.rpi < lo.rpi);
        assert_eq!(lo.without_ccs().ccs, 0.0);
    }
}
