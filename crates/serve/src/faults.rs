//! Deterministic fault injection for robustness testing.
//!
//! Compiled only under the `fault-injection` cargo feature, so production
//! builds carry none of this. A [`FaultPlan`] is installed process-wide;
//! the batch engine then consults [`fault_for_point`] before each point
//! and suffers the prescribed fault: a panic, NaN moments, or an
//! artificial slowdown. Decisions are a pure hash of `(seed, point
//! index)`, so the same plan faults the same points regardless of worker
//! count or scheduling — the property the integration suite relies on to
//! compare faulted runs against fault-free baselines point by point.
//!
//! The module also provides pure artifact-corruption helpers
//! ([`bit_flip_digit`], [`truncate_at`]) for exercising the loader's
//! rejection paths.

use std::sync::RwLock;
use std::time::Duration;

/// What to inflict on a selected point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic mid-evaluation (exercises `catch_unwind` isolation).
    Panic,
    /// Replace the evaluated moments with NaN (exercises the numeric
    /// health check).
    NanMoments,
    /// Sleep before evaluating (exercises deadlines and shedding).
    Slow(Duration),
}

/// A seeded, rate-based fault schedule. Rates are percentages of points
/// (0–100) and partition a single per-point draw, so one point suffers at
/// most one fault and `panic_rate_pct + nan_rate_pct + slow_rate_pct`
/// must not exceed 100.
///
/// With a sharded server, `target_shard` aims the whole plan at one
/// shard: points evaluated by any other shard see no faults at all. That
/// is the lever the cross-shard chaos harness uses to storm one shard
/// while asserting its neighbors stay bit-identical to a fault-free run.
/// Unsharded evaluation paths (the plain [`crate::evaluate_batch`]
/// helpers, a single-shard server) count as shard 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the per-point hash.
    pub seed: u64,
    /// Percent of points that panic.
    pub panic_rate_pct: u8,
    /// Percent of points whose moments become NaN.
    pub nan_rate_pct: u8,
    /// Percent of points that sleep for `slow` first.
    pub slow_rate_pct: u8,
    /// Sleep duration for slow faults.
    pub slow: Duration,
    /// Restrict every fault in this plan to one shard; `None` faults all
    /// shards (the pre-sharding behavior).
    pub target_shard: Option<usize>,
    /// Percent of worker-pool *chunks* whose worker thread is killed
    /// outright (a panic at the pool layer, outside the per-point
    /// `catch_unwind`) — exercises the shard supervisor's restart path.
    /// Drawn independently of the per-point rates.
    pub worker_kill_rate_pct: u8,
}

static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// Installs a process-wide fault plan (replacing any previous one).
pub fn install(plan: FaultPlan) {
    assert!(
        u32::from(plan.panic_rate_pct)
            + u32::from(plan.nan_rate_pct)
            + u32::from(plan.slow_rate_pct)
            <= 100,
        "fault rates exceed 100%"
    );
    *PLAN.write().expect("fault plan lock poisoned") = Some(plan);
}

/// Removes the active fault plan.
pub fn clear() {
    *PLAN.write().expect("fault plan lock poisoned") = None;
}

/// True when a plan is installed (the batch engine then takes its
/// per-point path so every point passes the injection hook).
pub fn active() -> bool {
    PLAN.read().expect("fault plan lock poisoned").is_some()
}

/// SplitMix64 — a tiny, well-mixed hash; enough to decorrelate adjacent
/// point indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The fault (if any) this plan schedules for batch point `index`.
    /// Pure in `(seed, index)`: thread count and evaluation order do not
    /// change the answer — which lets tests recompute the faulted set
    /// after the fact and compare runs point by point. Ignores
    /// `target_shard` (see [`FaultPlan::fault_for_on`]).
    pub fn fault_for(&self, index: usize) -> Option<Fault> {
        let draw = (splitmix64(self.seed ^ (index as u64)) % 100) as u8;
        if draw < self.panic_rate_pct {
            Some(Fault::Panic)
        } else if draw < self.panic_rate_pct + self.nan_rate_pct {
            Some(Fault::NanMoments)
        } else if draw < self.panic_rate_pct + self.nan_rate_pct + self.slow_rate_pct {
            Some(Fault::Slow(self.slow))
        } else {
            None
        }
    }

    /// [`FaultPlan::fault_for`], filtered by shard: `None` when the plan
    /// targets a different shard than the one evaluating the point.
    pub fn fault_for_on(&self, shard: usize, index: usize) -> Option<Fault> {
        if self.target_shard.is_some_and(|t| t != shard) {
            return None;
        }
        self.fault_for(index)
    }

    /// Whether the pool worker that just claimed the chunk starting at
    /// global point index `chunk_start` on `shard` should be killed.
    /// Deterministic in `(seed, chunk_start)` and drawn independently of
    /// the per-point fault partition.
    pub fn kills_worker_on(&self, shard: usize, chunk_start: usize) -> bool {
        if self.worker_kill_rate_pct == 0 || self.target_shard.is_some_and(|t| t != shard) {
            return false;
        }
        let draw = splitmix64(self.seed ^ 0xdead_beef_0bad_cafe ^ (chunk_start as u64)) % 100;
        (draw as u8) < self.worker_kill_rate_pct
    }
}

/// The fault (if any) scheduled for batch point `index` under the active
/// plan, evaluated on an unsharded path (shard 0).
pub fn fault_for_point(index: usize) -> Option<Fault> {
    fault_for_point_on(0, index)
}

/// The fault (if any) scheduled for batch point `index` under the active
/// plan when evaluated by `shard`.
pub fn fault_for_point_on(shard: usize, index: usize) -> Option<Fault> {
    let plan = (*PLAN.read().expect("fault plan lock poisoned"))?;
    plan.fault_for_on(shard, index)
}

/// Whether the active plan kills the worker claiming the chunk starting
/// at `chunk_start` on `shard`.
pub fn fault_kills_worker(shard: usize, chunk_start: usize) -> bool {
    match *PLAN.read().expect("fault plan lock poisoned") {
        Some(plan) => plan.kills_worker_on(shard, chunk_start),
        None => false,
    }
}

/// Flips one bit of one ASCII digit in `text` (chosen by `seed`), leaving
/// it valid UTF-8 but corrupt — the minimal artifact corruption a
/// checksum must catch.
///
/// # Panics
///
/// Panics when `text` contains no ASCII digit.
pub fn bit_flip_digit(text: &str, seed: u64) -> String {
    let digits: Vec<usize> = text
        .bytes()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    assert!(!digits.is_empty(), "no digit to corrupt");
    let pos = digits[(splitmix64(seed) % digits.len() as u64) as usize];
    let mut bytes = text.as_bytes().to_vec();
    // XOR with 1 maps 0↔1, 2↔3, …, 8↔9: still a digit, different value.
    bytes[pos] ^= 0x01;
    String::from_utf8(bytes).expect("digit flip preserves UTF-8")
}

/// Truncates `text` to the given fraction of its length (on a char
/// boundary) — a partially-written artifact.
pub fn truncate_at(text: &str, keep_fraction: f64) -> String {
    let mut keep = ((text.len() as f64) * keep_fraction.clamp(0.0, 1.0)) as usize;
    while keep > 0 && !text.is_char_boundary(keep) {
        keep -= 1;
    }
    text[..keep].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        install(FaultPlan {
            seed: 42,
            panic_rate_pct: 10,
            nan_rate_pct: 10,
            ..FaultPlan::default()
        });
        assert!(active());
        let first: Vec<Option<Fault>> = (0..1000).map(fault_for_point).collect();
        let second: Vec<Option<Fault>> = (0..1000).map(fault_for_point).collect();
        assert_eq!(first, second);
        let panics = first.iter().filter(|f| **f == Some(Fault::Panic)).count();
        let nans = first
            .iter()
            .filter(|f| **f == Some(Fault::NanMoments))
            .count();
        // 10% nominal rate over 1000 draws: allow generous slack, but both
        // fault kinds must actually occur and most points stay healthy.
        assert!((50..200).contains(&panics), "{panics}");
        assert!((50..200).contains(&nans), "{nans}");
        clear();
        assert!(!active());
        assert_eq!(fault_for_point(0), None);
    }

    #[test]
    fn corruption_helpers_change_and_shrink_text() {
        let text = r#"{"x": 12345, "y": "abc"}"#;
        let flipped = bit_flip_digit(text, 7);
        assert_ne!(text, flipped);
        assert_eq!(text.len(), flipped.len());
        assert_eq!(
            text.bytes()
                .zip(flipped.bytes())
                .filter(|(a, b)| a != b)
                .count(),
            1
        );
        let cut = truncate_at(text, 0.5);
        assert_eq!(cut.len(), text.len() / 2);
        assert!(text.starts_with(&cut));
    }

    #[test]
    #[should_panic(expected = "fault rates exceed 100%")]
    fn over_100_percent_rejected() {
        install(FaultPlan {
            seed: 0,
            panic_rate_pct: 60,
            nan_rate_pct: 60,
            ..FaultPlan::default()
        });
    }

    #[test]
    fn shard_targeting_gates_faults_and_worker_kills() {
        let plan = FaultPlan {
            seed: 7,
            panic_rate_pct: 50,
            worker_kill_rate_pct: 50,
            target_shard: Some(1),
            ..FaultPlan::default()
        };
        // Off-target shard sees nothing; the target shard sees exactly
        // the unfiltered schedule.
        for i in 0..500 {
            assert_eq!(plan.fault_for_on(0, i), None);
            assert_eq!(plan.fault_for_on(1, i), plan.fault_for(i));
            assert!(!plan.kills_worker_on(0, i));
        }
        let kills = (0..500).filter(|&c| plan.kills_worker_on(1, c)).count();
        assert!((150..350).contains(&kills), "{kills}");
        // Untargeted plans hit every shard identically.
        let broad = FaultPlan {
            target_shard: None,
            ..plan
        };
        for i in 0..100 {
            assert_eq!(broad.fault_for_on(0, i), broad.fault_for_on(1, i));
            assert_eq!(broad.kills_worker_on(0, i), broad.kills_worker_on(1, i));
        }
    }
}
