//! Newline-delimited-JSON request engine.
//!
//! One request per line in, one JSON response per line out — the
//! transport-agnostic core behind `awesym serve`. Commands:
//!
//! | command    | action |
//! |------------|--------|
//! | `load`     | read a `.awesym` artifact (or raw model JSON) into the registry |
//! | `compile`  | parse a netlist, build a compiled model, register it |
//! | `save`     | write a registered model back out as an artifact |
//! | `eval`     | evaluate one point against a registered model |
//! | `batch`    | evaluate many points concurrently |
//! | `stats`    | report request/latency/throughput/registry counters |
//! | `shutdown` | acknowledge and stop the serve loop |
//!
//! Every response carries `"ok"`; failures report `{"ok":false,
//! "error":"…"}` and never kill the loop. An optional request `"id"` is
//! echoed back for client-side correlation.

use crate::batch::{evaluate_batch, BatchOutput, PointValue};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use crate::{artifact, resolve, ServeError};
use awesym_partition::CompiledModel;
use serde::Content;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

/// Default registry capacity for a server.
pub const DEFAULT_CAPACITY: usize = 16;

/// One handled request's outcome.
pub struct Response {
    /// The JSON response line (no trailing newline).
    pub text: String,
    /// True when the request asked the serve loop to stop.
    pub shutdown: bool,
}

/// The serving engine: a model registry plus counters, driven one
/// request line at a time. `&self` methods only — safe to share across
/// threads.
pub struct Server {
    registry: ModelRegistry,
    stats: ServerStats,
}

fn obj(fields: Vec<(&str, Content)>) -> Content {
    Content::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn f64s(v: &[f64]) -> Content {
    Content::Seq(v.iter().map(|&x| Content::F64(x)).collect())
}

fn opt_f64(v: Option<f64>) -> Content {
    v.map_or(Content::Null, Content::F64)
}

/// Extracts a required string field.
fn need_str<'a>(req: &'a Content, key: &str) -> Result<&'a str, ServeError> {
    req.get(key)
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            what: format!("missing string field '{key}'"),
        })
}

fn point_from(c: &Content, what: &str) -> Result<Vec<f64>, ServeError> {
    c.as_seq()
        .and_then(|s| s.iter().map(Content::as_f64).collect::<Option<Vec<f64>>>())
        .ok_or_else(|| ServeError::BadRequest {
            what: format!("{what} must be an array of numbers"),
        })
}

fn output_kind(req: &Content) -> Result<BatchOutput, ServeError> {
    // `kind` is the documented name; `output` is accepted as an alias so a
    // natural guess does not silently fall back to the moments default.
    let kind = req
        .get("kind")
        .or_else(|| req.get("output"))
        .and_then(Content::as_str)
        .unwrap_or("moments");
    match kind {
        "moments" => Ok(BatchOutput::Moments),
        "rom" => Ok(BatchOutput::Rom),
        "dc_gain" => Ok(BatchOutput::DcGain),
        "delays" => Ok(BatchOutput::Delays),
        "step" => {
            let times = req.get("times").ok_or_else(|| ServeError::BadRequest {
                what: "kind 'step' requires a 'times' array".into(),
            })?;
            Ok(BatchOutput::Step {
                times: point_from(times, "'times'")?,
            })
        }
        other => Err(ServeError::BadRequest {
            what: format!("unknown kind '{other}' (moments|rom|dc_gain|step|delays)"),
        }),
    }
}

fn point_value_json(v: &PointValue) -> Content {
    match v {
        PointValue::Moments(m) => obj(vec![("moments", f64s(m))]),
        PointValue::DcGain(g) => obj(vec![("dc_gain", Content::F64(*g))]),
        PointValue::Step(s) => obj(vec![("step", f64s(s))]),
        PointValue::Rom(r) => obj(vec![
            ("poles_re", f64s(&r.poles_re)),
            ("poles_im", f64s(&r.poles_im)),
            ("residues_re", f64s(&r.residues_re)),
            ("residues_im", f64s(&r.residues_im)),
            ("dc_gain", Content::F64(r.dc_gain)),
            ("stable", Content::Bool(r.stable)),
            ("delay_50", opt_f64(r.delay_50)),
        ]),
        PointValue::Delays(d) => obj(vec![
            ("elmore", Content::F64(d.elmore)),
            ("ln2_elmore", Content::F64(d.ln2_elmore)),
            ("d2m", Content::F64(d.d2m)),
            ("two_pole", opt_f64(d.two_pole)),
        ]),
    }
}

fn model_summary(name: &str, model: &CompiledModel) -> Vec<(&'static str, Content)> {
    vec![
        ("name", Content::Str(name.to_string())),
        (
            "symbols",
            Content::Seq(
                model
                    .symbols()
                    .iter()
                    .map(|s| Content::Str(s.to_string()))
                    .collect(),
            ),
        ),
        ("order", Content::U64(model.order() as u64)),
        ("op_count", Content::U64(model.op_count() as u64)),
        ("raw_op_count", Content::U64(model.raw_op_count() as u64)),
        (
            "opt_level",
            Content::Str(model.opt_level().as_str().to_string()),
        ),
    ]
}

impl Server {
    /// A server with the given registry capacity.
    pub fn new(capacity: usize) -> Self {
        Server {
            registry: ModelRegistry::new(capacity),
            stats: ServerStats::new(),
        }
    }

    /// The underlying registry (e.g. to pre-load models).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    fn model(&self, req: &Content) -> Result<Arc<CompiledModel>, ServeError> {
        let name = need_str(req, "model")?;
        self.registry
            .get(name)
            .ok_or_else(|| ServeError::ModelNotFound {
                name: name.to_string(),
            })
    }

    fn cmd_load(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let name = need_str(req, "name")?;
        let path = need_str(req, "path")?;
        let model = artifact::load_model_file(path)?;
        let mut fields = model_summary(name, &model);
        let evicted = self.registry.insert(name, model);
        if let Some(e) = evicted {
            fields.push(("evicted", Content::Str(e)));
        }
        Ok(fields)
    }

    fn cmd_compile(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let name = need_str(req, "name")?;
        let text = match req.get("netlist").and_then(Content::as_str) {
            Some(t) => t.to_string(),
            None => {
                let path = need_str(req, "path").map_err(|_| ServeError::BadRequest {
                    what: "compile needs 'netlist' text or a 'path'".into(),
                })?;
                std::fs::read_to_string(path).map_err(|e| ServeError::Io {
                    path: path.to_string(),
                    source: e,
                })?
            }
        };
        let circuit = awesym_circuit::parse_spice(&text).map_err(|e| ServeError::BadRequest {
            what: format!("netlist: {e}"),
        })?;
        let input_name = need_str(req, "input")?;
        let input = circuit
            .find(input_name)
            .ok_or_else(|| ServeError::BadRequest {
                what: format!("no element named {input_name}"),
            })?;
        let output_name = need_str(req, "output")?;
        let output = circuit
            .find_node(output_name)
            .ok_or_else(|| ServeError::BadRequest {
                what: format!("no node named {output_name}"),
            })?;
        let specs: Vec<String> = req
            .get("symbols")
            .and_then(Content::as_seq)
            .map(|s| {
                s.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let bindings = resolve::resolve_symbol_specs(&circuit, &specs)
            .map_err(|what| ServeError::BadRequest { what })?;
        let order = req
            .get("order")
            .and_then(Content::as_u64)
            .map_or(2, |v| v as usize);
        let model = CompiledModel::build(&circuit, input, output, &bindings, order)?;
        let mut fields = model_summary(name, &model);
        if let Some(e) = self.registry.insert(name, model) {
            fields.push(("evicted", Content::Str(e)));
        }
        Ok(fields)
    }

    fn cmd_save(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let path = need_str(req, "path")?;
        let model = self.model(req)?;
        artifact::save_artifact(&model, path)?;
        Ok(vec![("path", Content::Str(path.to_string()))])
    }

    fn cmd_eval(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let model = self.model(req)?;
        let values = point_from(
            req.get("values").ok_or_else(|| ServeError::BadRequest {
                what: "missing 'values' array".into(),
            })?,
            "'values'",
        )?;
        let kind = output_kind(req)?;
        let mut results = evaluate_batch(&model, std::slice::from_ref(&values), &kind, Some(1));
        match results.pop().expect("one point in, one result out") {
            Ok(v) => Ok(vec![("result", point_value_json(&v))]),
            Err(e) => Err(ServeError::BadRequest { what: e }),
        }
    }

    fn cmd_batch(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let model = self.model(req)?;
        let points: Vec<Vec<f64>> = req
            .get("points")
            .and_then(Content::as_seq)
            .ok_or_else(|| ServeError::BadRequest {
                what: "missing 'points' array of arrays".into(),
            })?
            .iter()
            .map(|p| point_from(p, "each point"))
            .collect::<Result<_, _>>()?;
        let kind = output_kind(req)?;
        let workers = req
            .get("workers")
            .and_then(Content::as_u64)
            .map(|v| (v as usize).max(1));
        let t0 = Instant::now();
        let results = evaluate_batch(&model, &points, &kind, workers);
        let elapsed = t0.elapsed();
        self.stats.record_batch(points.len(), elapsed);
        let ok_count = results.iter().filter(|r| r.is_ok()).count();
        let json: Vec<Content> = results
            .iter()
            .map(|r| match r {
                Ok(v) => point_value_json(v),
                Err(e) => obj(vec![("error", Content::Str(e.clone()))]),
            })
            .collect();
        let secs = elapsed.as_secs_f64();
        Ok(vec![
            ("count", Content::U64(points.len() as u64)),
            ("ok_count", Content::U64(ok_count as u64)),
            ("elapsed_secs", Content::F64(secs)),
            (
                "points_per_sec",
                Content::F64(if secs > 0.0 {
                    points.len() as f64 / secs
                } else {
                    0.0
                }),
            ),
            ("results", Content::Seq(json)),
        ])
    }

    fn cmd_stats(&self) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let server =
            serde_json::to_value(&self.stats.snapshot()).map_err(|e| ServeError::BadRequest {
                what: format!("stats serialization: {e}"),
            })?;
        let registry =
            serde_json::to_value(&self.registry.stats()).map_err(|e| ServeError::BadRequest {
                what: format!("stats serialization: {e}"),
            })?;
        Ok(vec![
            ("server", server),
            ("registry", registry),
            (
                "models",
                Content::Seq(
                    self.registry
                        .names()
                        .into_iter()
                        .map(Content::Str)
                        .collect(),
                ),
            ),
        ])
    }

    /// Handles one request line, returning the response line and whether
    /// the loop should stop. Blank lines are ignored (`None`).
    pub fn handle_line(&self, line: &str) -> Option<Response> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let t0 = Instant::now();
        let req = serde_json::from_str::<Content>(line).map_err(|e| ServeError::BadRequest {
            what: format!("request is not JSON: {e}"),
        });
        let id = req
            .as_ref()
            .ok()
            .and_then(|r| r.get("id").cloned())
            .unwrap_or(Content::Null);
        let mut shutdown = false;
        let outcome: Result<Vec<(&'static str, Content)>, ServeError> = req.and_then(|req| {
            let cmd = need_str(&req, "cmd")?.to_string();
            match cmd.as_str() {
                "load" => self.cmd_load(&req),
                "compile" => self.cmd_compile(&req),
                "save" => self.cmd_save(&req),
                "eval" => self.cmd_eval(&req),
                "batch" => self.cmd_batch(&req),
                "stats" => self.cmd_stats(),
                "shutdown" => {
                    shutdown = true;
                    Ok(vec![("shutdown", Content::Bool(true))])
                }
                other => Err(ServeError::BadRequest {
                    what: format!(
                        "unknown cmd '{other}' \
                         (load|compile|save|eval|batch|stats|shutdown)"
                    ),
                }),
            }
        });
        let ok = outcome.is_ok();
        let mut fields = vec![("ok", Content::Bool(ok))];
        if !id.is_null() {
            fields.push(("id", id));
        }
        match outcome {
            Ok(extra) => fields.extend(extra),
            Err(e) => fields.push(("error", Content::Str(e.to_string()))),
        }
        self.stats.record_request(t0.elapsed(), ok);
        let text = serde_json::to_string(&obj(fields))
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"encoding: {e}\"}}"));
        Some(Response { text, shutdown })
    }

    /// Runs the NDJSON loop until EOF or a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates transport read/write failures.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if let Some(resp) = self.handle_line(&line) {
                writer.write_all(resp.text.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if resp.shutdown {
                    break;
                }
            }
        }
        Ok(())
    }
}

impl Default for Server {
    fn default() -> Self {
        Server::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

    fn compile_req(name: &str) -> String {
        let req = obj(vec![
            ("cmd", Content::Str("compile".into())),
            ("name", Content::Str(name.into())),
            ("netlist", Content::Str(NETLIST.into())),
            ("input", Content::Str("vin".into())),
            ("output", Content::Str("2".into())),
            (
                "symbols",
                Content::Seq(vec![Content::Str("C1".into()), Content::Str("R2:r".into())]),
            ),
            ("order", Content::U64(2)),
        ]);
        serde_json::to_string(&req).unwrap()
    }

    fn parse(resp: &Response) -> Content {
        serde_json::from_str(&resp.text).unwrap()
    }

    fn ok_of(c: &Content) -> bool {
        c.get("ok").and_then(Content::as_bool).unwrap()
    }

    #[test]
    fn compile_eval_batch_stats_shutdown_flow() {
        let s = Server::default();
        let r = s.handle_line(&compile_req("m")).unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text);
        assert!(c.get("op_count").and_then(Content::as_u64).unwrap() > 0);

        let r = s
            .handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1000.0],"kind":"dc_gain"}"#)
            .unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text);
        let dc = c
            .get("result")
            .and_then(|v| v.get("dc_gain"))
            .and_then(Content::as_f64)
            .unwrap();
        assert!((dc - 1.0).abs() < 1e-9);

        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3],[1e-9]],"kind":"moments","workers":2}"#,
            )
            .unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text);
        assert_eq!(c.get("count").and_then(Content::as_u64), Some(3));
        assert_eq!(c.get("ok_count").and_then(Content::as_u64), Some(2));
        let results = c.get("results").and_then(Content::as_seq).unwrap();
        assert!(results[2].get("error").is_some());

        let r = s.handle_line(r#"{"cmd":"stats"}"#).unwrap();
        let c = parse(&r);
        assert!(ok_of(&c));
        let server = c.get("server").unwrap();
        assert!(server.get("requests").and_then(Content::as_u64).unwrap() >= 3);
        assert_eq!(
            server.get("batch_points").and_then(Content::as_u64),
            Some(3)
        );
        let registry = c.get("registry").unwrap();
        assert!(registry.get("hits").and_then(Content::as_u64).unwrap() >= 2);

        let r = s.handle_line(r#"{"cmd":"shutdown"}"#).unwrap();
        assert!(r.shutdown);
        assert!(ok_of(&parse(&r)));
    }

    #[test]
    fn errors_are_structured_and_nonfatal() {
        let s = Server::default();
        for bad in [
            "not json at all",
            r#"{"nocmd":1}"#,
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"eval","model":"ghost","values":[1.0]}"#,
            r#"{"cmd":"eval","model":"ghost"}"#,
            r#"{"cmd":"load","name":"x","path":"/nonexistent/a.awesym"}"#,
        ] {
            let r = s.handle_line(bad).unwrap();
            let c = parse(&r);
            assert!(!ok_of(&c), "{bad} -> {}", r.text);
            assert!(!r.shutdown);
            assert!(c.get("error").and_then(Content::as_str).is_some());
        }
        // Still serving after all those failures.
        let r = s.handle_line(&compile_req("m")).unwrap();
        assert!(ok_of(&parse(&r)));
        assert!(s.handle_line("   ").is_none());
    }

    #[test]
    fn id_field_is_echoed() {
        let s = Server::default();
        let r = s.handle_line(r#"{"cmd":"stats","id":42}"#).unwrap();
        let c = parse(&r);
        assert_eq!(c.get("id").and_then(Content::as_u64), Some(42));
        let r = s.handle_line(r#"{"cmd":"nope","id":"abc"}"#).unwrap();
        let c = parse(&r);
        assert_eq!(c.get("id").and_then(Content::as_str), Some("abc"));
    }

    #[test]
    fn serve_loop_over_buffers() {
        let s = Server::default();
        let mut input = compile_req("m");
        input.push('\n');
        input.push_str(r#"{"cmd":"eval","model":"m","values":[1e-9,1000.0]}"#);
        input.push('\n');
        input.push_str(r#"{"cmd":"shutdown"}"#);
        input.push('\n');
        // Lines after shutdown must not be processed.
        input.push_str(r#"{"cmd":"stats"}"#);
        input.push('\n');
        let mut out = Vec::new();
        s.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for l in &lines {
            let c: Content = serde_json::from_str(l).unwrap();
            assert!(ok_of(&c), "{l}");
        }
    }
}
