//! Newline-delimited-JSON request engine.
//!
//! One request per line in, one JSON response per line out — the
//! transport-agnostic core behind `awesym serve`. Commands:
//!
//! | command    | action |
//! |------------|--------|
//! | `load`     | read a `.awesym` artifact (or raw model JSON) into the registry |
//! | `compile`  | parse a netlist, build a compiled model, register it |
//! | `save`     | write a registered model back out as an artifact |
//! | `eval`     | evaluate one point against a registered model |
//! | `batch`    | evaluate many points concurrently |
//! | `stats`    | report request/latency/throughput/registry counters |
//! | `health`   | readiness probe: per-shard breaker/worker/queue state |
//! | `drain`    | stop admitting evaluation work (graceful shutdown) |
//! | `shutdown` | acknowledge and stop the serve loop |
//!
//! Every response carries `"ok"`; failures report `{"ok":false,
//! "error":"…","code":"…"}` — a stable machine-readable
//! [`ErrorCode`](crate::ErrorCode) alongside the prose — and never kill
//! the loop. An optional request `"id"` is echoed back for client-side
//! correlation.
//!
//! The server is fault-tolerant by construction (see
//! `docs/robustness.md`): per-point panics are isolated by the batch
//! engine, requests carry deadlines (`"deadline_ms"` per request or a
//! [`ServerConfig`] default), oversized lines and batches are rejected
//! before any work happens, non-finite symbol values are refused, and an
//! in-flight budget sheds excess load with an `overloaded` error and a
//! depth-scaled `retry_after_ms` hint instead of queueing without bound.
//!
//! Model state and evaluation are **sharded** (see `docs/serving.md`):
//! the model name hashes to one of [`ServerConfig::shards`] shards
//! ([`crate::shard_of`]), each owning a tiered registry, a persistent
//! supervised worker pool, and a circuit breaker — so a crash-looping
//! model degrades *its* shard to `unavailable` while every other shard
//! keeps serving.

use crate::batch::BatchOutput;
use crate::encode::{self, BatchBody, ResponseBody, WireEncoding};
use crate::registry::{ModelRegistry, RegistryStats};
use crate::shard::{adaptive_retry_after_ms, shard_of, Shard, ShardConfig};
use crate::stats::{ServerStats, Stage, STAGES};
use crate::{artifact, resolve, ServeError};
use awesym_obs::{now_ns, Tracer};
use awesym_partition::CompiledModel;
use serde::Content;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default registry capacity for a server.
pub const DEFAULT_CAPACITY: usize = 16;

/// Operational limits and fault-tolerance knobs for a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Registry capacity (models held before LRU eviction).
    pub capacity: usize,
    /// Largest accepted `batch` request, in points.
    pub max_batch_points: usize,
    /// Largest accepted request line, in bytes (guards the JSON parser).
    pub max_line_bytes: usize,
    /// Default evaluation deadline applied to `eval`/`batch` requests;
    /// `None` means no deadline unless the request carries
    /// `"deadline_ms"`.
    pub deadline_ms: Option<u64>,
    /// Heavy requests (`eval`, `batch`, `compile`) allowed in flight at
    /// once; `0` means unlimited. Excess requests are shed with an
    /// `overloaded` error instead of queueing.
    pub max_inflight: usize,
    /// Backoff hint returned with `overloaded` errors.
    pub retry_after_ms: u64,
    /// Observe per-stage request timing (clock reads, stage histograms,
    /// stage spans). On by default; turning it off removes every
    /// per-request clock read except the latency counter — the benches
    /// flip this to measure the observability layer's own overhead.
    pub observe: bool,
    /// Emit one NDJSON stats line to the stats sink every `N` handled
    /// requests during [`Server::serve_with_stats`]; `0` disables.
    pub stats_every: u64,
    /// Shards the model fleet is split across (min 1). Each shard owns a
    /// tiered registry, a persistent worker pool, and a circuit breaker;
    /// models are placed by [`crate::shard_of`] over the model name.
    pub shards: usize,
    /// Worker threads per shard pool; `0` picks the parallelism default.
    pub shard_workers: usize,
    /// Concurrent evaluation jobs a shard accepts (queued + running)
    /// before shedding with a depth-scaled retry hint; `0` disables the
    /// per-shard bound.
    pub shard_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: DEFAULT_CAPACITY,
            max_batch_points: 1 << 20,
            max_line_bytes: 64 << 20,
            deadline_ms: None,
            max_inflight: 0,
            retry_after_ms: 50,
            observe: true,
            stats_every: 0,
            shards: 1,
            shard_workers: 0,
            shard_queue: 64,
        }
    }
}

/// One handled request's outcome.
pub struct Response {
    /// The encoded response bytes (no trailing newline/framing): a JSON
    /// object for NDJSON responses, a binary-v1 frame for binary ones.
    pub body: Vec<u8>,
    /// The wire encoding actually used for `body` (error responses are
    /// always NDJSON, whatever the request negotiated).
    pub encoding: WireEncoding,
    /// True when the request asked the serve loop to stop.
    pub shutdown: bool,
}

impl Response {
    /// The response as text — valid for NDJSON responses (every response
    /// except a binary-encoded batch body).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("NDJSON response is valid UTF-8")
    }
}

/// What [`Server::handle_line_into`] reports alongside the bytes it
/// appended to the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseMeta {
    /// The wire encoding actually used.
    pub encoding: WireEncoding,
    /// True when the request asked the serve loop to stop.
    pub shutdown: bool,
}

/// A command's successful payload before the response envelope (`ok`,
/// `id`) is attached.
enum Reply {
    /// An ordered field list.
    Fields(Vec<(&'static str, Content)>),
    /// A batch body the encoder streams directly.
    Batch(BatchBody),
}

/// The serving engine: a sharded model fleet plus counters, driven one
/// request line at a time. `&self` methods only — safe to share across
/// threads.
pub struct Server {
    shards: Vec<Shard>,
    stats: ServerStats,
    config: ServerConfig,
    inflight: AtomicUsize,
    tracer: Tracer,
}

/// Spans the tracer ring holds before overwriting the oldest.
const TRACE_CAPACITY: usize = 1024;

/// RAII decrement of the in-flight counter.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Accumulates one request's per-stage wall time.
///
/// Each stage slot keeps the start of its *first* interval plus the total
/// duration across intervals (the serialize stage, for instance, spans
/// both the per-point result encoding and the final response line). When
/// observation is off no clock is ever read. The collected spans are
/// flushed at the end of `handle_line` in canonical pipeline order, so a
/// drained trace always reads parse → lookup → eval → degrade →
/// serialize regardless of how measurement nested.
struct StageClock {
    enabled: bool,
    spans: [Option<(u64, u64)>; 5],
}

impl StageClock {
    fn new(enabled: bool) -> Self {
        StageClock {
            enabled,
            spans: [None; 5],
        }
    }

    /// Runs `f`, charging its wall time to `stage`.
    fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = now_ns();
        let out = f();
        let dur = now_ns().saturating_sub(start);
        match &mut self.spans[stage.index()] {
            Some((_, total)) => *total += dur,
            slot => *slot = Some((start, dur)),
        }
        out
    }
}

fn obj(fields: Vec<(&str, Content)>) -> Content {
    Content::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Appends the standard error fields (`error`, `code`, plus the
/// `retry_after_ms` backoff hint for shed/unavailable requests and the
/// refusing `shard` for unavailable ones) to a response envelope.
fn push_error_fields(fields: &mut Vec<(&'static str, Content)>, e: &ServeError) {
    fields.push(("error", Content::Str(e.to_string())));
    fields.push(("code", Content::Str(e.code().to_string())));
    match e {
        ServeError::Overloaded { retry_after_ms, .. } => {
            fields.push(("retry_after_ms", Content::U64(*retry_after_ms)));
        }
        ServeError::Unavailable {
            shard,
            retry_after_ms,
            ..
        } => {
            fields.push(("retry_after_ms", Content::U64(*retry_after_ms)));
            fields.push(("shard", Content::U64(*shard)));
        }
        _ => {}
    }
}

/// Extracts a required string field.
fn need_str<'a>(req: &'a Content, key: &str) -> Result<&'a str, ServeError> {
    req.get(key)
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            what: format!("missing string field '{key}'"),
        })
}

fn point_from(c: &Content, what: &str) -> Result<Vec<f64>, ServeError> {
    let vals = c
        .as_seq()
        .and_then(|s| s.iter().map(Content::as_f64).collect::<Option<Vec<f64>>>())
        .ok_or_else(|| ServeError::BadRequest {
            what: format!("{what} must be an array of numbers"),
        })?;
    // NaN/Inf symbol values would propagate through every moment; reject
    // them at the door with a clear message instead.
    if let Some(i) = vals.iter().position(|v| !v.is_finite()) {
        return Err(ServeError::BadRequest {
            what: format!("{what} has a non-finite value at index {i}"),
        });
    }
    Ok(vals)
}

fn output_kind(req: &Content) -> Result<BatchOutput, ServeError> {
    // `kind` is the documented name; `output` is accepted as an alias so a
    // natural guess does not silently fall back to the moments default.
    let kind = req
        .get("kind")
        .or_else(|| req.get("output"))
        .and_then(Content::as_str)
        .unwrap_or("moments");
    match kind {
        "moments" => Ok(BatchOutput::Moments),
        "rom" => Ok(BatchOutput::Rom),
        "dc_gain" => Ok(BatchOutput::DcGain),
        "delays" => Ok(BatchOutput::Delays),
        "step" => {
            let times = req.get("times").ok_or_else(|| ServeError::BadRequest {
                what: "kind 'step' requires a 'times' array".into(),
            })?;
            Ok(BatchOutput::Step {
                times: point_from(times, "'times'")?,
            })
        }
        other => Err(ServeError::BadRequest {
            what: format!("unknown kind '{other}' (moments|rom|dc_gain|step|delays)"),
        }),
    }
}

fn model_summary(name: &str, model: &CompiledModel) -> Vec<(&'static str, Content)> {
    vec![
        ("name", Content::Str(name.to_string())),
        (
            "symbols",
            Content::Seq(
                model
                    .symbols()
                    .iter()
                    .map(|s| Content::Str(s.to_string()))
                    .collect(),
            ),
        ),
        ("order", Content::U64(model.order() as u64)),
        ("op_count", Content::U64(model.op_count() as u64)),
        ("raw_op_count", Content::U64(model.raw_op_count() as u64)),
        (
            "opt_level",
            Content::Str(model.opt_level().as_str().to_string()),
        ),
    ]
}

impl Server {
    /// A server with the given registry capacity and default limits.
    pub fn new(capacity: usize) -> Self {
        Server::with_config(ServerConfig {
            capacity,
            ..ServerConfig::default()
        })
    }

    /// A server with explicit operational limits.
    pub fn with_config(config: ServerConfig) -> Self {
        let tracer = Tracer::new(TRACE_CAPACITY);
        tracer.set_enabled(config.observe);
        let stats = ServerStats::new();
        let shard_config = ShardConfig {
            warm_capacity: config.capacity,
            // The cold tier is cheap (no worker state, just parked
            // models), so give demoted models room before they are truly
            // forgotten.
            cold_capacity: (config.capacity * 4).max(1),
            workers: if config.shard_workers == 0 {
                crate::batch::default_workers()
            } else {
                config.shard_workers
            },
            max_queue: config.shard_queue,
            retry_after_ms: config.retry_after_ms,
            ..ShardConfig::default()
        };
        let shards = (0..config.shards.max(1))
            .map(|i| Shard::new(i, shard_config, stats.registry()))
            .collect();
        Server {
            shards,
            stats,
            config,
            inflight: AtomicUsize::new(0),
            tracer,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Shard 0's warm-tier registry. For the default single-shard
    /// configuration this is *the* registry (backward compatible); on a
    /// sharded server prefer [`Server::insert_model`] /
    /// [`Server::shard_for`], which route by name.
    pub fn registry(&self) -> &ModelRegistry {
        self.shards[0].registry().warm()
    }

    /// Every shard, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard that owns `name`.
    pub fn shard_for(&self, name: &str) -> &Shard {
        &self.shards[shard_of(name, self.shards.len())]
    }

    /// Registers a model on the shard that owns its name. Returns the
    /// name of a model that fell out of the owning shard's cold tier (was
    /// truly forgotten), if any.
    pub fn insert_model(&self, name: &str, model: CompiledModel) -> Option<String> {
        self.shard_for(name).registry().insert(name, model)
    }

    /// Registry counters aggregated across every shard's two tiers:
    /// cold-tier hits (promotions) count as hits, warm misses that were
    /// satisfied by the cold tier do not count as misses, and only
    /// cold-tier evictions (models truly forgotten) count as evictions.
    pub fn registry_stats(&self) -> RegistryStats {
        let mut agg = RegistryStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            resident: 0,
        };
        for shard in &self.shards {
            let t = shard.registry().stats();
            agg.hits += t.warm.hits + t.promotions;
            agg.misses += t.warm.misses.saturating_sub(t.promotions);
            agg.evictions += t.cold.evictions;
            agg.resident += t.warm.resident + t.cold.resident;
        }
        agg
    }

    /// The server's counters and stage histograms.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The span sink: stage spans land here, drainable as NDJSON.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Claims an in-flight slot for a heavy request, or sheds it when the
    /// budget (if any) is exhausted. The shed hint is depth-aware: at the
    /// budget boundary it is the configured base, and it scales with how
    /// far past the budget the in-flight count is, so clients back off
    /// harder the deeper the overload.
    fn admit(&self) -> Result<InflightGuard<'_>, ServeError> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if self.config.max_inflight > 0 && prev >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.stats.record_request_shed();
            return Err(ServeError::Overloaded {
                inflight: prev as u64,
                max_inflight: self.config.max_inflight as u64,
                retry_after_ms: adaptive_retry_after_ms(
                    self.config.retry_after_ms,
                    prev,
                    self.config.max_inflight,
                ),
            });
        }
        Ok(InflightGuard(&self.inflight))
    }

    /// The request's evaluation deadline: a per-request `"deadline_ms"`
    /// overrides the configured default. Returns the absolute instant and
    /// the millisecond figure (for error reporting).
    fn deadline_of(&self, req: &Content, t0: Instant) -> Option<(Instant, u64)> {
        let ms = req
            .get("deadline_ms")
            .and_then(Content::as_u64)
            .or(self.config.deadline_ms)?;
        Some((t0 + Duration::from_millis(ms), ms))
    }

    /// Resolves a request's model and the shard that owns it.
    fn route(&self, req: &Content) -> Result<(&Shard, Arc<CompiledModel>), ServeError> {
        let name = need_str(req, "model")?;
        let shard = self.shard_for(name);
        let model = shard
            .registry()
            .get(name)
            .ok_or_else(|| ServeError::ModelNotFound {
                name: name.to_string(),
            })?;
        Ok((shard, model))
    }

    fn cmd_load(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let name = need_str(req, "name")?;
        let path = need_str(req, "path")?;
        let model = artifact::load_model_file(path)?;
        let mut fields = model_summary(name, &model);
        fields.push((
            "shard",
            Content::U64(shard_of(name, self.shards.len()) as u64),
        ));
        if let Some(e) = self.insert_model(name, model) {
            fields.push(("evicted", Content::Str(e)));
        }
        Ok(fields)
    }

    fn cmd_compile(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let name = need_str(req, "name")?;
        let text = match req.get("netlist").and_then(Content::as_str) {
            Some(t) => t.to_string(),
            None => {
                let path = need_str(req, "path").map_err(|_| ServeError::BadRequest {
                    what: "compile needs 'netlist' text or a 'path'".into(),
                })?;
                std::fs::read_to_string(path).map_err(|e| ServeError::Io {
                    path: path.to_string(),
                    source: e,
                })?
            }
        };
        let circuit = awesym_circuit::parse_spice(&text).map_err(|e| ServeError::BadRequest {
            what: format!("netlist: {e}"),
        })?;
        let input_name = need_str(req, "input")?;
        let input = circuit
            .find(input_name)
            .ok_or_else(|| ServeError::BadRequest {
                what: format!("no element named {input_name}"),
            })?;
        let output_name = need_str(req, "output")?;
        let output = circuit
            .find_node(output_name)
            .ok_or_else(|| ServeError::BadRequest {
                what: format!("no node named {output_name}"),
            })?;
        let specs: Vec<String> = req
            .get("symbols")
            .and_then(Content::as_seq)
            .map(|s| {
                s.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let bindings = resolve::resolve_symbol_specs(&circuit, &specs)
            .map_err(|what| ServeError::BadRequest { what })?;
        let order = req
            .get("order")
            .and_then(Content::as_u64)
            .map_or(2, |v| v as usize);
        let model = CompiledModel::build(&circuit, input, output, &bindings, order)?;
        let mut fields = model_summary(name, &model);
        fields.push((
            "shard",
            Content::U64(shard_of(name, self.shards.len()) as u64),
        ));
        if let Some(e) = self.insert_model(name, model) {
            fields.push(("evicted", Content::Str(e)));
        }
        Ok(fields)
    }

    fn cmd_save(&self, req: &Content) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let path = need_str(req, "path")?;
        let (_, model) = self.route(req)?;
        artifact::save_artifact(&model, path)?;
        Ok(vec![("path", Content::Str(path.to_string()))])
    }

    fn cmd_eval(
        &self,
        req: &Content,
        deadline: Option<(Instant, u64)>,
        clock: &mut StageClock,
        shard_used: &mut Option<usize>,
    ) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let (shard, model) = clock.time(Stage::Lookup, || self.route(req))?;
        *shard_used = Some(shard.id());
        let values = point_from(
            req.get("values").ok_or_else(|| ServeError::BadRequest {
                what: "missing 'values' array".into(),
            })?,
            "'values'",
        )?;
        let kind = output_kind(req)?;
        let outcome = clock.time(Stage::Eval, || {
            shard.evaluate(
                Arc::clone(&model),
                Arc::new(vec![values]),
                kind,
                deadline.map(|(at, _)| at),
                Some(1),
            )
        })?;
        clock.time(Stage::Degrade, || self.record_outcome(&outcome));
        let mut results = outcome.results;
        let result = results.pop().ok_or_else(|| ServeError::Internal {
            what: "batch engine returned no result for a single-point request".into(),
        })?;
        match result {
            Ok(v) => Ok(vec![("result", encode::point_value_content(&v))]),
            Err(_) if outcome.deadline_exceeded => Err(ServeError::DeadlineExceeded {
                deadline_ms: deadline.map_or(0, |(_, ms)| ms),
            }),
            Err(e) => Err(ServeError::Point(e)),
        }
    }

    /// Folds a batch outcome's health counters into the server stats.
    fn record_outcome(&self, outcome: &crate::batch::BatchOutcome) {
        if outcome.panics_caught > 0 {
            self.stats.record_panics_caught(outcome.panics_caught);
        }
        if outcome.degraded_points > 0 {
            self.stats.record_degradations(outcome.degraded_points);
        }
        if outcome.deadline_exceeded {
            self.stats.record_deadline_exceeded();
        }
    }

    fn cmd_batch(
        &self,
        req: &Content,
        deadline: Option<(Instant, u64)>,
        clock: &mut StageClock,
        encoding: WireEncoding,
        shard_used: &mut Option<usize>,
    ) -> Result<BatchBody, ServeError> {
        let (shard, model) = clock.time(Stage::Lookup, || self.route(req))?;
        *shard_used = Some(shard.id());
        let raw_points =
            req.get("points")
                .and_then(Content::as_seq)
                .ok_or_else(|| ServeError::BadRequest {
                    what: "missing 'points' array of arrays".into(),
                })?;
        if raw_points.len() > self.config.max_batch_points {
            return Err(ServeError::BadRequest {
                what: format!(
                    "batch has {} points, limit is {}",
                    raw_points.len(),
                    self.config.max_batch_points
                ),
            });
        }
        let points: Vec<Vec<f64>> = raw_points
            .iter()
            .map(|p| point_from(p, "each point"))
            .collect::<Result<_, _>>()?;
        let kind = output_kind(req)?;
        // The binary frame carries a fixed number of f64 columns per
        // point, derived from the output kind before any evaluation.
        let cols = match (&kind, encoding) {
            (BatchOutput::Rom, WireEncoding::BinaryV1) => {
                return Err(ServeError::BadRequest {
                    what: "kind 'rom' has no fixed-width binary layout; \
                           use \"encoding\":\"ndjson\""
                        .into(),
                })
            }
            (BatchOutput::Rom, _) => 0,
            (BatchOutput::Moments, _) => 2 * model.order(),
            (BatchOutput::DcGain, _) => 1,
            (BatchOutput::Delays, _) => 4,
            (BatchOutput::Step { times }, _) => times.len(),
        };
        let workers = req
            .get("workers")
            .and_then(Content::as_u64)
            .map(|v| (v as usize).max(1));
        let n_points = points.len();
        let t0 = Instant::now();
        let outcome = clock.time(Stage::Eval, || {
            shard.evaluate(
                Arc::clone(&model),
                Arc::new(points),
                kind.clone(),
                deadline.map(|(at, _)| at),
                workers,
            )
        })?;
        let elapsed = t0.elapsed();
        let ok_count = clock.time(Stage::Degrade, || {
            self.stats.record_batch(n_points, elapsed);
            self.record_outcome(&outcome);
            outcome.results.iter().filter(|r| r.is_ok()).count()
        });
        let secs = elapsed.as_secs_f64();
        let mut head = vec![
            ("count", Content::U64(n_points as u64)),
            ("ok_count", Content::U64(ok_count as u64)),
            ("elapsed_secs", Content::F64(secs)),
            (
                "points_per_sec",
                Content::F64(if secs > 0.0 {
                    n_points as f64 / secs
                } else {
                    0.0
                }),
            ),
        ];
        if outcome.deadline_exceeded {
            head.push(("deadline_exceeded", Content::Bool(true)));
        }
        Ok(BatchBody {
            head,
            // Filled from the request envelope by `handle_line_into` so
            // correlation survives the binary frame too.
            id: None,
            cols,
            ok_count: ok_count as u64,
            elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            deadline_exceeded: outcome.deadline_exceeded,
            deadline,
            results: outcome.results,
        })
    }

    fn cmd_stats(&self) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let ser = |e: serde_json::Error| ServeError::BadRequest {
            what: format!("stats serialization: {e}"),
        };
        let server = serde_json::to_value(&self.stats.snapshot()).map_err(ser)?;
        let registry = serde_json::to_value(&self.registry_stats()).map_err(ser)?;
        let mut models: Vec<String> = Vec::new();
        let mut shards: Vec<Content> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            models.extend(shard.registry().names());
            shards.push(obj(vec![
                (
                    "health",
                    serde_json::to_value(&shard.health()).map_err(ser)?,
                ),
                (
                    "registry",
                    serde_json::to_value(&shard.registry().stats()).map_err(ser)?,
                ),
            ]));
        }
        models.sort();
        Ok(vec![
            ("server", server),
            ("registry", registry),
            (
                "models",
                Content::Seq(models.into_iter().map(Content::Str).collect()),
            ),
            ("shards", Content::Seq(shards)),
        ])
    }

    /// Readiness probe: per-shard breaker phase, worker liveness, restart
    /// counters, and queue depth. `ready` is the AND over shards — a
    /// load balancer should stop routing when it goes false. Probing also
    /// runs a supervision pass, so a probe is what nurses a crashed pool
    /// back up even with no traffic.
    fn cmd_health(&self) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let ready = self.shards.iter().all(Shard::is_ready);
        let shards: Result<Vec<Content>, _> = self
            .shards
            .iter()
            .map(|s| serde_json::to_value(&s.health()))
            .collect();
        Ok(vec![
            ("ready", Content::Bool(ready)),
            (
                "shards",
                Content::Seq(shards.map_err(|e| ServeError::BadRequest {
                    what: format!("health serialization: {e}"),
                })?),
            ),
        ])
    }

    /// Graceful-shutdown entry: every shard stops admitting evaluation
    /// work (new eval/batch requests get `unavailable`) while in-flight
    /// jobs finish. `pending` reports jobs still queued or running; poll
    /// until it reaches zero, then send `shutdown`.
    fn cmd_drain(&self) -> Result<Vec<(&'static str, Content)>, ServeError> {
        let mut pending = 0u64;
        for shard in &self.shards {
            shard.drain();
            pending += shard.queue_depth() as u64;
        }
        Ok(vec![
            ("draining", Content::Bool(true)),
            ("pending", Content::U64(pending)),
        ])
    }

    /// Handles one request line into a fresh buffer. Prefer
    /// [`Server::handle_line_into`] on hot paths — it reuses the
    /// caller's buffer across requests.
    pub fn handle_line(&self, line: &str) -> Option<Response> {
        let mut body = Vec::new();
        let meta = self.handle_line_into(line, &mut body)?;
        Some(Response {
            body,
            encoding: meta.encoding,
            shutdown: meta.shutdown,
        })
    }

    /// Handles one request line, appending the encoded response to `out`
    /// (a reusable buffer the caller clears between requests). Blank
    /// lines are ignored (`None`).
    ///
    /// Every response goes through the negotiated [`crate::encode::Encoder`]; encode
    /// time is charged to the `serialize` stage and counts against the
    /// request deadline — a deadline that trips mid-encode discards the
    /// partial body and reports a typed `deadline_exceeded` error
    /// instead. Error responses are always NDJSON.
    pub fn handle_line_into(&self, line: &str, out: &mut Vec<u8>) -> Option<ResponseMeta> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let t0 = Instant::now();
        let mut clock = StageClock::new(self.config.observe);
        // Size guard before the parser ever sees the bytes.
        let req = clock.time(Stage::Parse, || {
            if line.len() > self.config.max_line_bytes {
                Err(ServeError::BadRequest {
                    what: format!(
                        "request line is {} bytes, limit is {}",
                        line.len(),
                        self.config.max_line_bytes
                    ),
                })
            } else {
                serde_json::from_str::<Content>(line).map_err(|e| ServeError::BadRequest {
                    what: format!("request is not JSON: {e}"),
                })
            }
        });
        let id = req
            .as_ref()
            .ok()
            .and_then(|r| r.get("id").cloned())
            .unwrap_or(Content::Null);
        let mut shutdown = false;
        let mut encoding = WireEncoding::Ndjson;
        let mut shard_used: Option<usize> = None;
        let outcome: Result<Reply, ServeError> = req.and_then(|req| {
            encoding = encode::negotiate(&req)?;
            let cmd = need_str(&req, "cmd")?.to_string();
            let deadline = self.deadline_of(&req, t0);
            if encoding == WireEncoding::BinaryV1 && cmd != "batch" {
                return Err(ServeError::BadRequest {
                    what: format!("encoding 'binary-v1' only applies to cmd 'batch' (got '{cmd}')"),
                });
            }
            match cmd.as_str() {
                // Heavy commands claim an in-flight slot (shedding when
                // the budget is exhausted); cheap ones always answer.
                "load" => self.cmd_load(&req).map(Reply::Fields),
                "compile" => {
                    let _slot = self.admit()?;
                    self.cmd_compile(&req).map(Reply::Fields)
                }
                "save" => self.cmd_save(&req).map(Reply::Fields),
                "eval" => {
                    let _slot = self.admit()?;
                    self.cmd_eval(&req, deadline, &mut clock, &mut shard_used)
                        .map(Reply::Fields)
                }
                "batch" => {
                    let _slot = self.admit()?;
                    self.cmd_batch(&req, deadline, &mut clock, encoding, &mut shard_used)
                        .map(Reply::Batch)
                }
                "stats" => self.cmd_stats().map(Reply::Fields),
                "health" => self.cmd_health().map(Reply::Fields),
                "drain" => self.cmd_drain().map(Reply::Fields),
                "shutdown" => {
                    shutdown = true;
                    Ok(Reply::Fields(vec![("shutdown", Content::Bool(true))]))
                }
                other => Err(ServeError::BadRequest {
                    what: format!(
                        "unknown cmd '{other}' \
                         (load|compile|save|eval|batch|stats|health|drain|shutdown)"
                    ),
                }),
            }
        });
        let mut ok = outcome.is_ok();
        let mut envelope = vec![("ok", Content::Bool(ok))];
        if !id.is_null() {
            envelope.push(("id", id.clone()));
        }
        let body = match outcome {
            Ok(Reply::Fields(extra)) => {
                // Only batch bodies have a binary form; everything else
                // is an NDJSON object whatever was negotiated.
                encoding = WireEncoding::Ndjson;
                envelope.extend(extra);
                ResponseBody::Fields(envelope)
            }
            Ok(Reply::Batch(mut b)) => {
                envelope.append(&mut b.head);
                b.head = envelope;
                if !id.is_null() {
                    b.id = Some(id.clone());
                }
                ResponseBody::Batch(b)
            }
            Err(e) => {
                encoding = WireEncoding::Ndjson;
                push_error_fields(&mut envelope, &e);
                ResponseBody::Fields(envelope)
            }
        };
        let encoder = encode::encoder_for(encoding);
        let start_len = out.len();
        let encoded = clock.time(Stage::Serialize, || encoder.encode_response(&body, out));
        if let Err(e) = encoded {
            // The deadline tripped mid-encode: discard the partial body
            // and answer with the typed error (NDJSON) instead.
            out.truncate(start_len);
            ok = false;
            encoding = WireEncoding::Ndjson;
            if matches!(e, ServeError::DeadlineExceeded { .. }) {
                self.stats.record_deadline_exceeded();
            }
            let mut fields = vec![("ok", Content::Bool(false))];
            if !id.is_null() {
                fields.push(("id", id));
            }
            push_error_fields(&mut fields, &e);
            clock.time(Stage::Serialize, || {
                // The NDJSON field encoder is infallible (no deadline).
                let _ = encode::encoder_for(WireEncoding::Ndjson)
                    .encode_response(&ResponseBody::Fields(fields), out);
            });
        }
        let latency = t0.elapsed();
        self.stats.record_request(latency, ok);
        // Flush the collected stage times in canonical pipeline order, so
        // a drained trace always reads parse → lookup → eval → degrade →
        // serialize (requests skip stages they never reached).
        for stage in STAGES {
            if let Some((start, dur)) = clock.spans[stage.index()] {
                self.stats.record_stage(stage, dur);
                self.tracer.record(stage.as_str(), start, dur);
            }
        }
        if let Some((_, dur)) = clock.spans[Stage::Serialize.index()] {
            self.stats.record_serialize_encoding(encoding, dur);
        }
        // Mirror the request into the owning shard's labeled metrics, so
        // cross-shard interference is readable straight from stats.
        if let Some(i) = shard_used {
            let m = &self.shards[i].metrics;
            m.requests.inc();
            if !ok {
                m.errors.inc();
            }
            m.latency_us
                .observe(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
            for stage in STAGES {
                if let Some((_, dur)) = clock.spans[stage.index()] {
                    m.stages[stage.index()].observe(dur);
                }
            }
        }
        Some(ResponseMeta { encoding, shutdown })
    }

    /// One NDJSON stats line: the server snapshot (with per-stage
    /// breakdown), registry counters, and how many trace spans the ring
    /// has overwritten.
    pub fn stats_line(&self) -> String {
        let mut out = Vec::new();
        self.stats_line_into(&mut out);
        String::from_utf8(out).expect("stats line is valid UTF-8")
    }

    /// As [`Server::stats_line`], appending to a reusable buffer.
    pub fn stats_line_into(&self, out: &mut Vec<u8>) {
        let server = serde_json::to_value(&self.stats.snapshot()).unwrap_or(Content::Null);
        let registry = serde_json::to_value(&self.registry_stats()).unwrap_or(Content::Null);
        let line = obj(vec![
            ("stats", Content::Bool(true)),
            ("server", server),
            ("registry", registry),
            ("spans_dropped", Content::U64(self.tracer.dropped())),
        ]);
        encode::encoder_for(WireEncoding::Ndjson).encode_stats(&line, out);
    }

    /// Runs the NDJSON loop until EOF or a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates transport read/write failures.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, writer: W) -> std::io::Result<()> {
        self.serve_with_stats(reader, writer, std::io::sink())
    }

    /// As [`Server::serve`], but additionally writes one NDJSON stats
    /// line (see [`Server::stats_line`]) to `stats_out` every
    /// [`ServerConfig::stats_every`] handled requests. The stats stream
    /// is separate from the response stream so programmatic clients
    /// reading responses never see an unsolicited line — `awesym serve
    /// --stats-every N` routes it to stderr.
    ///
    /// # Errors
    ///
    /// Propagates transport read/write failures on the request/response
    /// streams only. A stats-sink write failure never stops the loop:
    /// the line is dropped and counted in the `stats_dropped` counter.
    pub fn serve_with_stats<R: BufRead, W: Write, S: Write>(
        &self,
        reader: R,
        mut writer: W,
        mut stats_out: S,
    ) -> std::io::Result<()> {
        let every = self.config.stats_every;
        let mut handled: u64 = 0;
        // One response buffer per connection, reused across requests.
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        for line in reader.lines() {
            let line = line?;
            buf.clear();
            if let Some(meta) = self.handle_line_into(&line, &mut buf) {
                writer.write_all(&buf)?;
                // NDJSON responses are newline-framed; binary frames are
                // self-delimiting (explicit lengths in the header).
                if meta.encoding == WireEncoding::Ndjson {
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                handled += 1;
                if every > 0 && handled.is_multiple_of(every) {
                    buf.clear();
                    self.stats_line_into(&mut buf);
                    buf.push(b'\n');
                    // Stats are advisory: a slow or dead sink must never
                    // stall or kill the serve loop, so a failed write
                    // drops the line and counts the drop instead of
                    // propagating.
                    if stats_out
                        .write_all(&buf)
                        .and_then(|()| stats_out.flush())
                        .is_err()
                    {
                        self.stats.record_stats_dropped();
                    }
                }
                if meta.shutdown {
                    break;
                }
            }
        }
        Ok(())
    }
}

impl Default for Server {
    fn default() -> Self {
        Server::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

    fn compile_req(name: &str) -> String {
        let req = obj(vec![
            ("cmd", Content::Str("compile".into())),
            ("name", Content::Str(name.into())),
            ("netlist", Content::Str(NETLIST.into())),
            ("input", Content::Str("vin".into())),
            ("output", Content::Str("2".into())),
            (
                "symbols",
                Content::Seq(vec![Content::Str("C1".into()), Content::Str("R2:r".into())]),
            ),
            ("order", Content::U64(2)),
        ]);
        serde_json::to_string(&req).unwrap()
    }

    fn parse(resp: &Response) -> Content {
        serde_json::from_str(resp.text()).unwrap()
    }

    fn ok_of(c: &Content) -> bool {
        c.get("ok").and_then(Content::as_bool).unwrap()
    }

    #[test]
    fn compile_eval_batch_stats_shutdown_flow() {
        let s = Server::default();
        let r = s.handle_line(&compile_req("m")).unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text());
        assert!(c.get("op_count").and_then(Content::as_u64).unwrap() > 0);

        let r = s
            .handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1000.0],"kind":"dc_gain"}"#)
            .unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text());
        let dc = c
            .get("result")
            .and_then(|v| v.get("dc_gain"))
            .and_then(Content::as_f64)
            .unwrap();
        assert!((dc - 1.0).abs() < 1e-9);

        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3],[1e-9]],"kind":"moments","workers":2}"#,
            )
            .unwrap();
        let c = parse(&r);
        assert!(ok_of(&c), "{}", r.text());
        assert_eq!(c.get("count").and_then(Content::as_u64), Some(3));
        assert_eq!(c.get("ok_count").and_then(Content::as_u64), Some(2));
        let results = c.get("results").and_then(Content::as_seq).unwrap();
        assert!(results[2].get("error").is_some());
        assert_eq!(
            results[2].get("code").and_then(Content::as_str),
            Some("bad_request")
        );

        let r = s.handle_line(r#"{"cmd":"stats"}"#).unwrap();
        let c = parse(&r);
        assert!(ok_of(&c));
        let server = c.get("server").unwrap();
        assert!(server.get("requests").and_then(Content::as_u64).unwrap() >= 3);
        assert_eq!(
            server.get("batch_points").and_then(Content::as_u64),
            Some(3)
        );
        let registry = c.get("registry").unwrap();
        assert!(registry.get("hits").and_then(Content::as_u64).unwrap() >= 2);

        let r = s.handle_line(r#"{"cmd":"shutdown"}"#).unwrap();
        assert!(r.shutdown);
        assert!(ok_of(&parse(&r)));
    }

    #[test]
    fn errors_are_structured_and_nonfatal() {
        let s = Server::default();
        for bad in [
            "not json at all",
            r#"{"nocmd":1}"#,
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"eval","model":"ghost","values":[1.0]}"#,
            r#"{"cmd":"eval","model":"ghost"}"#,
            r#"{"cmd":"load","name":"x","path":"/nonexistent/a.awesym"}"#,
        ] {
            let r = s.handle_line(bad).unwrap();
            let c = parse(&r);
            assert!(!ok_of(&c), "{bad} -> {}", r.text());
            assert!(!r.shutdown);
            assert!(c.get("error").and_then(Content::as_str).is_some());
            // Every failure carries a stable machine-readable code.
            assert!(c.get("code").and_then(Content::as_str).is_some(), "{bad}");
        }
        // Still serving after all those failures.
        let r = s.handle_line(&compile_req("m")).unwrap();
        assert!(ok_of(&parse(&r)));
        assert!(s.handle_line("   ").is_none());
    }

    fn code_of(c: &Content) -> Option<&str> {
        c.get("code").and_then(Content::as_str)
    }

    #[test]
    fn error_codes_identify_failure_classes() {
        let s = Server::default();
        let r = s.handle_line(r#"{"cmd":"nope"}"#).unwrap();
        assert_eq!(code_of(&parse(&r)), Some("bad_request"));
        let r = s
            .handle_line(r#"{"cmd":"eval","model":"ghost","values":[1.0]}"#)
            .unwrap();
        assert_eq!(code_of(&parse(&r)), Some("not_found"));
    }

    #[test]
    fn non_finite_symbol_values_are_rejected() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        // JSON has no NaN literal, but `null` deserializes to one through
        // the lenient f64 path — so guard the typed path directly too.
        let r = s
            .handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,null]}"#)
            .unwrap();
        let c = parse(&r);
        assert!(!ok_of(&c), "{}", r.text());
        assert_eq!(code_of(&c), Some("bad_request"));
        let err = point_from(
            &Content::Seq(vec![Content::F64(1.0), Content::F64(f64::NAN)]),
            "'values'",
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn oversized_lines_and_batches_are_rejected() {
        let s = Server::with_config(ServerConfig {
            max_line_bytes: 4096,
            max_batch_points: 2,
            ..ServerConfig::default()
        });
        let long = format!(r#"{{"cmd":"stats","pad":"{}"}}"#, "x".repeat(8192));
        let c = parse(&s.handle_line(&long).unwrap());
        assert!(!ok_of(&c));
        assert_eq!(code_of(&c), Some("bad_request"));
        s.handle_line(&compile_req("m")).unwrap();
        let c = parse(
            &s.handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[1e-9,1e3],[1e-9,1e3]]}"#,
            )
            .unwrap(),
        );
        assert!(!ok_of(&c));
        assert!(c
            .get("error")
            .and_then(Content::as_str)
            .unwrap()
            .contains("limit is 2"));
        // At the limit still works.
        let c = parse(
            &s.handle_line(r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[1e-9,1e3]]}"#)
                .unwrap(),
        );
        assert!(ok_of(&c), "{c:?}");
    }

    #[test]
    fn expired_deadline_is_a_typed_error_and_serving_continues() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        // deadline_ms of 0 expires immediately: eval reports the typed
        // code, batch answers with per-point deadline errors and a flag.
        let c = parse(
            &s.handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3],"deadline_ms":0}"#)
                .unwrap(),
        );
        assert!(!ok_of(&c));
        assert_eq!(code_of(&c), Some("deadline_exceeded"));
        let c = parse(
            &s.handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3]],"deadline_ms":0}"#,
            )
            .unwrap(),
        );
        assert!(ok_of(&c), "{c:?}");
        assert_eq!(
            c.get("deadline_exceeded").and_then(Content::as_bool),
            Some(true)
        );
        let results = c.get("results").and_then(Content::as_seq).unwrap();
        assert!(results
            .iter()
            .all(|r| r.get("code").and_then(Content::as_str) == Some("deadline_exceeded")));
        // The next request is unaffected.
        let c = parse(
            &s.handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#)
                .unwrap(),
        );
        assert!(ok_of(&c), "{c:?}");
        let server_stats = parse(&s.handle_line(r#"{"cmd":"stats"}"#).unwrap());
        let deadlines = server_stats
            .get("server")
            .and_then(|v| v.get("deadlines_exceeded"))
            .and_then(Content::as_u64)
            .unwrap();
        assert_eq!(deadlines, 2);
    }

    #[test]
    fn inflight_budget_sheds_with_retry_hint() {
        let s = Server::with_config(ServerConfig {
            max_inflight: 1,
            retry_after_ms: 77,
            ..ServerConfig::default()
        });
        s.handle_line(&compile_req("m")).unwrap();
        let held = s.admit().unwrap();
        let c = parse(
            &s.handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#)
                .unwrap(),
        );
        assert!(!ok_of(&c));
        assert_eq!(code_of(&c), Some("overloaded"));
        assert_eq!(c.get("retry_after_ms").and_then(Content::as_u64), Some(77));
        // Cheap commands still answer while the budget is exhausted.
        assert!(ok_of(&parse(&s.handle_line(r#"{"cmd":"stats"}"#).unwrap())));
        drop(held);
        let c = parse(
            &s.handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#)
                .unwrap(),
        );
        assert!(ok_of(&c), "{c:?}");
        let snap = s.stats.snapshot();
        assert_eq!(snap.requests_shed, 1);
    }

    #[test]
    fn overload_hint_scales_with_queue_depth() {
        let s = Server::with_config(ServerConfig {
            max_inflight: 2,
            retry_after_ms: 50,
            ..ServerConfig::default()
        });
        s.handle_line(&compile_req("m")).unwrap();
        let hint_at_depth = |depth: usize| {
            // Simulate `depth` requests already in flight, then watch the
            // next admit shed.
            s.inflight.store(depth, Ordering::SeqCst);
            let c = parse(
                &s.handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#)
                    .unwrap(),
            );
            assert_eq!(code_of(&c), Some("overloaded"), "{c:?}");
            c.get("retry_after_ms").and_then(Content::as_u64).unwrap()
        };
        // At the budget boundary the hint is the configured base; deeper
        // queues produce strictly longer hints.
        assert_eq!(hint_at_depth(2), 50);
        assert_eq!(hint_at_depth(4), 100);
        assert_eq!(hint_at_depth(10), 250);
        s.inflight.store(0, Ordering::SeqCst);
    }

    /// A sink whose writes always fail.
    struct BrokenSink;

    impl Write for BrokenSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("sink is broken"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("sink is broken"))
        }
    }

    #[test]
    fn failing_stats_sink_never_stalls_the_serve_loop() {
        let s = Server::with_config(ServerConfig {
            stats_every: 1,
            ..ServerConfig::default()
        });
        let mut input = compile_req("m");
        input.push('\n');
        for _ in 0..3 {
            input.push_str(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#);
            input.push('\n');
        }
        let mut out = Vec::new();
        s.serve_with_stats(input.as_bytes(), &mut out, BrokenSink)
            .unwrap();
        // Every request answered despite 4 failed stats writes.
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 4, "{text}");
        for l in text.lines() {
            assert!(ok_of(&serde_json::from_str(l).unwrap()), "{l}");
        }
        let snap = s.stats.snapshot();
        assert_eq!(snap.stats_dropped, 4);
        // And the drop counter is visible on the stats command.
        let c = parse(&s.handle_line(r#"{"cmd":"stats"}"#).unwrap());
        assert_eq!(
            c.get("server")
                .and_then(|v| v.get("stats_dropped"))
                .and_then(Content::as_u64),
            Some(4)
        );
    }

    #[test]
    fn sharded_server_routes_by_name_and_reports_health() {
        let s = Server::with_config(ServerConfig {
            shards: 4,
            shard_workers: 1,
            ..ServerConfig::default()
        });
        // Place models on their owning shards and evaluate each.
        for name in ["alpha", "beta", "gamma", "delta"] {
            let c = parse(&s.handle_line(&compile_req(name)).unwrap());
            assert!(ok_of(&c));
            let shard = c.get("shard").and_then(Content::as_u64).unwrap();
            assert_eq!(
                shard as usize,
                crate::shard_of(name, 4),
                "{name} placed on its hash shard"
            );
            let req =
                format!(r#"{{"cmd":"batch","model":"{name}","points":[[1e-9,1e3],[2e-9,2e3]]}}"#);
            let c = parse(&s.handle_line(&req).unwrap());
            assert!(ok_of(&c), "{c:?}");
            assert_eq!(c.get("ok_count").and_then(Content::as_u64), Some(2));
        }
        // Health: all shards ready, workers alive, nothing restarted.
        let c = parse(&s.handle_line(r#"{"cmd":"health"}"#).unwrap());
        assert!(ok_of(&c));
        assert_eq!(c.get("ready").and_then(Content::as_bool), Some(true));
        let shards = c.get("shards").and_then(Content::as_seq).unwrap();
        assert_eq!(shards.len(), 4);
        for (i, sh) in shards.iter().enumerate() {
            assert_eq!(sh.get("shard").and_then(Content::as_u64), Some(i as u64));
            assert_eq!(sh.get("breaker").and_then(Content::as_str), Some("closed"));
            assert_eq!(sh.get("alive").and_then(Content::as_u64), Some(1));
            assert_eq!(sh.get("restarts").and_then(Content::as_u64), Some(0));
        }
        // Stats carry the per-shard section and per-shard stage metrics.
        let c = parse(&s.handle_line(r#"{"cmd":"stats"}"#).unwrap());
        let models = c.get("models").and_then(Content::as_seq).unwrap();
        assert_eq!(models.len(), 4);
        assert_eq!(
            c.get("shards").and_then(Content::as_seq).map(<[_]>::len),
            Some(4)
        );
        let metrics = s.stats().metrics_ndjson();
        let victim = crate::shard_of("alpha", 4);
        assert!(
            metrics.contains(&format!("\"metric\":\"shard{victim}_requests_total\"")),
            "per-shard request counters registered"
        );
        assert!(
            metrics.contains(&format!(
                "\"metric\":\"shard{victim}_request_stage_eval_ns\""
            )),
            "per-shard stage histograms registered"
        );
        // Drain: evaluation refused with a typed unavailable, cheap
        // commands still answered, shutdown still works.
        let c = parse(&s.handle_line(r#"{"cmd":"drain"}"#).unwrap());
        assert!(ok_of(&c));
        assert_eq!(c.get("draining").and_then(Content::as_bool), Some(true));
        assert_eq!(c.get("pending").and_then(Content::as_u64), Some(0));
        let c = parse(
            &s.handle_line(r#"{"cmd":"eval","model":"alpha","values":[1e-9,1e3]}"#)
                .unwrap(),
        );
        assert_eq!(code_of(&c), Some("unavailable"), "{c:?}");
        assert!(c.get("retry_after_ms").and_then(Content::as_u64).is_some());
        assert_eq!(
            c.get("shard").and_then(Content::as_u64),
            Some(crate::shard_of("alpha", 4) as u64)
        );
        let c = parse(&s.handle_line(r#"{"cmd":"health"}"#).unwrap());
        assert_eq!(c.get("ready").and_then(Content::as_bool), Some(false));
        assert!(ok_of(&parse(&s.handle_line(r#"{"cmd":"stats"}"#).unwrap())));
    }

    #[test]
    fn single_shard_registry_accessor_stays_compatible() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        // The legacy accessor sees models on the default single shard.
        assert!(s.registry().get("m").is_some());
        assert_eq!(s.registry_stats().resident, 1);
    }

    #[test]
    fn id_field_is_echoed() {
        let s = Server::default();
        let r = s.handle_line(r#"{"cmd":"stats","id":42}"#).unwrap();
        let c = parse(&r);
        assert_eq!(c.get("id").and_then(Content::as_u64), Some(42));
        let r = s.handle_line(r#"{"cmd":"nope","id":"abc"}"#).unwrap();
        let c = parse(&r);
        assert_eq!(c.get("id").and_then(Content::as_str), Some("abc"));
    }

    #[test]
    fn batch_request_emits_stage_spans_in_canonical_order() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        s.tracer().drain(); // discard the compile request's spans
        let r = s
            .handle_line(r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3]]}"#)
            .unwrap();
        assert!(ok_of(&parse(&r)), "{}", r.text());
        let spans = s.tracer().drain();
        let names: Vec<&str> = spans.iter().map(|rec| rec.name).collect();
        assert_eq!(
            names,
            ["parse", "lookup", "eval", "degrade", "serialize"],
            "one span per stage, pipeline order"
        );
        // Starts are monotone in pipeline order and durations are sane.
        for pair in spans.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns, "{names:?}");
        }
        assert!(spans.iter().all(|rec| rec.dur_ns > 0 || rec.name != "eval"));
        // The same stages landed in the histograms (the compile request
        // contributed one extra parse and serialize observation).
        let snap = s.stats.snapshot();
        let counts: Vec<u64> = snap.stages.iter().map(|st| st.count).collect();
        assert_eq!(counts, [2, 1, 1, 1, 2], "{:?}", snap.stages);
    }

    #[test]
    fn failed_lookup_skips_downstream_stages() {
        let s = Server::default();
        let r = s
            .handle_line(r#"{"cmd":"eval","model":"ghost","values":[1.0]}"#)
            .unwrap();
        assert!(!ok_of(&parse(&r)));
        let names: Vec<&str> = s.tracer().drain().iter().map(|rec| rec.name).collect();
        assert_eq!(names, ["parse", "lookup", "serialize"]);
        let snap = s.stats.snapshot();
        assert_eq!(snap.stages[2].count, 0, "eval never ran");
        assert_eq!(snap.stages[3].count, 0, "degrade never ran");
    }

    #[test]
    fn observe_off_records_no_stages_or_spans() {
        let s = Server::with_config(ServerConfig {
            observe: false,
            ..ServerConfig::default()
        });
        s.handle_line(&compile_req("m")).unwrap();
        let r = s
            .handle_line(r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]]}"#)
            .unwrap();
        assert!(ok_of(&parse(&r)), "{}", r.text());
        assert!(s.tracer().drain().is_empty());
        let snap = s.stats.snapshot();
        assert!(snap.stages.iter().all(|st| st.count == 0), "{snap:?}");
        // Plain request accounting still works.
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.batch_points, 1);
    }

    #[test]
    fn stats_every_emits_periodic_ndjson_lines() {
        let s = Server::with_config(ServerConfig {
            stats_every: 2,
            ..ServerConfig::default()
        });
        let mut input = compile_req("m");
        input.push('\n');
        for _ in 0..3 {
            input.push_str(r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3]]}"#);
            input.push('\n');
        }
        let (mut out, mut stats) = (Vec::new(), Vec::new());
        s.serve_with_stats(input.as_bytes(), &mut out, &mut stats)
            .unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 4);
        let stats = String::from_utf8(stats).unwrap();
        let lines: Vec<&str> = stats.lines().collect();
        assert_eq!(lines.len(), 2, "4 requests / every-2 = 2 lines\n{stats}");
        for l in &lines {
            let c: Content = serde_json::from_str(l).unwrap();
            assert_eq!(c.get("stats").and_then(Content::as_bool), Some(true));
            let server = c.get("server").unwrap();
            let stages = server.get("stages").and_then(Content::as_seq).unwrap();
            assert_eq!(stages.len(), 5, "{l}");
            assert!(c.get("registry").is_some());
        }
        // The last line reflects all three batch requests' eval stages.
        let last: Content = serde_json::from_str(lines[1]).unwrap();
        let stages = last
            .get("server")
            .and_then(|s| s.get("stages"))
            .and_then(Content::as_seq)
            .unwrap();
        let eval = stages
            .iter()
            .find(|st| st.get("stage").and_then(Content::as_str) == Some("eval"))
            .unwrap();
        assert_eq!(eval.get("count").and_then(Content::as_u64), Some(3));
        assert!(eval.get("total_ns").and_then(Content::as_u64).unwrap() > 0);
    }

    #[test]
    fn serve_loop_over_buffers() {
        let s = Server::default();
        let mut input = compile_req("m");
        input.push('\n');
        input.push_str(r#"{"cmd":"eval","model":"m","values":[1e-9,1000.0]}"#);
        input.push('\n');
        input.push_str(r#"{"cmd":"shutdown"}"#);
        input.push('\n');
        // Lines after shutdown must not be processed.
        input.push_str(r#"{"cmd":"stats"}"#);
        input.push('\n');
        let mut out = Vec::new();
        s.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for l in &lines {
            let c: Content = serde_json::from_str(l).unwrap();
            assert!(ok_of(&c), "{l}");
        }
    }

    #[test]
    fn binary_negotiation_returns_a_frame_matching_ndjson_values() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        let req = r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3],[2e-9,2e3],[1e-9]],"kind":"moments"}"#;
        let nd = s.handle_line(req).unwrap();
        assert_eq!(nd.encoding, WireEncoding::Ndjson);
        let bin = s
            .handle_line(&req.replace("\"kind\"", "\"encoding\":\"binary-v1\",\"kind\""))
            .unwrap();
        assert_eq!(bin.encoding, WireEncoding::BinaryV1);
        let frame = crate::encode::decode_frame(&bin.body).unwrap();
        assert_eq!(frame.count, 3);
        assert_eq!(frame.cols, 4, "order-2 model has 4 moments");
        assert_eq!(frame.ok_count, 2);
        assert_eq!(
            frame.code(2),
            Some(crate::ErrorCode::BadRequest),
            "arity error travels as a status byte"
        );
        // Values are bit-identical to the NDJSON path.
        let c = parse(&nd);
        let results = c.get("results").and_then(Content::as_seq).unwrap();
        for i in 0..2 {
            let m = results[i].get("moments").and_then(Content::as_seq).unwrap();
            for (col, v) in m.iter().enumerate() {
                assert_eq!(
                    frame.columns[col][i].to_bits(),
                    v.as_f64().unwrap().to_bits(),
                    "point {i} col {col}"
                );
            }
        }
        assert!(frame.columns.iter().all(|col| col[2].is_nan()));
    }

    #[test]
    fn binary_negotiation_rejections_are_typed_ndjson() {
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        // Unknown token.
        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]],"encoding":"binary-v2"}"#,
            )
            .unwrap();
        assert_eq!(r.encoding, WireEncoding::Ndjson);
        let c = parse(&r);
        assert!(!ok_of(&c));
        assert_eq!(code_of(&c), Some("bad_request"));
        assert!(r.text().contains("ndjson|binary-v1"), "{}", r.text());
        // Binary on a non-batch command.
        let r = s
            .handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3],"encoding":"binary-v1"}"#)
            .unwrap();
        assert_eq!(code_of(&parse(&r)), Some("bad_request"));
        // Variable-width kind.
        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]],"kind":"rom","encoding":"binary-v1"}"#,
            )
            .unwrap();
        let c = parse(&r);
        assert_eq!(code_of(&c), Some("bad_request"));
        assert!(r.text().contains("rom"), "{}", r.text());
        // Explicit ndjson is accepted anywhere.
        let r = s
            .handle_line(r#"{"cmd":"eval","model":"m","values":[1e-9,1e3],"encoding":"ndjson"}"#)
            .unwrap();
        assert!(ok_of(&parse(&r)), "{}", r.text());
        // And the server still answers afterwards.
        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]],"encoding":"binary-v1"}"#,
            )
            .unwrap();
        assert_eq!(r.encoding, WireEncoding::BinaryV1);
        crate::encode::decode_frame(&r.body).unwrap();
    }

    #[test]
    fn serve_loop_interleaves_binary_frames_without_newlines() {
        let s = Server::default();
        let mut input = compile_req("m");
        input.push('\n');
        input.push_str(r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]],"kind":"dc_gain","encoding":"binary-v1"}"#);
        input.push('\n');
        input.push_str(r#"{"cmd":"shutdown"}"#);
        input.push('\n');
        let mut out = Vec::new();
        s.serve(input.as_bytes(), &mut out).unwrap();
        // compile line + '\n', then a self-delimiting frame, then the
        // shutdown line + '\n'.
        let first_nl = out.iter().position(|&b| b == b'\n').unwrap();
        let rest = &out[first_nl + 1..];
        assert_eq!(&rest[..4], b"AWSB");
        let frame_len = crate::encode::BINARY_HEADER_LEN + 1 + 8;
        let frame = crate::encode::decode_frame(&rest[..frame_len]).unwrap();
        assert_eq!(frame.count, 1);
        assert_eq!(frame.cols, 1);
        let tail = String::from_utf8(rest[frame_len..].to_vec()).unwrap();
        let c: Content = serde_json::from_str(tail.trim()).unwrap();
        assert_eq!(c.get("shutdown").and_then(Content::as_bool), Some(true));
    }

    #[test]
    fn batch_deadline_covers_encode_time() {
        // A 0 ms deadline with evaluation already expired: the response
        // still reports per-point deadline errors (evaluation owns the
        // report), even though encoding also ran past the deadline.
        let s = Server::default();
        s.handle_line(&compile_req("m")).unwrap();
        let r = s
            .handle_line(
                r#"{"cmd":"batch","model":"m","points":[[1e-9,1e3]],"deadline_ms":0,"encoding":"binary-v1"}"#,
            )
            .unwrap();
        assert_eq!(r.encoding, WireEncoding::BinaryV1);
        let frame = crate::encode::decode_frame(&r.body).unwrap();
        assert!(frame.deadline_exceeded, "flag bit set");
        assert_eq!(frame.code(0), Some(crate::ErrorCode::DeadlineExceeded));
    }
}
