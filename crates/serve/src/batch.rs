//! Concurrent batch evaluation over a shared compiled model.
//!
//! A compiled model's evaluation is a pure function of the symbol values
//! (a flat tape replay plus a tiny Padé solve), so fanning a batch of
//! points across threads is embarrassingly parallel: each worker owns a
//! disjoint slice of the result vector and a private
//! [`Evaluator`] (which carries its own
//! scratch), and the shared model is only read. Results always come back
//! in input order, and a bad point (wrong arity, unstable ROM, …) yields
//! a per-point [`PointError`] instead of aborting the batch. Moment-only
//! batches additionally take the blocked SoA `eval_batch` kernel — one
//! tape walk per block of points instead of per point.
//!
//! This module is also the process's blast shield:
//!
//! - **panic isolation** — every point evaluation runs under
//!   `catch_unwind`, so a poisoned point becomes a `PointError` with code
//!   `internal` and the rest of the batch (and the server) keeps going;
//! - **numeric health** — non-finite moments are rejected as
//!   `numeric_unstable` instead of being returned, and ROM construction
//!   reports when it had to degrade to a lower approximation order;
//! - **deadlines** — [`evaluate_batch_guarded`] checks a deadline
//!   cooperatively between points and marks unevaluated points
//!   `deadline_exceeded` instead of running arbitrarily long;
//! - **fault injection** — with the `fault-injection` feature, installed
//!   `crate::faults` plans inject panics, NaN moments, and slowdowns per
//!   point, deterministically.

use crate::error::{partition_code, PointError};
use awesym_partition::{CompiledModel, Degradation, Evaluator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Points evaluated between deadline checks (and per SoA sub-block).
const CHECK_STRIDE: usize = 32;

/// What to compute for each point of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutput {
    /// The raw `2q` moments.
    Moments,
    /// Full reduced-order model: poles, residues, DC gain, 50 % delay.
    Rom,
    /// DC gain only (first moment).
    DcGain,
    /// Unit-step response sampled at the given times.
    Step {
        /// Sample times in seconds.
        times: Vec<f64>,
    },
    /// The moment-based delay-metric family.
    Delays,
}

/// Pole/residue summary of a reduced-order model, flattened to plain
/// arrays for transport.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RomSummary {
    /// Real parts of the poles (rad/s).
    pub poles_re: Vec<f64>,
    /// Imaginary parts of the poles.
    pub poles_im: Vec<f64>,
    /// Real parts of the residues.
    pub residues_re: Vec<f64>,
    /// Imaginary parts of the residues.
    pub residues_im: Vec<f64>,
    /// DC gain.
    pub dc_gain: f64,
    /// All poles in the open left half-plane?
    pub stable: bool,
    /// 50 % step delay, when the response crosses it.
    pub delay_50: Option<f64>,
    /// The numeric-health fallback that fired, when the exact order was
    /// rejected and a lower order was served.
    pub degraded: Option<Degradation>,
}

/// The delay-metric family, mirroring [`awesym_awe::DelayEstimates`] with
/// serde support.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DelaySummary {
    /// Elmore delay `−m₁`.
    pub elmore: f64,
    /// `ln2 · (−m₁)`.
    pub ln2_elmore: f64,
    /// The D2M metric.
    pub d2m: f64,
    /// Two-pole 50 % delay, when the fit exists.
    pub two_pole: Option<f64>,
}

impl From<awesym_awe::DelayEstimates> for DelaySummary {
    fn from(d: awesym_awe::DelayEstimates) -> Self {
        DelaySummary {
            elmore: d.elmore,
            ln2_elmore: d.ln2_elmore,
            d2m: d.d2m,
            two_pole: d.two_pole,
        }
    }
}

/// One point's successful result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PointValue {
    /// Raw moments.
    Moments(Vec<f64>),
    /// Pole/residue model.
    Rom(RomSummary),
    /// DC gain.
    DcGain(f64),
    /// Step-response samples.
    Step {
        /// The sampled response values.
        samples: Vec<f64>,
        /// The numeric-health fallback that fired, if any.
        degraded: Option<Degradation>,
    },
    /// Delay metrics.
    Delays(DelaySummary),
}

/// One point's outcome: a value or a structured point-local error.
pub type PointResult = Result<PointValue, PointError>;

/// A guarded batch run's results plus its health counters.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-point outcomes, in input order — one per input point, always.
    pub results: Vec<PointResult>,
    /// Panics caught and converted to `internal` point errors.
    pub panics_caught: u64,
    /// Points whose ROM degraded to a lower approximation order.
    pub degraded_points: u64,
    /// True when the deadline fired before every point was evaluated.
    pub deadline_exceeded: bool,
}

/// Shared per-batch control block: the deadline, the health counters the
/// workers update, and the id of the shard evaluating the batch (0 on
/// unsharded paths; fault plans can target one shard).
pub(crate) struct BatchCtl {
    pub(crate) deadline: Option<Instant>,
    pub(crate) expired: AtomicBool,
    pub(crate) panics: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) shard: usize,
}

impl BatchCtl {
    /// A fresh control block for one batch evaluated by `shard`.
    pub(crate) fn new(deadline: Option<Instant>, shard: usize) -> Self {
        BatchCtl {
            deadline,
            expired: AtomicBool::new(false),
            panics: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shard,
        }
    }

    /// True once the deadline has passed. Sticky: the first worker to
    /// notice flips a flag all workers see without re-reading the clock.
    pub(crate) fn check_expired(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.expired.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Applies any injected fault for the point at `index`: sleeps through
/// `Slow`, panics for `Panic`, and returns `true` when the point's
/// moments must be poisoned with NaN. A no-op (always `false`) without
/// the `fault-injection` feature.
#[inline]
fn apply_injected_fault(shard: usize, index: usize) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        use crate::faults::{fault_for_point_on, Fault};
        match fault_for_point_on(shard, index) {
            Some(Fault::Panic) => panic!("injected fault: panic at point {index}"),
            Some(Fault::Slow(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Fault::NanMoments) => true,
            None => false,
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (shard, index);
        false
    }
}

/// True when a fault plan is installed (forces the per-point path so
/// every point passes the injection hook). Always `false` without the
/// `fault-injection` feature.
#[inline]
pub(crate) fn faults_active() -> bool {
    #[cfg(feature = "fault-injection")]
    {
        crate::faults::active()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        false
    }
}

/// Renders a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn rom_summary(
    model: &CompiledModel,
    moments: &[f64],
) -> Result<(RomSummary, Option<Degradation>), PointError> {
    let (rom, degraded) = model
        .rom_degraded_from_moments(moments)
        .map_err(|e| PointError::new(partition_code(&e), e.to_string()))?;
    let summary = RomSummary {
        poles_re: rom.poles().iter().map(|p| p.re).collect(),
        poles_im: rom.poles().iter().map(|p| p.im).collect(),
        residues_re: rom.residues().iter().map(|k| k.re).collect(),
        residues_im: rom.residues().iter().map(|k| k.im).collect(),
        dc_gain: rom.dc_gain(),
        stable: rom.is_stable(),
        delay_50: rom.delay_50(),
        degraded: degraded.clone(),
    };
    Ok((summary, degraded))
}

/// Evaluates one point through a worker's [`Evaluator`]; `moments` is the
/// worker's reused `2q` output buffer. `index` is the point's position in
/// the whole batch (for fault injection). Increments `ctl.degraded` when
/// a ROM fallback fires.
fn eval_point(
    model: &CompiledModel,
    ev: &Evaluator<'_>,
    vals: &[f64],
    output: &BatchOutput,
    moments: &mut [f64],
    index: usize,
    ctl: &BatchCtl,
) -> PointResult {
    let n_sym = ev.n_inputs();
    if vals.len() != n_sym {
        return Err(PointError::bad_request(format!(
            "point has {} values, model has {n_sym} symbols",
            vals.len()
        )));
    }
    let poison = apply_injected_fault(ctl.shard, index);
    // Single tape replay covers every output kind — the ROM paths reuse
    // the already-evaluated moments instead of replaying the tape again.
    ev.eval_into(vals, moments);
    if poison {
        moments.fill(f64::NAN);
    }
    // Numeric health gate: never hand back NaN/Inf moments (a division by
    // a zero-valued symbol combination, or an injected fault).
    if moments.iter().any(|m| !m.is_finite()) {
        return Err(PointError::numeric(
            "evaluation produced non-finite moments",
        ));
    }
    let note_degraded = |d: &Option<Degradation>| {
        if d.is_some() {
            ctl.degraded.fetch_add(1, Ordering::Relaxed);
        }
    };
    match output {
        BatchOutput::Moments => Ok(PointValue::Moments(moments.to_vec())),
        BatchOutput::DcGain => Ok(PointValue::DcGain(moments[0])),
        BatchOutput::Rom => {
            let (summary, degraded) = rom_summary(model, moments)?;
            note_degraded(&degraded);
            Ok(PointValue::Rom(summary))
        }
        BatchOutput::Step { times } => {
            let (rom, degraded) = model
                .rom_degraded_from_moments(moments)
                .map_err(|e| PointError::new(partition_code(&e), e.to_string()))?;
            note_degraded(&degraded);
            Ok(PointValue::Step {
                samples: rom.step_response_series(times),
                degraded,
            })
        }
        BatchOutput::Delays => awesym_awe::delay_estimates(moments)
            .map(|d| PointValue::Delays(d.into()))
            .map_err(|e| PointError::numeric(e.to_string())),
    }
}

/// [`eval_point`] behind `catch_unwind`: a panic in the tape replay, the
/// Padé solve, or an injected fault becomes an `internal` point error.
/// The evaluator is passed by `&mut Option` so it can be rebuilt after a
/// panic (its scratch state is suspect mid-unwind).
#[allow(clippy::too_many_arguments)]
fn eval_point_guarded<'m>(
    model: &'m CompiledModel,
    ev: &mut Option<Evaluator<'m>>,
    vals: &[f64],
    output: &BatchOutput,
    moments: &mut [f64],
    index: usize,
    ctl: &BatchCtl,
) -> PointResult {
    let evaluator = ev.get_or_insert_with(|| model.evaluator());
    let r = catch_unwind(AssertUnwindSafe(|| {
        eval_point(model, evaluator, vals, output, moments, index, ctl)
    }));
    match r {
        Ok(point_result) => point_result,
        Err(payload) => {
            ctl.panics.fetch_add(1, Ordering::Relaxed);
            *ev = None; // rebuild: scratch may hold partial state
            Err(PointError::internal(format!(
                "evaluation panicked: {}",
                panic_message(payload.as_ref())
            )))
        }
    }
}

/// Marks every unfilled slot from `from` onward as deadline-exceeded.
fn mark_deadline(slots: &mut [Option<PointResult>], from: usize) {
    for slot in &mut slots[from..] {
        if slot.is_none() {
            *slot = Some(Err(PointError::deadline(
                "deadline expired before this point was evaluated",
            )));
        }
    }
}

/// Evaluates one worker's chunk; `base` is the chunk's offset in the
/// whole batch. Moment-only chunks whose points all have the right arity
/// go through the SoA batch kernel (in deadline-check sub-blocks);
/// anything else — including any run with fault injection active — falls
/// back to the per-point path. Shared with the persistent worker pool
/// (`crate::pool`), which calls it once per claimed chunk.
pub(crate) fn eval_chunk(
    model: &CompiledModel,
    points: &[Vec<f64>],
    output: &BatchOutput,
    slots: &mut [Option<PointResult>],
    base: usize,
    ctl: &BatchCtl,
) {
    let mut ev: Option<Evaluator<'_>> = Some(model.evaluator());
    let n_m = ev.as_ref().map_or(0, Evaluator::n_outputs);
    let n_in = ev.as_ref().map_or(0, Evaluator::n_inputs);
    let soa_eligible = matches!(output, BatchOutput::Moments)
        && !faults_active()
        && points.iter().all(|p| p.len() == n_in);
    if soa_eligible {
        let mut flat = vec![0.0; CHECK_STRIDE * n_m];
        let mut done = 0;
        while done < points.len() {
            if ctl.check_expired() {
                mark_deadline(slots, done);
                return;
            }
            let end = (done + CHECK_STRIDE).min(points.len());
            let block = &points[done..end];
            let out = &mut flat[..(end - done) * n_m];
            let evaluator = ev.get_or_insert_with(|| model.evaluator());
            let run = catch_unwind(AssertUnwindSafe(|| evaluator.try_eval_batch(block, out)));
            match run {
                Ok(Ok(())) => {
                    for (slot, row) in slots[done..end].iter_mut().zip(out.chunks_exact(n_m)) {
                        *slot = Some(if row.iter().all(|m| m.is_finite()) {
                            Ok(PointValue::Moments(row.to_vec()))
                        } else {
                            Err(PointError::numeric(
                                "evaluation produced non-finite moments",
                            ))
                        });
                    }
                }
                Ok(Err(shape)) => {
                    // Unreachable (arity pre-checked), but degrade to a
                    // per-point error rather than trusting it.
                    for slot in &mut slots[done..end] {
                        *slot = Some(Err(PointError::bad_request(shape.to_string())));
                    }
                }
                Err(_payload) => {
                    // A panic inside the SoA kernel: isolate the poisoned
                    // point(s) by replaying this block point by point
                    // (each replay produces its own per-point error).
                    ctl.panics.fetch_add(1, Ordering::Relaxed);
                    ev = None;
                    let mut moments = vec![0.0; n_m];
                    for (i, (slot, point)) in
                        slots[done..end].iter_mut().zip(block.iter()).enumerate()
                    {
                        *slot = Some(eval_point_guarded(
                            model,
                            &mut ev,
                            point,
                            output,
                            &mut moments,
                            base + done + i,
                            ctl,
                        ));
                    }
                }
            }
            done = end;
        }
        return;
    }
    let mut moments = vec![0.0; n_m];
    // The slow path is one tape replay (and possibly a Padé solve) per
    // point — a clock read per point is noise, so check every time.
    for i in 0..points.len() {
        if ctl.check_expired() {
            mark_deadline(&mut slots[i..], 0);
            return;
        }
        slots[i] = Some(eval_point_guarded(
            model,
            &mut ev,
            &points[i],
            output,
            &mut moments,
            base + i,
            ctl,
        ));
    }
}

/// Worker-count default: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Evaluates `points` against `model`, fanning across `workers` threads
/// (`None` → [`default_workers`]). Results are returned in input order;
/// each point independently succeeds or reports a structured
/// [`PointError`] — a panic inside one point's evaluation is caught and
/// isolated, never aborting the batch or the process.
pub fn evaluate_batch(
    model: &CompiledModel,
    points: &[Vec<f64>],
    output: &BatchOutput,
    workers: Option<usize>,
) -> Vec<PointResult> {
    evaluate_batch_guarded(model, points, output, workers, None).results
}

/// As [`evaluate_batch`], with a cooperative deadline and health
/// counters. Workers check the deadline between points (every
/// `CHECK_STRIDE` points on the fast path); once it expires, remaining
/// points are marked `deadline_exceeded` instead of being evaluated, so a
/// runaway request bounds its own latency.
pub fn evaluate_batch_guarded(
    model: &CompiledModel,
    points: &[Vec<f64>],
    output: &BatchOutput,
    workers: Option<usize>,
    deadline: Option<Instant>,
) -> BatchOutcome {
    let n = points.len();
    let ctl = BatchCtl::new(deadline, 0);
    let mut results: Vec<Option<PointResult>> = vec![None; n];
    if n > 0 {
        let workers = workers.unwrap_or_else(default_workers).clamp(1, n);
        let chunk = n.div_ceil(workers);
        if workers == 1 {
            // Serial fast path: no thread spawn, same chunk code.
            eval_chunk(model, points, output, &mut results, 0, &ctl);
        } else {
            std::thread::scope(|s| {
                for (w, (out_chunk, in_chunk)) in results
                    .chunks_mut(chunk)
                    .zip(points.chunks(chunk))
                    .enumerate()
                {
                    let ctl = &ctl;
                    s.spawn(move || eval_chunk(model, in_chunk, output, out_chunk, w * chunk, ctl));
                }
            });
        }
    }
    BatchOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("slot filled"))
            .collect(),
        panics_caught: ctl.panics.load(Ordering::Relaxed),
        degraded_points: ctl.degraded.load(Ordering::Relaxed),
        deadline_exceeded: ctl.expired.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;
    use awesym_partition::SymbolBinding;
    use std::time::Duration;

    fn model2() -> CompiledModel {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
    }

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t]
            })
            .collect()
    }

    #[test]
    fn batch_matches_direct_evaluation_in_order() {
        let m = model2();
        let pts = grid(64);
        let got = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(4));
        assert_eq!(got.len(), pts.len());
        for (r, p) in got.iter().zip(&pts) {
            assert_eq!(r.as_ref().unwrap(), &PointValue::Moments(m.eval_moments(p)));
        }
    }

    #[test]
    fn worker_counts_agree() {
        let m = model2();
        let pts = grid(37);
        let base = evaluate_batch(&m, &pts, &BatchOutput::Rom, Some(1));
        for w in [2, 3, 8, 64] {
            assert_eq!(evaluate_batch(&m, &pts, &BatchOutput::Rom, Some(w)), base);
        }
    }

    #[test]
    fn bad_points_error_without_aborting_batch() {
        let m = model2();
        let pts = vec![vec![1e-9, 1e3], vec![1e-9], vec![2e-9, 2e3]];
        let got = evaluate_batch(&m, &pts, &BatchOutput::DcGain, Some(2));
        assert!(got[0].is_ok());
        let e = got[1].as_ref().unwrap_err();
        assert!(e.message.contains("2 symbols"), "{e}");
        assert_eq!(e.code, "bad_request");
        assert!(got[2].is_ok());
    }

    #[test]
    fn all_output_kinds_produce_values() {
        let m = model2();
        let pts = grid(4);
        for out in [
            BatchOutput::Moments,
            BatchOutput::Rom,
            BatchOutput::DcGain,
            BatchOutput::Step {
                times: vec![0.0, 1e-6, 1e-5],
            },
            BatchOutput::Delays,
        ] {
            let got = evaluate_batch(&m, &pts, &out, None);
            assert!(got.iter().all(Result::is_ok), "{out:?}");
        }
        assert!(evaluate_batch(&m, &[], &BatchOutput::Moments, None).is_empty());
    }

    #[test]
    fn delay_values_are_physical() {
        let m = model2();
        let got = evaluate_batch(&m, &grid(3), &BatchOutput::Delays, Some(2));
        for r in got {
            let PointValue::Delays(d) = r.unwrap() else {
                panic!("wrong kind")
            };
            assert!(d.elmore > 0.0 && d.d2m > 0.0);
        }
    }

    #[test]
    fn healthy_points_report_no_degradation() {
        let m = model2();
        let out = evaluate_batch_guarded(&m, &grid(8), &BatchOutput::Rom, Some(2), None);
        assert_eq!(out.panics_caught, 0);
        assert_eq!(out.degraded_points, 0);
        assert!(!out.deadline_exceeded);
        for r in &out.results {
            let PointValue::Rom(s) = r.as_ref().unwrap() else {
                panic!("wrong kind")
            };
            assert!(s.degraded.is_none());
        }
    }

    #[test]
    fn expired_deadline_marks_remaining_points() {
        let m = model2();
        // A deadline already in the past: every point is marked, none
        // evaluated, and the outcome says so.
        let past = Instant::now() - Duration::from_millis(1);
        for workers in [1, 4] {
            let out = evaluate_batch_guarded(
                &m,
                &grid(100),
                &BatchOutput::Moments,
                Some(workers),
                Some(past),
            );
            assert!(out.deadline_exceeded);
            assert_eq!(out.results.len(), 100);
            let expired = out
                .results
                .iter()
                .filter(|r| {
                    r.as_ref()
                        .err()
                        .is_some_and(|e| e.code == "deadline_exceeded")
                })
                .count();
            assert_eq!(expired, 100, "workers={workers}");
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let m = model2();
        let pts = grid(40);
        let free = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(2));
        let far = Instant::now() + Duration::from_secs(3600);
        let out = evaluate_batch_guarded(&m, &pts, &BatchOutput::Moments, Some(2), Some(far));
        assert!(!out.deadline_exceeded);
        assert_eq!(out.results, free);
    }
}
