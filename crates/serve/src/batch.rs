//! Concurrent batch evaluation over a shared compiled model.
//!
//! A compiled model's evaluation is a pure function of the symbol values
//! (a flat tape replay plus a tiny Padé solve), so fanning a batch of
//! points across threads is embarrassingly parallel: each worker owns a
//! disjoint slice of the result vector and a private
//! [`Evaluator`](awesym_partition::Evaluator) (which carries its own
//! scratch), and the shared model is only read. Results always come back
//! in input order, and a bad point (wrong arity, unstable ROM, …) yields
//! a per-point error instead of aborting the batch. Moment-only batches
//! additionally take the blocked SoA `eval_batch` kernel — one tape walk
//! per block of points instead of per point.

use awesym_partition::{CompiledModel, Evaluator};

/// What to compute for each point of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutput {
    /// The raw `2q` moments.
    Moments,
    /// Full reduced-order model: poles, residues, DC gain, 50 % delay.
    Rom,
    /// DC gain only (first moment).
    DcGain,
    /// Unit-step response sampled at the given times.
    Step {
        /// Sample times in seconds.
        times: Vec<f64>,
    },
    /// The moment-based delay-metric family.
    Delays,
}

/// Pole/residue summary of a reduced-order model, flattened to plain
/// arrays for transport.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RomSummary {
    /// Real parts of the poles (rad/s).
    pub poles_re: Vec<f64>,
    /// Imaginary parts of the poles.
    pub poles_im: Vec<f64>,
    /// Real parts of the residues.
    pub residues_re: Vec<f64>,
    /// Imaginary parts of the residues.
    pub residues_im: Vec<f64>,
    /// DC gain.
    pub dc_gain: f64,
    /// All poles in the open left half-plane?
    pub stable: bool,
    /// 50 % step delay, when the response crosses it.
    pub delay_50: Option<f64>,
}

/// The delay-metric family, mirroring [`awesym_awe::DelayEstimates`] with
/// serde support.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DelaySummary {
    /// Elmore delay `−m₁`.
    pub elmore: f64,
    /// `ln2 · (−m₁)`.
    pub ln2_elmore: f64,
    /// The D2M metric.
    pub d2m: f64,
    /// Two-pole 50 % delay, when the fit exists.
    pub two_pole: Option<f64>,
}

impl From<awesym_awe::DelayEstimates> for DelaySummary {
    fn from(d: awesym_awe::DelayEstimates) -> Self {
        DelaySummary {
            elmore: d.elmore,
            ln2_elmore: d.ln2_elmore,
            d2m: d.d2m,
            two_pole: d.two_pole,
        }
    }
}

/// One point's successful result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PointValue {
    /// Raw moments.
    Moments(Vec<f64>),
    /// Pole/residue model.
    Rom(RomSummary),
    /// DC gain.
    DcGain(f64),
    /// Step-response samples.
    Step(Vec<f64>),
    /// Delay metrics.
    Delays(DelaySummary),
}

/// One point's outcome: a value or a point-local error message.
pub type PointResult = Result<PointValue, String>;

fn rom_summary(model: &CompiledModel, moments: &[f64]) -> Result<RomSummary, String> {
    let rom = model.rom_from_moments(moments).map_err(|e| e.to_string())?;
    Ok(RomSummary {
        poles_re: rom.poles().iter().map(|p| p.re).collect(),
        poles_im: rom.poles().iter().map(|p| p.im).collect(),
        residues_re: rom.residues().iter().map(|k| k.re).collect(),
        residues_im: rom.residues().iter().map(|k| k.im).collect(),
        dc_gain: rom.dc_gain(),
        stable: rom.is_stable(),
        delay_50: rom.delay_50(),
    })
}

/// Evaluates one point through a worker's [`Evaluator`]; `moments` is the
/// worker's reused `2q` output buffer.
fn eval_point(
    model: &CompiledModel,
    ev: &Evaluator<'_>,
    vals: &[f64],
    output: &BatchOutput,
    moments: &mut [f64],
) -> PointResult {
    let n_sym = ev.n_inputs();
    if vals.len() != n_sym {
        return Err(format!(
            "point has {} values, model has {n_sym} symbols",
            vals.len()
        ));
    }
    // Single tape replay covers every output kind — the ROM paths reuse
    // the already-evaluated moments instead of replaying the tape again.
    ev.eval_into(vals, moments);
    match output {
        BatchOutput::Moments => Ok(PointValue::Moments(moments.to_vec())),
        BatchOutput::DcGain => Ok(PointValue::DcGain(moments[0])),
        BatchOutput::Rom => rom_summary(model, moments).map(PointValue::Rom),
        BatchOutput::Step { times } => {
            let rom = model.rom_from_moments(moments).map_err(|e| e.to_string())?;
            Ok(PointValue::Step(rom.step_response_series(times)))
        }
        BatchOutput::Delays => awesym_awe::delay_estimates(moments)
            .map(|d| PointValue::Delays(d.into()))
            .map_err(|e| e.to_string()),
    }
}

/// Evaluates one worker's chunk. Moment-only chunks whose points all have
/// the right arity go through the SoA batch kernel in one call; anything
/// else falls back to the per-point path.
fn eval_chunk(
    model: &CompiledModel,
    points: &[Vec<f64>],
    output: &BatchOutput,
    slots: &mut [Option<PointResult>],
) {
    let ev = model.evaluator();
    let n_m = ev.n_outputs();
    if matches!(output, BatchOutput::Moments) && points.iter().all(|p| p.len() == ev.n_inputs()) {
        let mut flat = vec![0.0; points.len() * n_m];
        ev.eval_batch(points, &mut flat);
        for (slot, row) in slots.iter_mut().zip(flat.chunks_exact(n_m)) {
            *slot = Some(Ok(PointValue::Moments(row.to_vec())));
        }
        return;
    }
    let mut moments = vec![0.0; n_m];
    for (slot, point) in slots.iter_mut().zip(points) {
        *slot = Some(eval_point(model, &ev, point, output, &mut moments));
    }
}

/// Worker-count default: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Evaluates `points` against `model`, fanning across `workers` threads
/// (`None` → [`default_workers`]). Results are returned in input order;
/// each point independently succeeds or reports an error string.
///
/// # Panics
///
/// Panics only if a worker thread panics (model evaluation itself maps
/// failures into per-point errors).
pub fn evaluate_batch(
    model: &CompiledModel,
    points: &[Vec<f64>],
    output: &BatchOutput,
    workers: Option<usize>,
) -> Vec<PointResult> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.unwrap_or_else(default_workers).clamp(1, n);
    let mut results: Vec<Option<PointResult>> = vec![None; n];
    let chunk = n.div_ceil(workers);

    if workers == 1 {
        // Serial fast path: no thread spawn, same chunk code.
        eval_chunk(model, points, output, &mut results);
    } else {
        std::thread::scope(|s| {
            for (out_chunk, in_chunk) in results.chunks_mut(chunk).zip(points.chunks(chunk)) {
                s.spawn(move || eval_chunk(model, in_chunk, output, out_chunk));
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;
    use awesym_partition::SymbolBinding;

    fn model2() -> CompiledModel {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
    }

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t]
            })
            .collect()
    }

    #[test]
    fn batch_matches_direct_evaluation_in_order() {
        let m = model2();
        let pts = grid(64);
        let got = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(4));
        assert_eq!(got.len(), pts.len());
        for (r, p) in got.iter().zip(&pts) {
            assert_eq!(r.as_ref().unwrap(), &PointValue::Moments(m.eval_moments(p)));
        }
    }

    #[test]
    fn worker_counts_agree() {
        let m = model2();
        let pts = grid(37);
        let base = evaluate_batch(&m, &pts, &BatchOutput::Rom, Some(1));
        for w in [2, 3, 8, 64] {
            assert_eq!(evaluate_batch(&m, &pts, &BatchOutput::Rom, Some(w)), base);
        }
    }

    #[test]
    fn bad_points_error_without_aborting_batch() {
        let m = model2();
        let pts = vec![vec![1e-9, 1e3], vec![1e-9], vec![2e-9, 2e3]];
        let got = evaluate_batch(&m, &pts, &BatchOutput::DcGain, Some(2));
        assert!(got[0].is_ok());
        assert!(got[1].as_ref().unwrap_err().contains("2 symbols"));
        assert!(got[2].is_ok());
    }

    #[test]
    fn all_output_kinds_produce_values() {
        let m = model2();
        let pts = grid(4);
        for out in [
            BatchOutput::Moments,
            BatchOutput::Rom,
            BatchOutput::DcGain,
            BatchOutput::Step {
                times: vec![0.0, 1e-6, 1e-5],
            },
            BatchOutput::Delays,
        ] {
            let got = evaluate_batch(&m, &pts, &out, None);
            assert!(got.iter().all(Result::is_ok), "{out:?}");
        }
        assert!(evaluate_batch(&m, &[], &BatchOutput::Moments, None).is_empty());
    }

    #[test]
    fn delay_values_are_physical() {
        let m = model2();
        let got = evaluate_batch(&m, &grid(3), &BatchOutput::Delays, Some(2));
        for r in got {
            let PointValue::Delays(d) = r.unwrap() else {
                panic!("wrong kind")
            };
            assert!(d.elmore > 0.0 && d.d2m > 0.0);
        }
    }
}
