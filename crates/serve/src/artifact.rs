//! Versioned on-disk persistence for compiled models.
//!
//! A `.awesym` artifact is a JSON envelope around the model's own serde
//! form:
//!
//! ```json
//! {
//!   "format": "awesym-model",
//!   "version": 1,
//!   "minor": 1,
//!   "opt_level": "full",
//!   "checksum": "fnv1a64:0123456789abcdef",
//!   "payload": "<the CompiledModel JSON, as one string>"
//! }
//! ```
//!
//! The payload travels as a *string* so the checksum is defined over the
//! exact bytes that will be re-parsed — no dependence on map ordering or
//! float re-formatting. Loading validates the format tag, the version,
//! and the checksum before touching the payload, and returns a typed
//! [`ServeError`] (never panics) on any mismatch.
//!
//! Versioning is major/minor: only an unknown *major* (`version`) is a
//! typed error; a newer minor from a future build still loads, and
//! minor-0 artifacts (which predate the `minor`/`opt_level` fields and
//! the tape optimizer) load with those fields defaulted.

use crate::ServeError;
use awesym_partition::CompiledModel;
use serde::Content;
use std::path::Path;

/// Format tag stored in every artifact.
pub const FORMAT_TAG: &str = "awesym-model";

/// Artifact format major version written by this build; loading rejects
/// any other major.
pub const FORMAT_VERSION: u32 = 1;

/// Artifact format minor version written by this build. Minor 1 added
/// the `minor` and `opt_level` envelope fields (and optimized-tape
/// payloads); loaders accept any minor within the supported major.
pub const FORMAT_MINOR: u32 = 1;

/// 64-bit FNV-1a over the payload bytes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum string for a payload, e.g. `fnv1a64:a1b2c3d4e5f60789`.
pub fn checksum(payload: &str) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(payload.as_bytes()))
}

/// Serializes a model into artifact text.
///
/// # Errors
///
/// Propagates serialization failures as [`ServeError::BadFormat`].
pub fn to_artifact_string(model: &CompiledModel) -> Result<String, ServeError> {
    let payload = serde_json::to_string(model).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize model: {e}"),
    })?;
    let envelope = Content::Map(vec![
        ("format".into(), Content::Str(FORMAT_TAG.into())),
        ("version".into(), Content::U64(u64::from(FORMAT_VERSION))),
        ("minor".into(), Content::U64(u64::from(FORMAT_MINOR))),
        (
            "opt_level".into(),
            Content::Str(model.opt_level().as_str().into()),
        ),
        ("checksum".into(), Content::Str(checksum(&payload))),
        ("payload".into(), Content::Str(payload)),
    ]);
    serde_json::to_string(&envelope).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize envelope: {e}"),
    })
}

/// Parses artifact text back into a model, validating format tag, version
/// and checksum.
///
/// # Errors
///
/// [`ServeError::BadFormat`] for malformed JSON or a missing/wrong format
/// tag, [`ServeError::VersionMismatch`] for any *major* version other
/// than [`FORMAT_VERSION`] (a missing or newer `minor` is accepted),
/// [`ServeError::ChecksumMismatch`] when the payload bytes do not hash to
/// the recorded checksum, [`ServeError::ArtifactNumeric`] when the parsed
/// model carries non-finite coefficients.
pub fn from_artifact_str(text: &str) -> Result<CompiledModel, ServeError> {
    let envelope: Content = serde_json::from_str(text).map_err(|e| ServeError::BadFormat {
        what: format!("not JSON: {e}"),
    })?;
    let tag = envelope
        .get("format")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'format' tag".into(),
        })?;
    if tag != FORMAT_TAG {
        return Err(ServeError::BadFormat {
            what: format!("format tag '{tag}' is not '{FORMAT_TAG}'"),
        });
    }
    let version = envelope
        .get("version")
        .and_then(Content::as_u64)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'version' field".into(),
        })?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(ServeError::VersionMismatch {
            found: u32::try_from(version).unwrap_or(u32::MAX),
            supported: FORMAT_VERSION,
        });
    }
    // Minor versions are additive: absent (minor-0 artifacts predate the
    // field) or newer minors are both fine within a supported major.
    let recorded = envelope
        .get("checksum")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'checksum' field".into(),
        })?;
    let payload = envelope
        .get("payload")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'payload' field".into(),
        })?;
    let actual = checksum(payload);
    if recorded != actual {
        return Err(ServeError::ChecksumMismatch {
            expected: recorded.to_string(),
            actual,
        });
    }
    let model: CompiledModel =
        serde_json::from_str(payload).map_err(|e| ServeError::BadFormat {
            what: format!("payload is not a compiled model: {e}"),
        })?;
    validate_model(model)
}

/// Numeric health gate for freshly loaded models: JSON cannot express
/// NaN/Inf, so our writer emits `null` and the reader maps it back to
/// NaN — meaning a corrupted-but-checksummed (or hand-edited) artifact
/// can carry non-finite coefficients that would silently poison every
/// evaluation. Reject it at load time instead.
fn validate_model(model: CompiledModel) -> Result<CompiledModel, ServeError> {
    model
        .validate_numerics()
        .map_err(|what| ServeError::ArtifactNumeric { what })?;
    Ok(model)
}

/// Writes a model to `path` in artifact form.
///
/// # Errors
///
/// Serialization failures and I/O failures.
pub fn save_artifact(model: &CompiledModel, path: impl AsRef<Path>) -> Result<(), ServeError> {
    let path = path.as_ref();
    let text = to_artifact_string(model)?;
    std::fs::write(path, text).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })
}

/// Reads an artifact file, validating version and checksum.
///
/// # Errors
///
/// As [`from_artifact_str`], plus I/O failures.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<CompiledModel, ServeError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    from_artifact_str(&text)
}

/// Reads a model from a file that is either a `.awesym` artifact or a raw
/// `CompiledModel` JSON dump (the pre-artifact `awesym model --out` form).
/// Files carrying the artifact `format` tag get the strict validation
/// path; anything else is tried as a raw model.
///
/// # Errors
///
/// As [`load_artifact`] for artifacts; [`ServeError::BadFormat`] when raw
/// JSON does not describe a model.
pub fn load_model_file(path: impl AsRef<Path>) -> Result<CompiledModel, ServeError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    let looks_like_artifact = serde_json::from_str::<Content>(&text)
        .ok()
        .is_some_and(|v| v.get("format").is_some());
    if looks_like_artifact {
        from_artifact_str(&text)
    } else {
        let model: CompiledModel =
            serde_json::from_str(&text).map_err(|e| ServeError::BadFormat {
                what: format!("not a compiled model: {e}"),
            })?;
        validate_model(model)
    }
}
