//! Versioned on-disk persistence for compiled models.
//!
//! A `.awesym` artifact is a JSON envelope around the model's own serde
//! form:
//!
//! ```json
//! {
//!   "format": "awesym-model",
//!   "version": 1,
//!   "minor": 1,
//!   "opt_level": "full",
//!   "checksum": "fnv1a64:0123456789abcdef",
//!   "payload": "<the CompiledModel JSON, as one string>"
//! }
//! ```
//!
//! The payload travels as a *string* so the checksum is defined over the
//! exact bytes that will be re-parsed — no dependence on map ordering or
//! float re-formatting. Loading validates the format tag, the version,
//! and the checksum before touching the payload, and returns a typed
//! [`ServeError`] (never panics) on any mismatch.
//!
//! Since minor 2 the model's float coefficients leave the JSON payload
//! entirely: every `f64` in the model tree is pulled into a columnar
//! pool carried as `f64_data` (16 lowercase hex digits of the raw IEEE
//! bit pattern per value, in extraction order) with its slot in the
//! payload replaced by a marker string. Save/load therefore round-trips
//! coefficients *bit-exactly* without any float→text→float conversion,
//! and the checksum covers the payload bytes followed by the `f64_data`
//! bytes. Legacy artifacts (minor 0/1, floats inline in the payload)
//! still load unchanged.
//!
//! Versioning is major/minor: only an unknown *major* (`version`) is a
//! typed error; a newer minor from a future build still loads, and
//! minor-0 artifacts (which predate the `minor`/`opt_level` fields and
//! the tape optimizer) load with those fields defaulted.

use crate::ServeError;
use awesym_partition::CompiledModel;
use serde::Content;
use std::fmt::Write as _;
use std::path::Path;

/// Format tag stored in every artifact.
pub const FORMAT_TAG: &str = "awesym-model";

/// Artifact format major version written by this build; loading rejects
/// any other major.
pub const FORMAT_VERSION: u32 = 1;

/// Artifact format minor version written by this build. Minor 1 added
/// the `minor` and `opt_level` envelope fields (and optimized-tape
/// payloads); minor 2 moved float coefficients into the bit-exact
/// `f64_data` pool. Loaders accept any minor within the supported major.
pub const FORMAT_MINOR: u32 = 2;

/// Marker prefix replacing extracted floats in a minor-2 payload; the
/// suffix is the value's decimal index into the `f64_data` pool.
const F64_MARKER: &str = "\u{1}f64:";

/// 64-bit FNV-1a over a sequence of byte chunks (hashed as one stream).
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Checksum string for a payload, e.g. `fnv1a64:a1b2c3d4e5f60789`.
pub fn checksum(payload: &str) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(&[payload.as_bytes()]))
}

/// Minor-2 checksum: the payload bytes followed by the `f64_data` bytes.
fn checksum_with_pool(payload: &str, f64_data: &str) -> String {
    format!(
        "fnv1a64:{:016x}",
        fnv1a64(&[payload.as_bytes(), f64_data.as_bytes()])
    )
}

/// True when any string in the tree could be mistaken for a float
/// marker — in that (pathological) case the saver falls back to the
/// legacy inline-float payload rather than risk a corrupting rewrite.
fn has_marker_collision(c: &Content) -> bool {
    match c {
        Content::Str(s) => s.starts_with(F64_MARKER),
        Content::Seq(items) => items.iter().any(has_marker_collision),
        Content::Map(entries) => entries.iter().any(|(_, v)| has_marker_collision(v)),
        _ => false,
    }
}

/// Moves every `f64` in the tree into `pool`, leaving markers behind.
fn extract_f64s(c: &mut Content, pool: &mut Vec<f64>) {
    match c {
        Content::F64(v) => {
            let idx = pool.len();
            pool.push(*v);
            *c = Content::Str(format!("{F64_MARKER}{idx}"));
        }
        Content::Seq(items) => {
            for item in items {
                extract_f64s(item, pool);
            }
        }
        Content::Map(entries) => {
            for (_, v) in entries {
                extract_f64s(v, pool);
            }
        }
        _ => {}
    }
}

/// Replaces markers with their pooled values (inverse of
/// [`extract_f64s`]).
fn restore_f64s(c: &mut Content, pool: &[f64]) -> Result<(), ServeError> {
    match c {
        Content::Str(s) => {
            if let Some(idx) = s.strip_prefix(F64_MARKER) {
                let idx: usize = idx.parse().map_err(|_| ServeError::BadFormat {
                    what: format!("malformed float marker '{}'", s.escape_debug()),
                })?;
                let v = pool.get(idx).ok_or_else(|| ServeError::BadFormat {
                    what: format!(
                        "float marker index {idx} out of range (pool has {})",
                        pool.len()
                    ),
                })?;
                *c = Content::F64(*v);
            }
            Ok(())
        }
        Content::Seq(items) => items.iter_mut().try_for_each(|i| restore_f64s(i, pool)),
        Content::Map(entries) => entries
            .iter_mut()
            .try_for_each(|(_, v)| restore_f64s(v, pool)),
        _ => Ok(()),
    }
}

/// Packs the pool as 16 lowercase hex digits per value (raw IEEE bits).
fn encode_pool(pool: &[f64]) -> String {
    let mut s = String::with_capacity(pool.len() * 16);
    for v in pool {
        // Infallible on String; keep the error path anyway.
        let _ = write!(s, "{:016x}", v.to_bits());
    }
    s
}

/// Strict inverse of [`encode_pool`]: the length must be exactly
/// `16 * count` and every chunk valid hex.
fn decode_pool(f64_data: &str, count: u64) -> Result<Vec<f64>, ServeError> {
    let expect = count.saturating_mul(16);
    if f64_data.len() as u64 != expect {
        return Err(ServeError::BadFormat {
            what: format!(
                "f64_data is {} chars, {count} values need {expect}",
                f64_data.len()
            ),
        });
    }
    let bytes = f64_data.as_bytes();
    let mut pool = Vec::with_capacity(count as usize);
    for chunk in bytes.chunks_exact(16) {
        let hex = std::str::from_utf8(chunk).map_err(|_| ServeError::BadFormat {
            what: "f64_data is not ASCII hex".into(),
        })?;
        let bits = u64::from_str_radix(hex, 16).map_err(|_| ServeError::BadFormat {
            what: format!("f64_data chunk '{hex}' is not hex"),
        })?;
        pool.push(f64::from_bits(bits));
    }
    Ok(pool)
}

/// Serializes a model into artifact text (minor-2 form: floats pooled
/// bit-exactly into `f64_data`, markers in the JSON payload).
///
/// # Errors
///
/// Propagates serialization failures as [`ServeError::BadFormat`].
pub fn to_artifact_string(model: &CompiledModel) -> Result<String, ServeError> {
    let mut tree = serde_json::to_value(model).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize model: {e}"),
    })?;
    if has_marker_collision(&tree) {
        // A model string already looks like a marker (only possible via
        // adversarial node names); write the legacy inline-float form.
        return to_artifact_string_legacy(model);
    }
    let mut pool = Vec::new();
    extract_f64s(&mut tree, &mut pool);
    let payload = serde_json::to_string(&tree).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize model: {e}"),
    })?;
    let f64_data = encode_pool(&pool);
    let envelope = Content::Map(vec![
        ("format".into(), Content::Str(FORMAT_TAG.into())),
        ("version".into(), Content::U64(u64::from(FORMAT_VERSION))),
        ("minor".into(), Content::U64(u64::from(FORMAT_MINOR))),
        (
            "opt_level".into(),
            Content::Str(model.opt_level().as_str().into()),
        ),
        (
            "checksum".into(),
            Content::Str(checksum_with_pool(&payload, &f64_data)),
        ),
        ("f64_count".into(), Content::U64(pool.len() as u64)),
        ("f64_data".into(), Content::Str(f64_data)),
        ("payload".into(), Content::Str(payload)),
    ]);
    serde_json::to_string(&envelope).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize envelope: {e}"),
    })
}

/// Minor-1 style artifact text: floats inline in the JSON payload, no
/// pool. Kept as the collision fallback and for compatibility tests.
fn to_artifact_string_legacy(model: &CompiledModel) -> Result<String, ServeError> {
    let payload = serde_json::to_string(model).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize model: {e}"),
    })?;
    let envelope = Content::Map(vec![
        ("format".into(), Content::Str(FORMAT_TAG.into())),
        ("version".into(), Content::U64(u64::from(FORMAT_VERSION))),
        ("minor".into(), Content::U64(1)),
        (
            "opt_level".into(),
            Content::Str(model.opt_level().as_str().into()),
        ),
        ("checksum".into(), Content::Str(checksum(&payload))),
        ("payload".into(), Content::Str(payload)),
    ]);
    serde_json::to_string(&envelope).map_err(|e| ServeError::BadFormat {
        what: format!("cannot serialize envelope: {e}"),
    })
}

/// Parses artifact text back into a model, validating format tag, version
/// and checksum.
///
/// # Errors
///
/// [`ServeError::BadFormat`] for malformed JSON or a missing/wrong format
/// tag, [`ServeError::VersionMismatch`] for any *major* version other
/// than [`FORMAT_VERSION`] (a missing or newer `minor` is accepted),
/// [`ServeError::ChecksumMismatch`] when the payload bytes do not hash to
/// the recorded checksum, [`ServeError::ArtifactNumeric`] when the parsed
/// model carries non-finite coefficients.
pub fn from_artifact_str(text: &str) -> Result<CompiledModel, ServeError> {
    let envelope: Content = serde_json::from_str(text).map_err(|e| ServeError::BadFormat {
        what: format!("not JSON: {e}"),
    })?;
    let tag = envelope
        .get("format")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'format' tag".into(),
        })?;
    if tag != FORMAT_TAG {
        return Err(ServeError::BadFormat {
            what: format!("format tag '{tag}' is not '{FORMAT_TAG}'"),
        });
    }
    let version = envelope
        .get("version")
        .and_then(Content::as_u64)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'version' field".into(),
        })?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(ServeError::VersionMismatch {
            found: u32::try_from(version).unwrap_or(u32::MAX),
            supported: FORMAT_VERSION,
        });
    }
    // Minor versions are additive: absent (minor-0 artifacts predate the
    // field) or newer minors are both fine within a supported major.
    let recorded = envelope
        .get("checksum")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'checksum' field".into(),
        })?;
    let payload = envelope
        .get("payload")
        .and_then(Content::as_str)
        .ok_or_else(|| ServeError::BadFormat {
            what: "missing 'payload' field".into(),
        })?;
    if let Some(f64_data) = envelope.get("f64_data").and_then(Content::as_str) {
        // Minor-2 pooled form: the checksum spans payload + pool, and
        // floats are restored bit-exactly from the pool before parsing.
        let count = envelope
            .get("f64_count")
            .and_then(Content::as_u64)
            .ok_or_else(|| ServeError::BadFormat {
                what: "f64_data without f64_count".into(),
            })?;
        let actual = checksum_with_pool(payload, f64_data);
        if recorded != actual {
            return Err(ServeError::ChecksumMismatch {
                expected: recorded.to_string(),
                actual,
            });
        }
        let pool = decode_pool(f64_data, count)?;
        let mut tree: Content =
            serde_json::from_str(payload).map_err(|e| ServeError::BadFormat {
                what: format!("payload is not JSON: {e}"),
            })?;
        restore_f64s(&mut tree, &pool)?;
        let model: CompiledModel =
            serde_json::from_value(tree).map_err(|e| ServeError::BadFormat {
                what: format!("payload is not a compiled model: {e}"),
            })?;
        return validate_model(model);
    }
    let actual = checksum(payload);
    if recorded != actual {
        return Err(ServeError::ChecksumMismatch {
            expected: recorded.to_string(),
            actual,
        });
    }
    let model: CompiledModel =
        serde_json::from_str(payload).map_err(|e| ServeError::BadFormat {
            what: format!("payload is not a compiled model: {e}"),
        })?;
    validate_model(model)
}

/// Numeric health gate for freshly loaded models: JSON cannot express
/// NaN/Inf, so our writer emits `null` and the reader maps it back to
/// NaN — meaning a corrupted-but-checksummed (or hand-edited) artifact
/// can carry non-finite coefficients that would silently poison every
/// evaluation. Reject it at load time instead.
fn validate_model(model: CompiledModel) -> Result<CompiledModel, ServeError> {
    model
        .validate_numerics()
        .map_err(|what| ServeError::ArtifactNumeric { what })?;
    Ok(model)
}

/// Writes a model to `path` in artifact form.
///
/// # Errors
///
/// Serialization failures and I/O failures.
pub fn save_artifact(model: &CompiledModel, path: impl AsRef<Path>) -> Result<(), ServeError> {
    let path = path.as_ref();
    let text = to_artifact_string(model)?;
    std::fs::write(path, text).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })
}

/// Reads an artifact file, validating version and checksum.
///
/// # Errors
///
/// As [`from_artifact_str`], plus I/O failures.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<CompiledModel, ServeError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    from_artifact_str(&text)
}

/// Reads a model from a file that is either a `.awesym` artifact or a raw
/// `CompiledModel` JSON dump (the pre-artifact `awesym model --out` form).
/// Files carrying the artifact `format` tag get the strict validation
/// path; anything else is tried as a raw model.
///
/// # Errors
///
/// As [`load_artifact`] for artifacts; [`ServeError::BadFormat`] when raw
/// JSON does not describe a model.
pub fn load_model_file(path: impl AsRef<Path>) -> Result<CompiledModel, ServeError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    let looks_like_artifact = serde_json::from_str::<Content>(&text)
        .ok()
        .is_some_and(|v| v.get("format").is_some());
    if looks_like_artifact {
        from_artifact_str(&text)
    } else {
        let model: CompiledModel =
            serde_json::from_str(&text).map_err(|e| ServeError::BadFormat {
                what: format!("not a compiled model: {e}"),
            })?;
        validate_model(model)
    }
}
