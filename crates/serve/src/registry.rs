//! Named, thread-safe registry of loaded models with LRU eviction.

use awesym_partition::CompiledModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Counter snapshot for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegistryStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Models evicted to stay under capacity.
    pub evictions: u64,
    /// Models currently resident.
    pub resident: u64,
}

struct Entry {
    model: Arc<CompiledModel>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// Thread-safe model store: `RwLock` map plus least-recently-used
/// eviction at a fixed capacity. Lookups hand out `Arc` clones, so an
/// evicted model stays alive for requests already holding it.
pub struct ModelRegistry {
    inner: RwLock<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry holding at most `capacity` models (min 1).
    pub fn new(capacity: usize) -> Self {
        ModelRegistry {
            inner: RwLock::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts (or replaces) a model under `name`, evicting the
    /// least-recently-used entry when over capacity. Returns the evicted
    /// name, if any.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn insert(&self, name: &str, model: CompiledModel) -> Option<String> {
        self.insert_arc(name, Arc::new(model)).map(|(name, _)| name)
    }

    /// As [`ModelRegistry::insert`], but takes an already-shared model
    /// and returns the evicted *entry* (name and model) instead of just
    /// the name — the hook the warm/cold tier uses to demote an evicted
    /// model instead of dropping it.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn insert_arc(
        &self,
        name: &str,
        model: Arc<CompiledModel>,
    ) -> Option<(String, Arc<CompiledModel>)> {
        let mut g = self.inner.write().expect("registry lock poisoned");
        g.tick += 1;
        let tick = g.tick;
        g.entries.insert(
            name.to_string(),
            Entry {
                model,
                last_used: tick,
            },
        );
        if g.entries.len() <= self.capacity {
            return None;
        }
        let victim = g
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())?;
        let entry = g.entries.remove(&victim)?;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Some((victim, entry.model))
    }

    /// Removes and returns a model by name, without touching the
    /// hit/miss counters — the promotion path between tiers (the tier
    /// wrapper does its own accounting).
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn take(&self, name: &str) -> Option<Arc<CompiledModel>> {
        self.inner
            .write()
            .expect("registry lock poisoned")
            .entries
            .remove(name)
            .map(|e| e.model)
    }

    /// Looks up a model, refreshing its recency. Counts a hit or a miss.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn get(&self, name: &str) -> Option<Arc<CompiledModel>> {
        // A hit must bump recency, which mutates — take the write lock.
        let mut g = self.inner.write().expect("registry lock poisoned");
        g.tick += 1;
        let tick = g.tick;
        match g.entries.get_mut(name) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.model))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Removes a model by name; true when something was removed.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn remove(&self, name: &str) -> bool {
        self.inner
            .write()
            .expect("registry lock poisoned")
            .entries
            .remove(name)
            .is_some()
    }

    /// Number of resident models.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .entries
            .len()
    }

    /// True when no models are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident model names, sorted.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking writer.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .expect("registry lock poisoned")
            .entries
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;
    use awesym_partition::SymbolBinding;

    fn tiny_model() -> CompiledModel {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [SymbolBinding::capacitance(
            "c1",
            vec![c.find("C1").unwrap()],
        )];
        CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
    }

    #[test]
    fn insert_get_counts() {
        let reg = ModelRegistry::new(4);
        assert!(reg.is_empty());
        reg.insert("a", tiny_model());
        assert_eq!(reg.len(), 1);
        assert!(reg.get("a").is_some());
        assert!(reg.get("zzz").is_none());
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.resident), (1, 1, 0, 1));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let reg = ModelRegistry::new(2);
        assert_eq!(reg.capacity(), 2);
        reg.insert("a", tiny_model());
        reg.insert("b", tiny_model());
        // Touch "a" so "b" is the LRU entry when "c" arrives.
        assert!(reg.get("a").is_some());
        let evicted = reg.insert("c", tiny_model());
        assert_eq!(evicted.as_deref(), Some("b"));
        assert_eq!(reg.names(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(reg.stats().evictions, 1);
        // An Arc handed out before eviction keeps working.
        let held = reg.get("a").unwrap();
        reg.insert("d", tiny_model());
        reg.insert("e", tiny_model());
        assert!(held.op_count() > 0);
    }

    #[test]
    fn insert_arc_returns_the_demoted_entry_and_take_skips_counters() {
        let reg = ModelRegistry::new(1);
        reg.insert("a", tiny_model());
        let held = reg.get("a").unwrap();
        let (victim, model) = reg.insert_arc("b", Arc::new(tiny_model())).unwrap();
        assert_eq!(victim, "a");
        // The evicted Arc is the same allocation the lookup handed out.
        assert!(Arc::ptr_eq(&held, &model));
        let taken = reg.take("b").unwrap();
        assert!(taken.op_count() > 0);
        assert!(reg.is_empty());
        assert!(reg.take("b").is_none());
        // take() counted neither hits nor misses.
        let s = reg.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn replace_and_remove() {
        let reg = ModelRegistry::new(2);
        reg.insert("a", tiny_model());
        assert!(reg.insert("a", tiny_model()).is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert!(reg.is_empty());
    }
}
