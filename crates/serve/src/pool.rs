//! Persistent worker pool for batch evaluation.
//!
//! This ports the proven `McEngine` pattern from `awesym-timing`
//! (`crates/timing/src/engine.rs`) to the serving path, replacing the
//! per-batch `std::thread::scope` spawn that made batch throughput
//! *drop* as workers increased (thread spawn + join cost swamped the
//! sub-microsecond per-point work). Workers are spawned once, park on a
//! condvar, and steal coarse chunks of whatever job is at the head of
//! the queue via an atomic chunk frontier — so a batch pays one mutex
//! handoff instead of N thread spawns.
//!
//! The pool is also the shard supervisor's foundation:
//!
//! - **jobs never hang** — every chunk runs under `catch_unwind`; a
//!   panicking worker fills its chunk's slots with `internal` point
//!   errors and completes the chunk's accounting *before* dying, so the
//!   submitter always gets a full result vector;
//! - **worker death is survivable** — if every worker dies mid-job, the
//!   submitting thread notices (`alive == 0`) and drains the remaining
//!   chunks itself, serially;
//! - **supervised restart** — each submission first runs a cheap
//!   supervision pass: dead workers are respawned, subject to a capped
//!   exponential backoff so a crash-looping model cannot burn CPU on
//!   futile restarts. Restart and death counts are exposed for health
//!   reporting and the per-shard circuit breaker.
//!
//! Evaluators borrow the compiled model, so workers rebuild one per
//! claimed chunk (construction is a few allocations — noise next to a
//! chunk of tape replays). What the pool eliminates is the per-batch
//! thread churn, which was the actual scaling killer.

use crate::batch::{eval_chunk, BatchCtl, BatchOutcome, BatchOutput, PointResult};
use crate::error::PointError;
use awesym_partition::CompiledModel;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Smallest chunk a worker claims at once. Chunks are the work-stealing
/// grain: coarse enough that the claim (one `fetch_add`) is noise next
/// to the evaluation, fine enough that a 1200-point batch still spreads
/// across 8 workers.
const MIN_CHUNK: usize = 64;

/// Chunks per worker the splitter aims for — a little oversubscription
/// so a worker stalled on a slow point does not strand a whole stripe.
const CHUNKS_PER_WORKER: usize = 4;

/// How long a submitter waits on the done condvar per wakeup. Pure
/// belt-and-suspenders: every completion path notifies the condvar, the
/// timeout only bounds the damage of a lost-wakeup bug.
const WAIT_SLICE: Duration = Duration::from_millis(100);

/// Restart/backoff knobs for the pool's supervision pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads to keep alive.
    pub workers: usize,
    /// Backoff after the first restart burst; doubles per consecutive
    /// burst.
    pub restart_backoff: Duration,
    /// Backoff ceiling.
    pub max_restart_backoff: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: crate::batch::default_workers(),
            restart_backoff: Duration::from_millis(10),
            max_restart_backoff: Duration::from_secs(2),
        }
    }
}

/// Lock, surviving poison: the pool must keep supervising even if some
/// thread panicked at an unexpected moment while holding a lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued batch: the inputs, an atomic chunk frontier workers claim
/// from, and the result slots they fill.
struct Job {
    model: Arc<CompiledModel>,
    points: Arc<Vec<Vec<f64>>>,
    output: BatchOutput,
    ctl: BatchCtl,
    /// Points per chunk.
    chunk: usize,
    n_chunks: usize,
    /// Most workers allowed to co-evaluate this job (the request's
    /// `workers` field).
    max_workers: usize,
    /// Workers currently inside this job. Only touched under the queue
    /// lock (atomic purely for shared access through the `Arc`).
    entered: AtomicUsize,
    next_chunk: AtomicUsize,
    chunks_done: AtomicUsize,
    done: AtomicBool,
    slots: Mutex<Vec<Option<PointResult>>>,
}

impl Job {
    /// Whether a worker scanning the queue should pick this job up:
    /// unclaimed chunks remain and the participation cap has room.
    /// Callers hold the queue lock.
    fn claimable(&self) -> bool {
        self.entered.load(Ordering::Relaxed) < self.max_workers
            && self.next_chunk.load(Ordering::Relaxed) < self.n_chunks
    }

    /// Claims and evaluates chunks until the frontier is exhausted.
    /// Returns `true` when an injected worker-kill fired and the calling
    /// worker must die (this job's accounting is already safe by then).
    fn work(&self, shared: &Shared) -> bool {
        loop {
            let c = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= self.n_chunks {
                return false;
            }
            let start = c * self.chunk;
            let end = ((c + 1) * self.chunk).min(self.points.len());
            let mut local: Vec<Option<PointResult>> = vec![None; end - start];
            let run = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if crate::faults::fault_kills_worker(self.ctl.shard, start) {
                    panic!("injected fault: worker killed at chunk starting {start}");
                }
                eval_chunk(
                    &self.model,
                    &self.points[start..end],
                    &self.output,
                    &mut local,
                    start,
                    &self.ctl,
                );
            }));
            let killed = run.is_err();
            if killed {
                // The worker is about to die; whatever this chunk did
                // not finish becomes structured errors so the job still
                // completes with one result per point.
                self.ctl.panics.fetch_add(1, Ordering::Relaxed);
                for slot in &mut local {
                    if slot.is_none() {
                        *slot = Some(Err(PointError::internal(
                            "worker thread died mid-chunk; shard supervisor will restart it",
                        )));
                    }
                }
            }
            self.deposit(shared, start, local);
            if killed {
                return true;
            }
        }
    }

    /// Moves a finished chunk's results into the shared slots and, when
    /// it was the last chunk, marks the job done, removes it from the
    /// queue, and wakes the submitter.
    fn deposit(&self, shared: &Shared, start: usize, local: Vec<Option<PointResult>>) {
        {
            let mut slots = lock(&self.slots);
            for (slot, value) in slots[start..start + local.len()].iter_mut().zip(local) {
                *slot = value;
            }
        }
        let finished = self.chunks_done.fetch_add(1, Ordering::AcqRel) + 1;
        if finished == self.n_chunks {
            let mut q = lock(&shared.queue);
            self.done.store(true, Ordering::Release);
            q.retain(|j| !std::ptr::eq(Arc::as_ptr(j), self));
            drop(q);
            shared.done.notify_all();
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Workers park here for new work.
    work: Condvar,
    /// Submitters park here for job completion (paired with `queue`).
    done: Condvar,
    alive: AtomicUsize,
    deaths: AtomicU64,
    shutdown: AtomicBool,
    shard: usize,
}

/// Supervision bookkeeping: live handles plus restart pacing state for
/// the capped exponential backoff.
struct Supervisor {
    handles: Vec<JoinHandle<()>>,
    next_worker_id: usize,
    backoff: Duration,
    not_before: Instant,
    healthy_since: Option<Instant>,
}

/// A persistent, supervised worker pool evaluating batches against any
/// compiled model. See the module docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    config: PoolConfig,
    supervisor: Mutex<Supervisor>,
    restarts: AtomicU64,
}

impl WorkerPool {
    /// A pool of `config.workers` threads (at least 1) serving `shard`.
    /// Unsharded users pass shard 0.
    pub fn new(shard: usize, config: PoolConfig) -> Self {
        let config = PoolConfig {
            workers: config.workers.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            done: Condvar::new(),
            alive: AtomicUsize::new(0),
            deaths: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shard,
        });
        let pool = WorkerPool {
            shared,
            config,
            supervisor: Mutex::new(Supervisor {
                handles: Vec::new(),
                next_worker_id: 0,
                backoff: config.restart_backoff,
                not_before: Instant::now(),
                healthy_since: None,
            }),
            restarts: AtomicU64::new(0),
        };
        {
            let mut sup = lock(&pool.supervisor);
            for _ in 0..pool.config.workers {
                pool.spawn_worker(&mut sup);
            }
        }
        pool
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Worker threads currently alive.
    pub fn alive(&self) -> usize {
        self.shared.alive.load(Ordering::Relaxed)
    }

    /// Workers respawned by supervision (initial spawns not counted).
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Worker threads that died (panicked outside the per-point guard).
    pub fn deaths(&self) -> u64 {
        self.shared.deaths.load(Ordering::Relaxed)
    }

    fn spawn_worker(&self, sup: &mut Supervisor) {
        let shared = Arc::clone(&self.shared);
        let id = sup.next_worker_id;
        sup.next_worker_id += 1;
        self.shared.alive.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("awesym-shard{}-w{id}", self.shared.shard))
            .spawn(move || worker_loop(&shared))
            .expect("spawn pool worker thread");
        sup.handles.push(handle);
    }

    /// One supervision pass: respawn dead workers, paced by a capped
    /// exponential backoff so a crash loop cannot spin. Called on every
    /// submission (cheap when the pool is healthy) and usable directly
    /// for health probing. Returns the number of workers respawned.
    pub fn supervise(&self) -> usize {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return 0;
        }
        let mut sup = lock(&self.supervisor);
        let now = Instant::now();
        let missing = self.config.workers.saturating_sub(self.alive());
        if missing == 0 {
            // Fully healthy for a whole ceiling-backoff window → forgive
            // the crash history so the next incident restarts promptly.
            match sup.healthy_since {
                Some(t) if now.duration_since(t) >= self.config.max_restart_backoff => {
                    sup.backoff = self.config.restart_backoff;
                }
                Some(_) => {}
                None => sup.healthy_since = Some(now),
            }
            return 0;
        }
        sup.healthy_since = None;
        if now < sup.not_before {
            return 0; // still backing off from the previous burst
        }
        // Reap finished handles so the vec doesn't grow unboundedly
        // across a long crash loop.
        sup.handles.retain(|h| !h.is_finished());
        for _ in 0..missing {
            self.spawn_worker(&mut sup);
        }
        self.restarts.fetch_add(missing as u64, Ordering::Relaxed);
        sup.not_before = now + sup.backoff;
        sup.backoff = (sup.backoff * 2).min(self.config.max_restart_backoff);
        missing
    }

    /// Milliseconds until the supervisor will next agree to restart
    /// workers (0 when not backing off) — the shard layer's
    /// `retry_after` source when the pool is down.
    pub fn backoff_remaining_ms(&self) -> u64 {
        let sup = lock(&self.supervisor);
        sup.not_before
            .saturating_duration_since(Instant::now())
            .as_millis() as u64
    }

    /// Evaluates `points` against `model` on the pool, returning results
    /// in input order. `max_workers` caps how many pool workers
    /// co-evaluate this job (`None` → all); the submitting thread never
    /// evaluates unless the whole pool is dead, in which case it drains
    /// the job itself so the request still completes.
    pub fn run_batch(
        &self,
        model: Arc<CompiledModel>,
        points: Arc<Vec<Vec<f64>>>,
        output: BatchOutput,
        deadline: Option<Instant>,
        max_workers: Option<usize>,
    ) -> BatchOutcome {
        let n = points.len();
        if n == 0 {
            return BatchOutcome {
                results: Vec::new(),
                panics_caught: 0,
                degraded_points: 0,
                deadline_exceeded: false,
            };
        }
        self.supervise();
        let max_workers = max_workers
            .unwrap_or(usize::MAX)
            .clamp(1, self.config.workers);
        let chunk = n
            .div_ceil(max_workers * CHUNKS_PER_WORKER)
            .clamp(MIN_CHUNK.min(n), n);
        let job = Arc::new(Job {
            model,
            points,
            output,
            ctl: BatchCtl::new(deadline, self.shared.shard),
            chunk,
            n_chunks: n.div_ceil(chunk),
            max_workers,
            entered: AtomicUsize::new(0),
            next_chunk: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            slots: Mutex::new(vec![None; n]),
        });
        {
            let mut q = lock(&self.shared.queue);
            q.push_back(Arc::clone(&job));
            drop(q);
            self.shared.work.notify_all();
        }
        // Wait for completion; if the whole pool dies, drain what's left
        // on this thread. Dying workers complete their current chunk's
        // accounting before dropping `alive`, so alive == 0 means every
        // remaining chunk is unclaimed and safe to take.
        let mut q = lock(&self.shared.queue);
        while !job.done.load(Ordering::Acquire) {
            if self.shared.alive.load(Ordering::Relaxed) == 0 {
                drop(q);
                self.drain(&job);
                q = lock(&self.shared.queue);
                continue;
            }
            let (guard, _timeout) = self
                .shared
                .done
                .wait_timeout(q, WAIT_SLICE)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        drop(q);
        let slots = std::mem::take(&mut *lock(&job.slots));
        BatchOutcome {
            results: slots
                .into_iter()
                .map(|r| r.expect("pool job completed with every slot filled"))
                .collect(),
            panics_caught: job.ctl.panics.load(Ordering::Relaxed),
            degraded_points: job.ctl.degraded.load(Ordering::Relaxed),
            deadline_exceeded: job.ctl.expired.load(Ordering::Relaxed),
        }
    }

    /// Serial fallback when no worker is alive: the submitting thread
    /// claims the remaining chunks through the same frontier. Injected
    /// worker-kill faults are not applied here — this is the recovery
    /// path that guarantees the request completes.
    fn drain(&self, job: &Arc<Job>) {
        loop {
            let c = job.next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= job.n_chunks {
                return;
            }
            let start = c * job.chunk;
            let end = ((c + 1) * job.chunk).min(job.points.len());
            let mut local: Vec<Option<PointResult>> = vec![None; end - start];
            eval_chunk(
                &job.model,
                &job.points[start..end],
                &job.output,
                &mut local,
                start,
                &job.ctl,
            );
            job.deposit(&self.shared, start, local);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut lock(&self.supervisor).handles);
        for h in handles {
            // Worker panics were already converted to point errors and
            // death counts; joining must not re-raise them.
            let _ = h.join();
        }
    }
}

/// The worker body: park until a claimable job appears, help it, repeat.
/// Exits on shutdown or on an injected worker-kill (after making the
/// current job's accounting whole).
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    shared.alive.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                if let Some(job) = q.iter().find(|j| j.claimable()) {
                    let job = Arc::clone(job);
                    job.entered.fetch_add(1, Ordering::Relaxed);
                    break job;
                }
                q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let killed = job.work(shared);
        {
            let q = lock(&shared.queue);
            job.entered.fetch_sub(1, Ordering::Relaxed);
            if killed {
                // Order matters: the job's chunks are already accounted
                // for (work() deposits before returning), so dropping
                // `alive` here can never strand a claimed chunk.
                shared.alive.fetch_sub(1, Ordering::Relaxed);
                shared.deaths.fetch_add(1, Ordering::Relaxed);
            }
            drop(q);
            // Leaving frees a participation slot (or signals death to
            // waiting submitters); wake both sides to re-scan.
            shared.work.notify_all();
            shared.done.notify_all();
        }
        if killed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::evaluate_batch;
    use awesym_circuit::generators::fig1_rc;
    use awesym_partition::SymbolBinding;

    fn model2() -> Arc<CompiledModel> {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        Arc::new(CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap())
    }

    fn grid(n: usize) -> Arc<Vec<Vec<f64>>> {
        Arc::new(
            (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    vec![0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t]
                })
                .collect(),
        )
    }

    fn small_pool(workers: usize) -> WorkerPool {
        WorkerPool::new(
            0,
            PoolConfig {
                workers,
                restart_backoff: Duration::from_millis(1),
                max_restart_backoff: Duration::from_millis(50),
            },
        )
    }

    #[test]
    fn pool_results_match_direct_evaluation_at_any_worker_count() {
        let m = model2();
        let pts = grid(333);
        let reference = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(1));
        for workers in [1, 2, 4, 8] {
            let pool = small_pool(workers);
            let out = pool.run_batch(
                Arc::clone(&m),
                Arc::clone(&pts),
                BatchOutput::Moments,
                None,
                None,
            );
            assert_eq!(out.results, reference, "workers={workers}");
            assert_eq!(out.panics_caught, 0);
            assert!(!out.deadline_exceeded);
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs_and_output_kinds() {
        let pool = small_pool(2);
        let m = model2();
        let pts = grid(90);
        for output in [
            BatchOutput::Moments,
            BatchOutput::Rom,
            BatchOutput::DcGain,
            BatchOutput::Delays,
        ] {
            let out = pool.run_batch(Arc::clone(&m), Arc::clone(&pts), output.clone(), None, None);
            assert_eq!(out.results.len(), 90, "{output:?}");
            assert!(out.results.iter().all(Result::is_ok), "{output:?}");
        }
        assert_eq!(pool.alive(), 2);
        assert_eq!(pool.restarts(), 0);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = small_pool(4);
        let out = pool.run_batch(
            model2(),
            Arc::new(Vec::new()),
            BatchOutput::Moments,
            None,
            None,
        );
        assert!(out.results.is_empty());
    }

    #[test]
    fn expired_deadline_marks_every_point() {
        let pool = small_pool(4);
        let past = Instant::now() - Duration::from_millis(1);
        let out = pool.run_batch(model2(), grid(200), BatchOutput::Moments, Some(past), None);
        assert!(out.deadline_exceeded);
        assert_eq!(out.results.len(), 200);
        for r in &out.results {
            assert_eq!(r.as_ref().unwrap_err().code, "deadline_exceeded");
        }
    }

    #[test]
    fn participation_cap_still_completes_the_job() {
        let pool = small_pool(8);
        let m = model2();
        let pts = grid(300);
        let reference = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(1));
        let out = pool.run_batch(
            Arc::clone(&m),
            Arc::clone(&pts),
            BatchOutput::Moments,
            None,
            Some(1),
        );
        assert_eq!(out.results, reference);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(small_pool(4));
        let m = model2();
        let pts = grid(256);
        let reference = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(1));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = Arc::clone(&pool);
                let m = Arc::clone(&m);
                let pts = Arc::clone(&pts);
                let reference = &reference;
                s.spawn(move || {
                    for _ in 0..5 {
                        let out = pool.run_batch(
                            Arc::clone(&m),
                            Arc::clone(&pts),
                            BatchOutput::Moments,
                            None,
                            None,
                        );
                        assert_eq!(&out.results, reference);
                    }
                });
            }
        });
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn killed_workers_never_hang_jobs_and_supervision_respawns() {
        use crate::faults::{self, FaultPlan};
        // The fault plan is process-global and lib tests run in parallel,
        // so target a shard id nothing else in this binary uses — other
        // pools/shards (ids 0-3) see no injected faults.
        let pool = WorkerPool::new(
            7777,
            PoolConfig {
                workers: 3,
                restart_backoff: Duration::from_millis(1),
                max_restart_backoff: Duration::from_millis(50),
            },
        );
        faults::install(FaultPlan {
            seed: 5,
            worker_kill_rate_pct: 100,
            target_shard: Some(7777),
            ..FaultPlan::default()
        });
        let m = model2();
        let out = pool.run_batch(Arc::clone(&m), grid(400), BatchOutput::Moments, None, None);
        faults::clear();
        // Every point answered: killed chunks as internal errors, the
        // rest drained serially by the submitter after the pool died.
        assert_eq!(out.results.len(), 400);
        assert!(out.panics_caught > 0);
        assert!(pool.deaths() > 0);
        assert_eq!(pool.alive(), 0);
        // Supervision brings the pool back (backoff is 1 ms in tests)
        // and the next batch is fully healthy.
        std::thread::sleep(Duration::from_millis(5));
        let pts = grid(100);
        let reference = evaluate_batch(&m, &pts, &BatchOutput::Moments, Some(1));
        let out = pool.run_batch(Arc::clone(&m), pts, BatchOutput::Moments, None, None);
        assert_eq!(out.results, reference);
        assert!(pool.restarts() >= 3, "restarts={}", pool.restarts());
        assert_eq!(pool.alive(), 3);
    }
}
