//! Shared `ELEM[:role]` symbol-spec parsing, used by both the `awesym`
//! CLI flags and the server's `compile` command.

use awesym_circuit::{Circuit, ElementKind};
use awesym_partition::{SymbolBinding, SymbolRole};

/// Parses one `ELEM[:role]` spec against a circuit. Roles are `g`
/// (conductance), `r` (resistance), `c` (capacitance), `l` (inductance)
/// and `gm` (transconductance); without a role the element kind picks
/// its natural one.
///
/// # Errors
///
/// A human-readable message for an unknown element, unknown role, or an
/// element kind that cannot be symbolic.
pub fn resolve_symbol_spec(c: &Circuit, spec: &str) -> Result<SymbolBinding, String> {
    let (name, role_txt) = match spec.split_once(':') {
        Some((n, r)) => (n, Some(r)),
        None => (spec, None),
    };
    let id = c
        .find(name)
        .ok_or_else(|| format!("no element named {name}"))?;
    let kind = c.element(id).kind;
    let role = match role_txt {
        Some("g") => SymbolRole::Conductance,
        Some("r") => SymbolRole::Resistance,
        Some("c") => SymbolRole::Capacitance,
        Some("l") => SymbolRole::Inductance,
        Some("gm") => SymbolRole::Transconductance,
        Some(other) => return Err(format!("unknown role '{other}'")),
        None => match kind {
            ElementKind::Resistor => SymbolRole::Resistance,
            ElementKind::Capacitor => SymbolRole::Capacitance,
            ElementKind::Inductor => SymbolRole::Inductance,
            ElementKind::Vccs => SymbolRole::Transconductance,
            other => return Err(format!("element {name} ({other:?}) cannot be a symbol")),
        },
    };
    Ok(SymbolBinding {
        name: name.to_string(),
        role,
        elements: vec![id],
    })
}

/// Parses a list of specs; see [`resolve_symbol_spec`].
///
/// # Errors
///
/// The first spec's error, or a message when `specs` is empty.
pub fn resolve_symbol_specs<S: AsRef<str>>(
    c: &Circuit,
    specs: &[S],
) -> Result<Vec<SymbolBinding>, String> {
    if specs.is_empty() {
        return Err("at least one symbol spec is required".into());
    }
    specs
        .iter()
        .map(|s| resolve_symbol_spec(c, s.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;

    #[test]
    fn specs_resolve_roles() {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let b = resolve_symbol_specs(&w.circuit, &["C1", "R2:g"]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].role, SymbolRole::Capacitance);
        assert_eq!(b[1].role, SymbolRole::Conductance);
        assert!(resolve_symbol_spec(&w.circuit, "C1:zz")
            .unwrap_err()
            .contains("unknown role"));
        assert!(resolve_symbol_spec(&w.circuit, "nope")
            .unwrap_err()
            .contains("no element"));
        let empty: [&str; 0] = [];
        assert!(resolve_symbol_specs(&w.circuit, &empty).is_err());
    }
}
