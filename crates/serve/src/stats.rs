//! Server request counters, latency histogram, and per-stage breakdown.
//!
//! Built on the [`awesym_obs`] metrics registry: every counter and
//! histogram here is a named metric with a lock-free atomic hot path, so
//! the request path never blocks on accounting, and the whole set can be
//! drained as NDJSON ([`ServerStats::metrics_ndjson`]) in addition to
//! the structured [`StatsSnapshot`] the `stats` command returns.
//!
//! Request time is additionally broken down by pipeline stage — `parse`
//! → `lookup` → `eval` → `degrade` → `serialize` (see [`Stage`]) — with
//! one nanosecond-bucketed histogram per stage. This is the per-stage
//! evidence behind the paper's microseconds-per-evaluation claim: the
//! `eval` stage is where the compiled-tape time goes, and everything
//! else is overhead the server must keep small.

use crate::encode::WireEncoding;
use awesym_obs::{Counter, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Upper edges of the latency histogram buckets, in microseconds; an
/// implicit unbounded bucket follows.
pub(crate) const BUCKET_EDGES_US: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Number of histogram buckets (the edges plus the overflow bucket).
pub const NUM_BUCKETS: usize = BUCKET_EDGES_US.len() + 1;

/// Upper edges of the per-stage histograms, in nanoseconds (1µs … 100ms,
/// decade steps); an implicit unbounded bucket follows.
pub(crate) const STAGE_EDGES_NS: [u64; 6] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// The serve loop's request pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Size guard plus JSON parse of the request line.
    Parse,
    /// Model-registry lookup.
    Lookup,
    /// Batch/point evaluation (tape replay and any ROM solves).
    Eval,
    /// Post-evaluation health accounting: degradations, panics,
    /// deadline bookkeeping.
    Degrade,
    /// Response encoding back to a JSON line.
    Serialize,
}

/// Every stage, in pipeline order.
pub const STAGES: [Stage; 5] = [
    Stage::Parse,
    Stage::Lookup,
    Stage::Eval,
    Stage::Degrade,
    Stage::Serialize,
];

impl Stage {
    /// Stable lowercase name (span and metric naming).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Lookup => "lookup",
            Stage::Eval => "eval",
            Stage::Degrade => "degrade",
            Stage::Serialize => "serialize",
        }
    }

    /// Index into per-stage arrays (pipeline order).
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Lookup => 1,
            Stage::Eval => 2,
            Stage::Degrade => 3,
            Stage::Serialize => 4,
        }
    }
}

/// One histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyBucket {
    /// Inclusive upper edge, e.g. `"100us"`, or `"inf"` for the last.
    pub le: String,
    /// Requests that completed within this bucket.
    pub count: u64,
}

/// One pipeline stage's latency summary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSnapshot {
    /// Stage name (`parse`, `lookup`, `eval`, `degrade`, `serialize`).
    pub stage: String,
    /// Requests that passed through this stage.
    pub count: u64,
    /// Total nanoseconds spent in this stage.
    pub total_ns: u64,
    /// Mean nanoseconds per request in this stage.
    pub mean_ns: f64,
    /// Nanosecond-bucketed latency histogram for this stage.
    pub buckets: Vec<LatencyBucket>,
}

/// Point-in-time view of the server counters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Total requests handled (including failures).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Latency histogram over all requests.
    pub latency: Vec<LatencyBucket>,
    /// Points evaluated across all `batch` requests.
    pub batch_points: u64,
    /// Wall-clock seconds spent inside batch evaluation.
    pub batch_secs: f64,
    /// Aggregate batch throughput, points per second.
    pub batch_points_per_sec: f64,
    /// Per-point panics caught and converted to `internal` errors.
    pub panics_caught: u64,
    /// Requests that ran past their deadline and were cut short.
    pub deadlines_exceeded: u64,
    /// Requests shed at the in-flight budget (`overloaded`).
    pub requests_shed: u64,
    /// Points whose ROM fit degraded to a lower approximation order.
    pub degradations: u64,
    /// Periodic stats lines that could not be written to the stats sink
    /// and were dropped (the serve loop never stalls on a slow or dead
    /// sink).
    pub stats_dropped: u64,
    /// Per-stage request-time breakdown, in pipeline order (only stages
    /// a request passed through are counted).
    pub stages: Vec<StageSnapshot>,
    /// The serialize stage split by wire encoding
    /// (`serialize_ndjson`, `serialize_binary`) — additive detail on top
    /// of the canonical `serialize` entry in [`StatsSnapshot::stages`].
    pub serialize_encodings: Vec<StageSnapshot>,
}

/// Atomic counters; cheap to update from the request path.
///
/// Internally every metric is registered by name in an
/// [`awesym_obs::Registry`] — [`ServerStats::metrics_ndjson`] drains the
/// lot as NDJSON for external scrapers, while [`ServerStats::snapshot`]
/// keeps the stable structured shape the `stats` command documents.
pub struct ServerStats {
    registry: Registry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    latency: Arc<Histogram>,
    batch_points: Arc<Counter>,
    batch_nanos: Arc<Counter>,
    panics_caught: Arc<Counter>,
    deadlines_exceeded: Arc<Counter>,
    requests_shed: Arc<Counter>,
    degradations: Arc<Counter>,
    stats_dropped: Arc<Counter>,
    stages: [Arc<Histogram>; 5],
    serialize_encodings: [Arc<Histogram>; 2],
}

/// Metric-name suffixes for the per-encoding serialize histograms, in
/// [`WireEncoding`] discriminant order.
const SERIALIZE_ENCODINGS: [&str; 2] = ["serialize_ndjson", "serialize_binary"];

fn encoding_slot(encoding: WireEncoding) -> usize {
    match encoding {
        WireEncoding::Ndjson => 0,
        WireEncoding::BinaryV1 => 1,
    }
}

fn bucket_label(edge: Option<u64>) -> String {
    match edge {
        Some(us) if us < 1_000 => format!("{us}us"),
        Some(us) if us < 1_000_000 => format!("{}ms", us / 1_000),
        Some(us) => format!("{}s", us / 1_000_000),
        None => "inf".to_string(),
    }
}

fn ns_label(edge: Option<u64>) -> String {
    match edge {
        Some(ns) if ns < 1_000 => format!("{ns}ns"),
        Some(ns) if ns < 1_000_000 => format!("{}us", ns / 1_000),
        Some(ns) if ns < 1_000_000_000 => format!("{}ms", ns / 1_000_000),
        Some(ns) => format!("{}s", ns / 1_000_000_000),
        None => "inf".to_string(),
    }
}

fn buckets_of(h: &Histogram, label: fn(Option<u64>) -> String) -> Vec<LatencyBucket> {
    h.snapshot()
        .buckets
        .into_iter()
        .map(|(edge, count)| LatencyBucket {
            le: label(edge),
            count,
        })
        .collect()
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        let registry = Registry::new();
        let stages = STAGES.map(|s| {
            registry.histogram(&format!("request_stage_{}_ns", s.as_str()), &STAGE_EDGES_NS)
        });
        let serialize_encodings = SERIALIZE_ENCODINGS
            .map(|name| registry.histogram(&format!("request_stage_{name}_ns"), &STAGE_EDGES_NS));
        ServerStats {
            requests: registry.counter("requests_total"),
            errors: registry.counter("request_errors_total"),
            latency: registry.histogram("request_latency_us", &BUCKET_EDGES_US),
            batch_points: registry.counter("batch_points_total"),
            batch_nanos: registry.counter("batch_eval_ns_total"),
            panics_caught: registry.counter("panics_caught_total"),
            deadlines_exceeded: registry.counter("deadlines_exceeded_total"),
            requests_shed: registry.counter("requests_shed_total"),
            degradations: registry.counter("degradations_total"),
            stats_dropped: registry.counter("stats_lines_dropped_total"),
            stages,
            serialize_encodings,
            registry,
        }
    }

    /// The underlying named-metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Every metric as NDJSON, one line per metric (scraper format; the
    /// structured [`StatsSnapshot`] is the API format).
    pub fn metrics_ndjson(&self) -> String {
        self.registry.to_ndjson()
    }

    /// Records one handled request and its latency.
    pub fn record_request(&self, latency: Duration, ok: bool) {
        self.requests.inc();
        if !ok {
            self.errors.inc();
        }
        self.latency
            .observe(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records time spent in one pipeline stage of a request.
    pub fn record_stage(&self, stage: Stage, dur_ns: u64) {
        self.stages[stage.index()].observe(dur_ns);
    }

    /// Records serialize-stage time against the wire encoding that
    /// produced the response (additive detail; the canonical
    /// `serialize` stage histogram is recorded separately).
    pub fn record_serialize_encoding(&self, encoding: WireEncoding, dur_ns: u64) {
        self.serialize_encodings[encoding_slot(encoding)].observe(dur_ns);
    }

    /// Records a completed batch: how many points, how long the
    /// evaluation took.
    pub fn record_batch(&self, points: usize, elapsed: Duration) {
        self.batch_points.add(points as u64);
        self.batch_nanos
            .add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records `n` per-point panics caught by the batch engine.
    pub fn record_panics_caught(&self, n: u64) {
        self.panics_caught.add(n);
    }

    /// Records one request cut short by its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadlines_exceeded.inc();
    }

    /// Records one request shed at the in-flight budget.
    pub fn record_request_shed(&self) {
        self.requests_shed.inc();
    }

    /// Records `n` points served at a degraded approximation order.
    pub fn record_degradations(&self, n: u64) {
        self.degradations.add(n);
    }

    /// Records one periodic stats line dropped because the stats sink
    /// failed to accept it.
    pub fn record_stats_dropped(&self) {
        self.stats_dropped.inc();
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let batch_points = self.batch_points.get();
        let batch_secs = self.batch_nanos.get() as f64 * 1e-9;
        let stages = STAGES
            .iter()
            .map(|&stage| {
                let h = &self.stages[stage.index()];
                let snap = h.snapshot();
                StageSnapshot {
                    stage: stage.as_str().to_string(),
                    count: snap.count,
                    total_ns: snap.sum,
                    mean_ns: snap.mean(),
                    buckets: buckets_of(h, ns_label),
                }
            })
            .collect();
        let serialize_encodings = SERIALIZE_ENCODINGS
            .iter()
            .zip(&self.serialize_encodings)
            .map(|(&name, h)| {
                let snap = h.snapshot();
                StageSnapshot {
                    stage: name.to_string(),
                    count: snap.count,
                    total_ns: snap.sum,
                    mean_ns: snap.mean(),
                    buckets: buckets_of(h, ns_label),
                }
            })
            .collect();
        StatsSnapshot {
            requests: self.requests.get(),
            errors: self.errors.get(),
            latency: buckets_of(&self.latency, bucket_label),
            batch_points,
            batch_secs,
            batch_points_per_sec: if batch_secs > 0.0 {
                batch_points as f64 / batch_secs
            } else {
                0.0
            },
            panics_caught: self.panics_caught.get(),
            deadlines_exceeded: self.deadlines_exceeded.get(),
            requests_shed: self.requests_shed.get(),
            degradations: self.degradations.get(),
            stats_dropped: self.stats_dropped.get(),
            stages,
            serialize_encodings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::new();
        s.record_request(Duration::from_micros(5), true);
        s.record_request(Duration::from_micros(50), false);
        s.record_request(Duration::from_secs(10), true);
        s.record_batch(1000, Duration::from_millis(100));
        s.record_panics_caught(3);
        s.record_deadline_exceeded();
        s.record_request_shed();
        s.record_request_shed();
        s.record_degradations(4);
        s.record_stats_dropped();
        let snap = s.snapshot();
        assert_eq!(snap.stats_dropped, 1);
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.latency.len(), NUM_BUCKETS);
        assert_eq!(snap.latency[0].count, 1);
        assert_eq!(snap.latency[1].count, 1);
        assert_eq!(snap.latency.last().unwrap().count, 1);
        assert_eq!(snap.latency.last().unwrap().le, "inf");
        assert_eq!(snap.batch_points, 1000);
        assert!((snap.batch_points_per_sec - 10_000.0).abs() < 500.0);
        assert_eq!(snap.panics_caught, 3);
        assert_eq!(snap.deadlines_exceeded, 1);
        assert_eq!(snap.requests_shed, 2);
        assert_eq!(snap.degradations, 4);
    }

    #[test]
    fn labels_are_human_readable() {
        let s = ServerStats::new();
        let labels: Vec<String> = s.snapshot().latency.into_iter().map(|b| b.le).collect();
        assert_eq!(
            labels,
            ["10us", "100us", "1ms", "10ms", "100ms", "1s", "inf"]
        );
    }

    #[test]
    fn stage_breakdown_tracks_each_stage_independently() {
        let s = ServerStats::new();
        s.record_stage(Stage::Parse, 500);
        s.record_stage(Stage::Parse, 1_500);
        s.record_stage(Stage::Eval, 2_000_000);
        let snap = s.snapshot();
        assert_eq!(snap.stages.len(), 5);
        let names: Vec<&str> = snap.stages.iter().map(|st| st.stage.as_str()).collect();
        assert_eq!(names, ["parse", "lookup", "eval", "degrade", "serialize"]);
        let parse = &snap.stages[0];
        assert_eq!(parse.count, 2);
        assert_eq!(parse.total_ns, 2_000);
        assert!((parse.mean_ns - 1_000.0).abs() < 1e-9);
        assert_eq!(parse.buckets[0].le, "1us");
        assert_eq!(parse.buckets[0].count, 1, "500ns is within 1us");
        assert_eq!(parse.buckets[1].count, 1, "1500ns is within 10us");
        let eval = &snap.stages[2];
        assert_eq!(eval.count, 1);
        assert_eq!(eval.buckets[3].le, "1ms");
        assert_eq!(eval.buckets[3].count, 0, "2ms exceeds the 1ms bucket");
        assert_eq!(eval.buckets[4].le, "10ms");
        assert_eq!(eval.buckets[4].count, 1);
        assert_eq!(snap.stages[1].count, 0, "lookup untouched");
    }

    #[test]
    fn serialize_stage_splits_by_encoding() {
        let s = ServerStats::new();
        s.record_stage(Stage::Serialize, 2_000);
        s.record_serialize_encoding(WireEncoding::Ndjson, 2_000);
        s.record_stage(Stage::Serialize, 500);
        s.record_serialize_encoding(WireEncoding::BinaryV1, 500);
        s.record_serialize_encoding(WireEncoding::BinaryV1, 700);
        let snap = s.snapshot();
        // Canonical stage list is untouched by the split.
        assert_eq!(snap.stages.len(), 5);
        assert_eq!(snap.stages[4].count, 2);
        let names: Vec<&str> = snap
            .serialize_encodings
            .iter()
            .map(|st| st.stage.as_str())
            .collect();
        assert_eq!(names, ["serialize_ndjson", "serialize_binary"]);
        assert_eq!(snap.serialize_encodings[0].count, 1);
        assert_eq!(snap.serialize_encodings[0].total_ns, 2_000);
        assert_eq!(snap.serialize_encodings[1].count, 2);
        assert_eq!(snap.serialize_encodings[1].total_ns, 1_200);
        let text = s.metrics_ndjson();
        assert!(text.contains("\"metric\":\"request_stage_serialize_ndjson_ns\""));
        assert!(text.contains("\"metric\":\"request_stage_serialize_binary_ns\""));
    }

    #[test]
    fn metrics_drain_as_ndjson() {
        let s = ServerStats::new();
        s.record_request(Duration::from_micros(5), true);
        s.record_stage(Stage::Eval, 42);
        let text = s.metrics_ndjson();
        assert!(text.contains("\"metric\":\"requests_total\",\"type\":\"counter\",\"value\":1"));
        assert!(text.contains("\"metric\":\"request_stage_eval_ns\""));
        // One line per metric, all valid JSON objects.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
