//! Lock-free request counters and latency histogram for the server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper edges of the latency histogram buckets, in microseconds; an
/// implicit unbounded bucket follows.
const BUCKET_EDGES_US: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Number of histogram buckets (the edges plus the overflow bucket).
pub const NUM_BUCKETS: usize = BUCKET_EDGES_US.len() + 1;

/// One histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyBucket {
    /// Inclusive upper edge, e.g. `"100us"`, or `"inf"` for the last.
    pub le: String,
    /// Requests that completed within this bucket.
    pub count: u64,
}

/// Point-in-time view of the server counters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Total requests handled (including failures).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Latency histogram over all requests.
    pub latency: Vec<LatencyBucket>,
    /// Points evaluated across all `batch` requests.
    pub batch_points: u64,
    /// Wall-clock seconds spent inside batch evaluation.
    pub batch_secs: f64,
    /// Aggregate batch throughput, points per second.
    pub batch_points_per_sec: f64,
    /// Per-point panics caught and converted to `internal` errors.
    pub panics_caught: u64,
    /// Requests that ran past their deadline and were cut short.
    pub deadlines_exceeded: u64,
    /// Requests shed at the in-flight budget (`overloaded`).
    pub requests_shed: u64,
    /// Points whose ROM fit degraded to a lower approximation order.
    pub degradations: u64,
}

/// Atomic counters; cheap to update from the request path.
#[derive(Default)]
pub struct ServerStats {
    requests: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
    batch_points: AtomicU64,
    batch_nanos: AtomicU64,
    panics_caught: AtomicU64,
    deadlines_exceeded: AtomicU64,
    requests_shed: AtomicU64,
    degradations: AtomicU64,
}

fn bucket_label(i: usize) -> String {
    match BUCKET_EDGES_US.get(i) {
        Some(&us) if us < 1_000 => format!("{us}us"),
        Some(&us) if us < 1_000_000 => format!("{}ms", us / 1_000),
        Some(&us) => format!("{}s", us / 1_000_000),
        None => "inf".to_string(),
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request and its latency.
    pub fn record_request(&self, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let idx = BUCKET_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed batch: how many points, how long the
    /// evaluation took.
    pub fn record_batch(&self, points: usize, elapsed: Duration) {
        self.batch_points
            .fetch_add(points as u64, Ordering::Relaxed);
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.batch_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records `n` per-point panics caught by the batch engine.
    pub fn record_panics_caught(&self, n: u64) {
        self.panics_caught.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request cut short by its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed at the in-flight budget.
    pub fn record_request_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` points served at a degraded approximation order.
    pub fn record_degradations(&self, n: u64) {
        self.degradations.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency = (0..NUM_BUCKETS)
            .map(|i| LatencyBucket {
                le: bucket_label(i),
                count: self.buckets[i].load(Ordering::Relaxed),
            })
            .collect();
        let batch_points = self.batch_points.load(Ordering::Relaxed);
        let batch_secs = self.batch_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency,
            batch_points,
            batch_secs,
            batch_points_per_sec: if batch_secs > 0.0 {
                batch_points as f64 / batch_secs
            } else {
                0.0
            },
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::new();
        s.record_request(Duration::from_micros(5), true);
        s.record_request(Duration::from_micros(50), false);
        s.record_request(Duration::from_secs(10), true);
        s.record_batch(1000, Duration::from_millis(100));
        s.record_panics_caught(3);
        s.record_deadline_exceeded();
        s.record_request_shed();
        s.record_request_shed();
        s.record_degradations(4);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.latency.len(), NUM_BUCKETS);
        assert_eq!(snap.latency[0].count, 1);
        assert_eq!(snap.latency[1].count, 1);
        assert_eq!(snap.latency.last().unwrap().count, 1);
        assert_eq!(snap.latency.last().unwrap().le, "inf");
        assert_eq!(snap.batch_points, 1000);
        assert!((snap.batch_points_per_sec - 10_000.0).abs() < 500.0);
        assert_eq!(snap.panics_caught, 3);
        assert_eq!(snap.deadlines_exceeded, 1);
        assert_eq!(snap.requests_shed, 2);
        assert_eq!(snap.degradations, 4);
    }

    #[test]
    fn labels_are_human_readable() {
        let labels: Vec<String> = (0..NUM_BUCKETS).map(bucket_label).collect();
        assert_eq!(
            labels,
            ["10us", "100us", "1ms", "10ms", "100ms", "1s", "inf"]
        );
    }
}
