//! Error types for the serving runtime: a stable machine-readable code
//! taxonomy, the request-level [`ServeError`], and the per-point
//! [`PointError`].
//!
//! Every failure a client can see maps onto one of the [`ErrorCode`]s, so
//! callers dispatch on `"code"` instead of parsing prose. The codes are
//! part of the wire format — add new ones freely, never repurpose old
//! ones.

use std::fmt;

/// Stable machine-readable error codes carried by every error response
/// and every failed batch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request was malformed: bad JSON, missing fields, non-finite
    /// symbol values, over-limit batch or line size.
    BadRequest,
    /// The named model is not in the registry.
    NotFound,
    /// The artifact file is corrupt, truncated, version-incompatible, or
    /// carries non-finite coefficients.
    BadArtifact,
    /// The request ran past its deadline and was cancelled.
    DeadlineExceeded,
    /// The server is at its in-flight budget; retry after the hinted
    /// backoff.
    Overloaded,
    /// Evaluation was numerically unhealthy: non-finite moments, an
    /// unstable/singular Padé fit with no usable fallback.
    NumericUnstable,
    /// An unexpected internal failure (e.g. a panic caught inside the
    /// batch engine).
    Internal,
    /// The shard that owns the requested model cannot serve right now —
    /// its circuit breaker is open after repeated worker crashes, or it
    /// is draining for shutdown. Retry after the hinted backoff; other
    /// shards are unaffected.
    Unavailable,
}

impl ErrorCode {
    /// The wire form, e.g. `"deadline_exceeded"`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::BadArtifact => "bad_artifact",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::NumericUnstable => "numeric_unstable",
            ErrorCode::Internal => "internal",
            ErrorCode::Unavailable => "unavailable",
        }
    }

    /// Parses the wire string form back to the typed code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "not_found" => ErrorCode::NotFound,
            "bad_artifact" => ErrorCode::BadArtifact,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "overloaded" => ErrorCode::Overloaded,
            "numeric_unstable" => ErrorCode::NumericUnstable,
            "internal" => ErrorCode::Internal,
            "unavailable" => ErrorCode::Unavailable,
            _ => return None,
        })
    }

    /// The single-byte form used by the binary-v1 batch frame's per-point
    /// status column. `0` is reserved for "ok" (no error); codes start at
    /// `1`. Stable wire contract — append only, never renumber.
    pub fn wire_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::NotFound => 2,
            ErrorCode::BadArtifact => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Overloaded => 5,
            ErrorCode::NumericUnstable => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Unavailable => 8,
        }
    }

    /// Inverse of [`ErrorCode::wire_byte`]; `0` (ok) and unknown bytes
    /// return `None`.
    pub fn from_wire_byte(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::BadArtifact,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::NumericUnstable,
            7 => ErrorCode::Internal,
            8 => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One batch point's failure: a stable code plus a human-readable
/// message. Serialized per point as `{"error": …, "code": …}`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PointError {
    /// Wire form of the [`ErrorCode`] (kept as a string so the struct
    /// serializes without a custom impl).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl PointError {
    /// A point error with the given code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        PointError {
            code: code.as_str().to_string(),
            message: message.into(),
        }
    }

    /// Shorthand for a [`ErrorCode::BadRequest`] point error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// Shorthand for a [`ErrorCode::NumericUnstable`] point error.
    pub fn numeric(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::NumericUnstable, message)
    }

    /// Shorthand for an [`ErrorCode::Internal`] point error (caught
    /// panics).
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }

    /// Shorthand for an [`ErrorCode::DeadlineExceeded`] point error.
    pub fn deadline(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::DeadlineExceeded, message)
    }
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for PointError {}

/// Errors produced by the artifact, registry, batch, and server layers.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Filesystem failure (path and source).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is not an awesym artifact (bad magic/format tag or
    /// malformed JSON).
    BadFormat {
        /// What was wrong.
        what: String,
    },
    /// The artifact's format version is not supported by this build.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The payload checksum does not match — the artifact is corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: String,
        /// Checksum computed from the payload.
        actual: String,
    },
    /// The artifact parsed and checksummed cleanly but carries non-finite
    /// coefficient values (NaN survives JSON as `null`); evaluating such a
    /// model would poison every request that touches it.
    ArtifactNumeric {
        /// Which quantity was non-finite.
        what: String,
    },
    /// A registry lookup failed.
    ModelNotFound {
        /// The requested model name.
        name: String,
    },
    /// A request was structurally invalid.
    BadRequest {
        /// What was wrong.
        what: String,
    },
    /// The request ran past its deadline and was cancelled between
    /// points.
    DeadlineExceeded {
        /// The configured/requested deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The in-flight budget is exhausted; the request was shed instead of
    /// queued.
    Overloaded {
        /// Requests currently in flight.
        inflight: u64,
        /// The configured budget.
        max_inflight: u64,
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The shard owning the requested model cannot serve right now
    /// (circuit breaker open after repeated worker crashes, or shard
    /// draining); retry after the hinted backoff.
    Unavailable {
        /// The shard that refused the request.
        shard: u64,
        /// Why the shard is unavailable (e.g. `"circuit breaker open"`,
        /// `"draining"`).
        reason: String,
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// Model compilation or evaluation failed.
    Model(awesym_partition::PartitionError),
    /// A single-point evaluation failed (carries the point's code).
    Point(PointError),
    /// An internal invariant broke (e.g. a caught panic).
    Internal {
        /// What happened.
        what: String,
    },
}

impl ServeError {
    /// The stable machine-readable code for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Io { .. } | ServeError::Internal { .. } => ErrorCode::Internal,
            ServeError::BadFormat { .. }
            | ServeError::VersionMismatch { .. }
            | ServeError::ChecksumMismatch { .. }
            | ServeError::ArtifactNumeric { .. } => ErrorCode::BadArtifact,
            ServeError::ModelNotFound { .. } => ErrorCode::NotFound,
            ServeError::BadRequest { .. } => ErrorCode::BadRequest,
            ServeError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::Unavailable { .. } => ErrorCode::Unavailable,
            ServeError::Model(e) => partition_code(e),
            ServeError::Point(p) => point_code(p),
        }
    }
}

/// Maps a model-layer failure onto the taxonomy: numeric failures (Padé,
/// singular systems) are `numeric_unstable`; structural ones (bad
/// bindings, role mismatches) are the client's fault.
pub(crate) fn partition_code(e: &awesym_partition::PartitionError) -> ErrorCode {
    use awesym_partition::PartitionError as P;
    match e {
        P::Awe(_) | P::SingularNumericPartition | P::SingularSymbolicSystem => {
            ErrorCode::NumericUnstable
        }
        _ => ErrorCode::BadRequest,
    }
}

/// Recovers the typed code from a point error's wire string, defaulting
/// to `internal` for forward compatibility.
pub(crate) fn point_code(p: &PointError) -> ErrorCode {
    ErrorCode::parse(&p.code).unwrap_or(ErrorCode::Internal)
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            ServeError::BadFormat { what } => write!(f, "not a valid .awesym artifact: {what}"),
            ServeError::VersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is newer than supported version {supported}"
            ),
            ServeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact payload corrupt: checksum {actual} != recorded {expected}"
            ),
            ServeError::ArtifactNumeric { what } => {
                write!(f, "artifact carries non-finite values: {what}")
            }
            ServeError::ModelNotFound { name } => write!(f, "no model named '{name}' in registry"),
            ServeError::BadRequest { what } => write!(f, "bad request: {what}"),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "request exceeded its {deadline_ms} ms deadline")
            }
            ServeError::Overloaded {
                inflight,
                max_inflight,
                retry_after_ms,
            } => write!(
                f,
                "server overloaded ({inflight}/{max_inflight} requests in flight), \
                 retry in {retry_after_ms} ms"
            ),
            ServeError::Unavailable {
                shard,
                reason,
                retry_after_ms,
            } => write!(
                f,
                "shard {shard} unavailable ({reason}), retry in {retry_after_ms} ms"
            ),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Point(p) => write!(f, "evaluation failed: {}", p.message),
            ServeError::Internal { what } => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<awesym_partition::PartitionError> for ServeError {
    fn from(e: awesym_partition::PartitionError) -> Self {
        ServeError::Model(e)
    }
}

impl From<PointError> for ServeError {
    fn from(p: PointError) -> Self {
        ServeError::Point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        for (code, s) in [
            (ErrorCode::BadRequest, "bad_request"),
            (ErrorCode::NotFound, "not_found"),
            (ErrorCode::BadArtifact, "bad_artifact"),
            (ErrorCode::DeadlineExceeded, "deadline_exceeded"),
            (ErrorCode::Overloaded, "overloaded"),
            (ErrorCode::NumericUnstable, "numeric_unstable"),
            (ErrorCode::Internal, "internal"),
            (ErrorCode::Unavailable, "unavailable"),
        ] {
            assert_eq!(code.as_str(), s);
            assert_eq!(code.to_string(), s);
        }
    }

    #[test]
    fn serve_errors_map_to_codes() {
        assert_eq!(
            ServeError::BadRequest { what: "x".into() }.code(),
            ErrorCode::BadRequest
        );
        assert_eq!(
            ServeError::ModelNotFound { name: "m".into() }.code(),
            ErrorCode::NotFound
        );
        assert_eq!(
            ServeError::ChecksumMismatch {
                expected: "a".into(),
                actual: "b".into()
            }
            .code(),
            ErrorCode::BadArtifact
        );
        assert_eq!(
            ServeError::ArtifactNumeric { what: "w".into() }.code(),
            ErrorCode::BadArtifact
        );
        assert_eq!(
            ServeError::DeadlineExceeded { deadline_ms: 5 }.code(),
            ErrorCode::DeadlineExceeded
        );
        assert_eq!(
            ServeError::Overloaded {
                inflight: 2,
                max_inflight: 2,
                retry_after_ms: 50
            }
            .code(),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ServeError::Internal { what: "w".into() }.code(),
            ErrorCode::Internal
        );
        assert_eq!(
            ServeError::Unavailable {
                shard: 1,
                reason: "circuit breaker open".into(),
                retry_after_ms: 250
            }
            .code(),
            ErrorCode::Unavailable
        );
        // Numeric model failures are numeric_unstable; structural ones are
        // the client's fault.
        assert_eq!(
            ServeError::Model(awesym_partition::PartitionError::Awe(
                awesym_awe::AweError::ZeroResponse
            ))
            .code(),
            ErrorCode::NumericUnstable
        );
        assert_eq!(
            ServeError::Model(awesym_partition::PartitionError::BadBinding { what: "w".into() })
                .code(),
            ErrorCode::BadRequest
        );
        // Point errors delegate their code.
        assert_eq!(
            ServeError::Point(PointError::numeric("nan")).code(),
            ErrorCode::NumericUnstable
        );
        assert_eq!(
            ServeError::Point(PointError::new(ErrorCode::Internal, "panic")).code(),
            ErrorCode::Internal
        );
    }

    #[test]
    fn wire_bytes_round_trip_and_zero_means_ok() {
        let all = [
            ErrorCode::BadRequest,
            ErrorCode::NotFound,
            ErrorCode::BadArtifact,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Overloaded,
            ErrorCode::NumericUnstable,
            ErrorCode::Internal,
            ErrorCode::Unavailable,
        ];
        for code in all {
            let b = code.wire_byte();
            assert_ne!(b, 0, "0 is reserved for ok");
            assert_eq!(ErrorCode::from_wire_byte(b), Some(code));
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire_byte(0), None);
        assert_eq!(ErrorCode::from_wire_byte(200), None);
        assert_eq!(ErrorCode::parse("frobnicated"), None);
    }

    #[test]
    fn point_error_displays_code_and_message() {
        let p = PointError::bad_request("point has 1 values, model has 2 symbols");
        assert!(p.to_string().contains("2 symbols"));
        assert!(p.to_string().contains("bad_request"));
    }
}
