//! Error type for the serving runtime.

use std::fmt;

/// Errors produced by the artifact, registry, batch, and server layers.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure (path and source).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is not an awesym artifact (bad magic/format tag or
    /// malformed JSON).
    BadFormat {
        /// What was wrong.
        what: String,
    },
    /// The artifact's format version is not supported by this build.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The payload checksum does not match — the artifact is corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: String,
        /// Checksum computed from the payload.
        actual: String,
    },
    /// A registry lookup failed.
    ModelNotFound {
        /// The requested model name.
        name: String,
    },
    /// A request was structurally invalid.
    BadRequest {
        /// What was wrong.
        what: String,
    },
    /// Model compilation or evaluation failed.
    Model(awesym_partition::PartitionError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            ServeError::BadFormat { what } => write!(f, "not a valid .awesym artifact: {what}"),
            ServeError::VersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is newer than supported version {supported}"
            ),
            ServeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact payload corrupt: checksum {actual} != recorded {expected}"
            ),
            ServeError::ModelNotFound { name } => write!(f, "no model named '{name}' in registry"),
            ServeError::BadRequest { what } => write!(f, "bad request: {what}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<awesym_partition::PartitionError> for ServeError {
    fn from(e: awesym_partition::PartitionError) -> Self {
        ServeError::Model(e)
    }
}
