//! Serving runtime for compiled AWEsymbolic models.
//!
//! The paper's economics — one expensive symbolic compilation, then
//! microsecond evaluations — only pay off when the compiled model
//! outlives the process that built it and can be hammered with points.
//! This crate supplies that production half:
//!
//! - [`artifact`]: versioned, checksummed `.awesym` files
//!   ([`save_artifact`] / [`load_artifact`]);
//! - [`registry`]: a named, thread-safe, LRU-evicting in-memory
//!   [`ModelRegistry`];
//! - [`batch`]: [`evaluate_batch`], fanning points across scoped worker
//!   threads with per-thread scratch reuse and per-point errors;
//! - [`pool`]: the persistent [`WorkerPool`] — threads spawned once per
//!   shard, parked on a job queue, supervised and restarted with capped
//!   backoff when they die;
//! - [`shard`]: the crash-isolation layer — [`shard_of`] name placement,
//!   the warm/cold [`TieredRegistry`], the per-shard [`CircuitBreaker`],
//!   and the [`Shard`] supervisor tying them together;
//! - [`server`]: the newline-delimited-JSON [`Server`] engine behind
//!   `awesym serve`, with request/latency/throughput [`stats`] and the
//!   `health`/`drain` operational commands.
//!
//! The runtime is engineered to stay up under bad inputs: per-point
//! panics are caught and isolated, numeric ill-health degrades gracefully
//! to lower approximation orders, requests carry deadlines, the server
//! sheds load past its in-flight budget, and a storm on one shard —
//! panics, deadline blowouts, even dying worker threads — leaves its
//! neighbor shards' responses bit-identical — see `docs/robustness.md`
//! and, under the `fault-injection` feature, the deterministic `faults`
//! harness and cross-shard chaos suite that prove it.

#![forbid(unsafe_code)]
// Production code must route failures through the error taxonomy, not
// unwrap; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod artifact;
pub mod batch;
pub mod encode;
mod error;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod pool;
pub mod registry;
pub mod resolve;
pub mod server;
pub mod shard;
pub mod stats;

pub use artifact::{
    checksum, from_artifact_str, load_artifact, load_model_file, save_artifact, to_artifact_string,
    FORMAT_MINOR, FORMAT_TAG, FORMAT_VERSION,
};
pub use awesym_partition::Degradation;
pub use batch::{
    evaluate_batch, evaluate_batch_guarded, BatchOutcome, BatchOutput, DelaySummary, PointResult,
    PointValue, RomSummary,
};
pub use encode::{
    decode_frame, BinaryEncoder, DecodedFrame, Encoder, FrameError, NdjsonEncoder, WireEncoding,
};
pub use error::{ErrorCode, PointError, ServeError};
pub use pool::{PoolConfig, WorkerPool};
pub use registry::{ModelRegistry, RegistryStats};
pub use server::{Response, Server, ServerConfig, DEFAULT_CAPACITY};
pub use shard::{
    adaptive_retry_after_ms, shard_of, BreakerConfig, CircuitBreaker, Shard, ShardConfig,
    ShardHealth, TieredRegistry, TieredStats,
};
pub use stats::{ServerStats, Stage, StageSnapshot, StatsSnapshot, STAGES};
