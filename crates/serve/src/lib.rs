//! Serving runtime for compiled AWEsymbolic models.
//!
//! The paper's economics — one expensive symbolic compilation, then
//! microsecond evaluations — only pay off when the compiled model
//! outlives the process that built it and can be hammered with points.
//! This crate supplies that production half:
//!
//! - [`artifact`]: versioned, checksummed `.awesym` files
//!   ([`save_artifact`] / [`load_artifact`]);
//! - [`registry`]: a named, thread-safe, LRU-evicting in-memory
//!   [`ModelRegistry`];
//! - [`batch`]: [`evaluate_batch`], fanning points across scoped worker
//!   threads with per-thread scratch reuse and per-point errors;
//! - [`server`]: the newline-delimited-JSON [`Server`] engine behind
//!   `awesym serve`, with request/latency/throughput [`stats`].

#![forbid(unsafe_code)]

pub mod artifact;
pub mod batch;
mod error;
pub mod registry;
pub mod resolve;
pub mod server;
pub mod stats;

pub use artifact::{
    checksum, from_artifact_str, load_artifact, load_model_file, save_artifact, to_artifact_string,
    FORMAT_MINOR, FORMAT_TAG, FORMAT_VERSION,
};
pub use batch::{evaluate_batch, BatchOutput, DelaySummary, PointResult, PointValue, RomSummary};
pub use error::ServeError;
pub use registry::{ModelRegistry, RegistryStats};
pub use server::{Response, Server, DEFAULT_CAPACITY};
pub use stats::{ServerStats, StatsSnapshot};
