//! Pluggable response encoders: NDJSON (default) and the binary-v1
//! batch frame.
//!
//! Every byte the server emits — response lines, batch results, periodic
//! stats — goes through an [`Encoder`], writing into a caller-supplied
//! reusable `Vec<u8>` instead of allocating fresh `String`s. Floats take
//! the shortest-round-trip path (the vendored `ryu` formatter behind
//! [`serde_json::write_f64`]), and batch results are streamed straight
//! from [`PointResult`]s without building an intermediate `Content` tree.
//!
//! Clients pick an encoding per request with `"encoding":"binary-v1"`
//! (or the explicit default, `"encoding":"ndjson"`); anything else is a
//! typed `bad_request`. The binary frame only exists for `batch`
//! responses with a fixed per-point width — see `docs/wire-format.md`
//! for the full negotiation rules and frame layout.
//!
//! Encoding time counts against the request deadline: both encoders
//! check the deadline every [`DEADLINE_CHECK_STRIDE`] points while
//! streaming a batch body and abort with a typed `deadline_exceeded`
//! error when it trips mid-encode.

#![deny(clippy::unwrap_used)]

use crate::batch::{PointResult, PointValue};
use crate::error::{point_code, ErrorCode};
use crate::ServeError;
use awesym_partition::Degradation;
use serde::Content;
use serde_json::{write_escaped_str, write_f64, write_value};
use std::fmt;
use std::time::Instant;

/// Points encoded between deadline checks while streaming a batch body.
pub const DEADLINE_CHECK_STRIDE: usize = 256;

/// The wire encodings a request can negotiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireEncoding {
    /// One JSON object per line — the default, always available.
    #[default]
    Ndjson,
    /// The versioned little-endian batch frame (batch responses only).
    BinaryV1,
}

impl WireEncoding {
    /// The negotiation token, e.g. `"binary-v1"`.
    pub fn as_str(self) -> &'static str {
        match self {
            WireEncoding::Ndjson => "ndjson",
            WireEncoding::BinaryV1 => "binary-v1",
        }
    }
}

impl fmt::Display for WireEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resolves a request's `"encoding"` field. Absent means NDJSON; an
/// unknown or non-string value is a typed `bad_request` (the response to
/// which is itself NDJSON, so the client always gets a readable answer).
pub fn negotiate(req: &Content) -> Result<WireEncoding, ServeError> {
    match req.get("encoding") {
        None => Ok(WireEncoding::Ndjson),
        Some(v) => match v.as_str() {
            Some("ndjson") => Ok(WireEncoding::Ndjson),
            Some("binary-v1") => Ok(WireEncoding::BinaryV1),
            Some(other) => Err(ServeError::BadRequest {
                what: format!("unknown encoding '{other}' (ndjson|binary-v1)"),
            }),
            None => Err(ServeError::BadRequest {
                what: "'encoding' must be a string (ndjson|binary-v1)".into(),
            }),
        },
    }
}

/// A `batch` response ready to encode: the head fields that precede
/// `"results"` in the NDJSON form, plus the raw per-point outcomes the
/// encoder streams directly.
pub struct BatchBody {
    /// Fields preceding `results` (`ok`, `id`, `count`, `ok_count`, …).
    pub head: Vec<(&'static str, Content)>,
    /// The request's `id`, when it sent one. NDJSON already echoes it
    /// through `head`; the binary frame carries it in a dedicated id
    /// section (flag [`FLAG_HAS_ID`]) so correlation survives the
    /// columnar path too.
    pub id: Option<Content>,
    /// Per-point outcomes, in input order.
    pub results: Vec<PointResult>,
    /// Fixed per-point value width for the binary frame (`kind`-derived).
    pub cols: usize,
    /// Points that evaluated successfully.
    pub ok_count: u64,
    /// Evaluation wall time in nanoseconds (binary frame header field).
    pub elapsed_ns: u64,
    /// True when evaluation already ran out of deadline — per-point
    /// errors say so and the encoder must not cut the body again.
    pub deadline_exceeded: bool,
    /// The request deadline (absolute instant plus the millisecond figure
    /// for error reporting); encoding checks it cooperatively.
    pub deadline: Option<(Instant, u64)>,
}

/// What an encoder is asked to write.
pub enum ResponseBody {
    /// A generic response: an ordered field list (already `Content`).
    Fields(Vec<(&'static str, Content)>),
    /// A batch response: head fields plus streamed per-point results.
    Batch(BatchBody),
}

/// A response encoder writing into a reusable growable buffer.
///
/// Implementations append exactly one response per
/// [`Encoder::encode_response`] call and never write a trailing
/// newline — framing (newline for NDJSON, self-delimiting header for
/// binary) is the transport loop's concern.
pub trait Encoder: Sync {
    /// Which wire encoding this encoder produces for batch bodies.
    fn encoding(&self) -> WireEncoding;

    /// Appends one encoded response to `out`.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the body's deadline trips
    /// mid-encode; the caller discards the partial output and reports
    /// the typed error instead.
    fn encode_response(&self, body: &ResponseBody, out: &mut Vec<u8>) -> Result<(), ServeError>;

    /// Appends one encoded stats object to `out`. Stats are diagnostic
    /// metadata, not bulk floats, so both built-in encoders emit NDJSON.
    fn encode_stats(&self, stats: &Content, out: &mut Vec<u8>) {
        write_value(stats, out);
    }
}

/// Statics so the server can hand out `&'static dyn Encoder` without
/// allocation.
static NDJSON: NdjsonEncoder = NdjsonEncoder;
static BINARY: BinaryEncoder = BinaryEncoder;

/// The encoder for a negotiated wire encoding.
pub fn encoder_for(encoding: WireEncoding) -> &'static dyn Encoder {
    match encoding {
        WireEncoding::Ndjson => &NDJSON,
        WireEncoding::BinaryV1 => &BINARY,
    }
}

/// Returns `deadline_exceeded` when the batch deadline has passed.
///
/// Only consulted while the body is still healthy: when evaluation
/// already exceeded the deadline the response *is* the deadline report
/// (per-point errors plus the flag) and must go out whole.
fn check_encode_deadline(b: &BatchBody) -> Result<(), ServeError> {
    if b.deadline_exceeded {
        return Ok(());
    }
    if let Some((at, ms)) = b.deadline {
        if Instant::now() >= at {
            return Err(ServeError::DeadlineExceeded { deadline_ms: ms });
        }
    }
    Ok(())
}

/// Writes an ordered field list as one JSON object.
fn write_fields(fields: &[(&'static str, Content)], out: &mut Vec<u8>) {
    out.push(b'{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write_escaped_str(k, out);
        out.push(b':');
        write_value(v, out);
    }
    out.push(b'}');
}

fn write_f64_seq(vals: &[f64], out: &mut Vec<u8>) {
    out.push(b'[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write_f64(v, out);
    }
    out.push(b']');
}

fn write_opt_f64(v: Option<f64>, out: &mut Vec<u8>) {
    match v {
        Some(v) => write_f64(v, out),
        None => out.extend_from_slice(b"null"),
    }
}

fn write_degraded(d: &Degradation, out: &mut Vec<u8>) {
    out.extend_from_slice(b"{\"from_order\":");
    write_value(&Content::U64(d.from_order as u64), out);
    out.extend_from_slice(b",\"to_order\":");
    write_value(&Content::U64(d.to_order as u64), out);
    out.extend_from_slice(b",\"reason\":");
    write_escaped_str(&d.reason, out);
    out.push(b'}');
}

/// Streams one successful point value as a JSON object — same shape as
/// [`point_value_content`], without building the tree.
pub fn write_point_value(v: &PointValue, out: &mut Vec<u8>) {
    match v {
        PointValue::Moments(m) => {
            out.extend_from_slice(b"{\"moments\":");
            write_f64_seq(m, out);
            out.push(b'}');
        }
        PointValue::DcGain(g) => {
            out.extend_from_slice(b"{\"dc_gain\":");
            write_f64(*g, out);
            out.push(b'}');
        }
        PointValue::Step { samples, degraded } => {
            out.extend_from_slice(b"{\"step\":");
            write_f64_seq(samples, out);
            if let Some(d) = degraded {
                out.extend_from_slice(b",\"degraded\":");
                write_degraded(d, out);
            }
            out.push(b'}');
        }
        PointValue::Rom(r) => {
            out.extend_from_slice(b"{\"poles_re\":");
            write_f64_seq(&r.poles_re, out);
            out.extend_from_slice(b",\"poles_im\":");
            write_f64_seq(&r.poles_im, out);
            out.extend_from_slice(b",\"residues_re\":");
            write_f64_seq(&r.residues_re, out);
            out.extend_from_slice(b",\"residues_im\":");
            write_f64_seq(&r.residues_im, out);
            out.extend_from_slice(b",\"dc_gain\":");
            write_f64(r.dc_gain, out);
            out.extend_from_slice(b",\"stable\":");
            out.extend_from_slice(if r.stable { b"true".as_ref() } else { b"false" });
            out.extend_from_slice(b",\"delay_50\":");
            write_opt_f64(r.delay_50, out);
            if let Some(d) = &r.degraded {
                out.extend_from_slice(b",\"degraded\":");
                write_degraded(d, out);
            }
            out.push(b'}');
        }
        PointValue::Delays(d) => {
            out.extend_from_slice(b"{\"elmore\":");
            write_f64(d.elmore, out);
            out.extend_from_slice(b",\"ln2_elmore\":");
            write_f64(d.ln2_elmore, out);
            out.extend_from_slice(b",\"d2m\":");
            write_f64(d.d2m, out);
            out.extend_from_slice(b",\"two_pole\":");
            write_opt_f64(d.two_pole, out);
            out.push(b'}');
        }
    }
}

/// Streams one point outcome: the value object, or `{"error":…,"code":…}`.
pub fn write_point_result(r: &PointResult, out: &mut Vec<u8>) {
    match r {
        Ok(v) => write_point_value(v, out),
        Err(e) => {
            out.extend_from_slice(b"{\"error\":");
            write_escaped_str(&e.message, out);
            out.extend_from_slice(b",\"code\":");
            write_escaped_str(&e.code, out);
            out.push(b'}');
        }
    }
}

/// One successful point value as a `Content` tree (the single-point
/// `eval` response embeds it in its field list). Kept next to
/// [`write_point_value`] with a test pinning the two to the same shape.
pub fn point_value_content(v: &PointValue) -> Content {
    let mut out = Vec::new();
    write_point_value(v, &mut out);
    // The streamed form is valid JSON by construction; parsing it back is
    // a cold single-point path (eval), not the batch hot path.
    serde_json::from_slice(&out).unwrap_or(Content::Null)
}

/// The default encoder: one JSON object per response, floats via the
/// shortest-round-trip formatter, batch results streamed point by point.
pub struct NdjsonEncoder;

impl Encoder for NdjsonEncoder {
    fn encoding(&self) -> WireEncoding {
        WireEncoding::Ndjson
    }

    fn encode_response(&self, body: &ResponseBody, out: &mut Vec<u8>) -> Result<(), ServeError> {
        match body {
            ResponseBody::Fields(fields) => {
                write_fields(fields, out);
                Ok(())
            }
            ResponseBody::Batch(b) => {
                out.push(b'{');
                for (i, (k, v)) in b.head.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    write_escaped_str(k, out);
                    out.push(b':');
                    write_value(v, out);
                }
                out.extend_from_slice(b",\"results\":[");
                for (i, r) in b.results.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    if i % DEADLINE_CHECK_STRIDE == 0 && i > 0 {
                        check_encode_deadline(b)?;
                    }
                    write_point_result(r, out);
                }
                out.extend_from_slice(b"]}");
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// binary-v1 frame
// ---------------------------------------------------------------------

/// Frame magic, `b"AWSB"`.
pub const BINARY_MAGIC: [u8; 4] = *b"AWSB";
/// Frame format version.
pub const BINARY_VERSION: u16 = 1;
/// Header flag bit: evaluation was cut short by the deadline.
pub const FLAG_DEADLINE_EXCEEDED: u16 = 1;
/// Header flag bit: an id section (`u32` length + JSON bytes) follows
/// the fixed header, before the status column. Requests without an `id`
/// produce frames byte-identical to version 1 without this bit.
pub const FLAG_HAS_ID: u16 = 2;
/// Fixed header length in bytes (magic through `elapsed_ns`).
pub const BINARY_HEADER_LEN: usize = 28;

/// Per-point scalar for the columnar payload; error points and
/// out-of-range columns are NaN.
fn point_scalar(r: &PointResult, col: usize) -> f64 {
    let Ok(v) = r else {
        return f64::NAN;
    };
    match v {
        PointValue::Moments(m) => m.get(col).copied().unwrap_or(f64::NAN),
        PointValue::DcGain(g) => {
            if col == 0 {
                *g
            } else {
                f64::NAN
            }
        }
        PointValue::Step { samples, .. } => samples.get(col).copied().unwrap_or(f64::NAN),
        PointValue::Delays(d) => match col {
            0 => d.elmore,
            1 => d.ln2_elmore,
            2 => d.d2m,
            3 => d.two_pole.unwrap_or(f64::NAN),
            _ => f64::NAN,
        },
        // Variable-width; negotiation rejects `rom` before evaluation.
        PointValue::Rom(_) => f64::NAN,
    }
}

/// The binary-v1 encoder: a self-delimiting little-endian frame for
/// batch responses. Non-batch responses (including every error) fall
/// back to the NDJSON object so failures stay human-readable even on a
/// binary-negotiated stream.
pub struct BinaryEncoder;

impl Encoder for BinaryEncoder {
    fn encoding(&self) -> WireEncoding {
        WireEncoding::BinaryV1
    }

    fn encode_response(&self, body: &ResponseBody, out: &mut Vec<u8>) -> Result<(), ServeError> {
        let b = match body {
            ResponseBody::Fields(fields) => {
                write_fields(fields, out);
                return Ok(());
            }
            ResponseBody::Batch(b) => b,
        };
        let count = u32::try_from(b.results.len()).map_err(|_| ServeError::Internal {
            what: "batch too large for binary-v1 frame".into(),
        })?;
        let cols = u32::try_from(b.cols).map_err(|_| ServeError::Internal {
            what: "point width too large for binary-v1 frame".into(),
        })?;
        // Serialize the id section first: its length goes in the frame
        // and an oversized id must fail before any header bytes land.
        let id_bytes = match &b.id {
            Some(id) => {
                let mut buf = Vec::new();
                write_value(id, &mut buf);
                u32::try_from(buf.len()).map_err(|_| ServeError::Internal {
                    what: "request id too large for binary-v1 frame".into(),
                })?;
                Some(buf)
            }
            None => None,
        };
        let mut flags = if b.deadline_exceeded {
            FLAG_DEADLINE_EXCEEDED
        } else {
            0
        };
        if id_bytes.is_some() {
            flags |= FLAG_HAS_ID;
        }
        out.reserve(BINARY_HEADER_LEN + b.results.len() * (1 + 8 * b.cols));
        out.extend_from_slice(&BINARY_MAGIC);
        out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&cols.to_le_bytes());
        out.extend_from_slice(&u32::try_from(b.ok_count).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(&b.elapsed_ns.to_le_bytes());
        if let Some(buf) = &id_bytes {
            out.extend_from_slice(&(buf.len() as u32).to_le_bytes());
            out.extend_from_slice(buf);
        }
        for r in &b.results {
            out.push(match r {
                Ok(_) => 0,
                Err(e) => point_code(e).wire_byte(),
            });
        }
        // Columnar payload: all points' column 0, then column 1, …
        let mut since_check = 0usize;
        for col in 0..b.cols {
            for r in &b.results {
                since_check += 1;
                if since_check >= DEADLINE_CHECK_STRIDE {
                    since_check = 0;
                    check_encode_deadline(b)?;
                }
                out.extend_from_slice(&point_scalar(r, col).to_le_bytes());
            }
        }
        Ok(())
    }
}

/// Why a binary-v1 frame failed to decode. Mirrors the artifact
/// corruption taxonomy: every byte-level defect maps to a typed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the layout requires.
    Truncated {
        /// Bytes the layout needs.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first four bytes are not `AWSB`.
    BadMagic([u8; 4]),
    /// An unsupported frame version.
    BadVersion(u16),
    /// Bytes beyond the layout's end.
    TrailingBytes(usize),
    /// A per-point status byte outside the error-code table.
    BadErrorCode {
        /// The offending point index.
        index: usize,
        /// The byte found.
        byte: u8,
    },
    /// The id section (flag [`FLAG_HAS_ID`]) does not hold valid JSON.
    BadId,
    /// The header's `ok_count` disagrees with the status column.
    OkCountMismatch {
        /// `ok_count` from the header.
        header: u64,
        /// Zero status bytes actually counted.
        counted: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { need, got } => {
                write!(f, "frame truncated: need {need} bytes, got {got}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            FrameError::BadErrorCode { index, byte } => {
                write!(f, "point {index} carries unknown error-code byte {byte}")
            }
            FrameError::BadId => write!(f, "id section is not valid JSON"),
            FrameError::OkCountMismatch { header, counted } => write!(
                f,
                "header says {header} ok points, status column counts {counted}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded binary-v1 frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// The deadline flag from the header.
    pub deadline_exceeded: bool,
    /// The request id carried in the frame's id section, when present.
    pub id: Option<Content>,
    /// Point count.
    pub count: usize,
    /// Values per point.
    pub cols: usize,
    /// Successful points (validated against the status column).
    pub ok_count: u64,
    /// Evaluation wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-point status bytes (`0` = ok).
    pub codes: Vec<u8>,
    /// Column-major values: `columns[c][i]` is point `i`'s column `c`.
    pub columns: Vec<Vec<f64>>,
}

impl DecodedFrame {
    /// Point `i`'s values as a row (allocates; diagnostic convenience).
    pub fn point(&self, i: usize) -> Vec<f64> {
        self.columns
            .iter()
            .map(|c| c.get(i).copied().unwrap_or(f64::NAN))
            .collect()
    }

    /// Point `i`'s error code, `None` when it succeeded.
    pub fn code(&self, i: usize) -> Option<ErrorCode> {
        self.codes
            .get(i)
            .copied()
            .and_then(ErrorCode::from_wire_byte)
    }
}

fn le_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Decodes (and validates) one binary-v1 frame.
///
/// # Errors
///
/// A typed [`FrameError`] for every byte-level defect: short buffers,
/// bad magic/version, trailing bytes, unknown status bytes, and an
/// `ok_count` that disagrees with the status column.
pub fn decode_frame(bytes: &[u8]) -> Result<DecodedFrame, FrameError> {
    if bytes.len() < BINARY_HEADER_LEN {
        return Err(FrameError::Truncated {
            need: BINARY_HEADER_LEN,
            got: bytes.len(),
        });
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != BINARY_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = le_u16(bytes, 4);
    if version != BINARY_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let flags = le_u16(bytes, 6);
    let count = le_u32(bytes, 8) as usize;
    let cols = le_u32(bytes, 12) as usize;
    let ok_count = u64::from(le_u32(bytes, 16));
    let elapsed_ns = u64::from_le_bytes([
        bytes[20], bytes[21], bytes[22], bytes[23], bytes[24], bytes[25], bytes[26], bytes[27],
    ]);
    // The optional id section sits between the fixed header and the
    // status column; its length prefix must be readable before the body
    // layout can be sized.
    let (id, body_at) = if flags & FLAG_HAS_ID != 0 {
        if bytes.len() < BINARY_HEADER_LEN + 4 {
            return Err(FrameError::Truncated {
                need: BINARY_HEADER_LEN + 4,
                got: bytes.len(),
            });
        }
        let id_len = le_u32(bytes, BINARY_HEADER_LEN) as usize;
        let id_end = BINARY_HEADER_LEN + 4 + id_len;
        if bytes.len() < id_end {
            return Err(FrameError::Truncated {
                need: id_end,
                got: bytes.len(),
            });
        }
        let id: Content = serde_json::from_slice(&bytes[BINARY_HEADER_LEN + 4..id_end])
            .map_err(|_| FrameError::BadId)?;
        (Some(id), id_end)
    } else {
        (None, BINARY_HEADER_LEN)
    };
    let need = count
        .checked_mul(cols)
        .and_then(|v| v.checked_mul(8))
        .and_then(|v| v.checked_add(count))
        .and_then(|v| v.checked_add(body_at))
        .ok_or(FrameError::Truncated {
            need: usize::MAX,
            got: bytes.len(),
        })?;
    if bytes.len() < need {
        return Err(FrameError::Truncated {
            need,
            got: bytes.len(),
        });
    }
    if bytes.len() > need {
        return Err(FrameError::TrailingBytes(bytes.len() - need));
    }
    let codes = bytes[body_at..body_at + count].to_vec();
    for (index, &byte) in codes.iter().enumerate() {
        if byte != 0 && ErrorCode::from_wire_byte(byte).is_none() {
            return Err(FrameError::BadErrorCode { index, byte });
        }
    }
    let counted = codes.iter().filter(|&&b| b == 0).count() as u64;
    if counted != ok_count {
        return Err(FrameError::OkCountMismatch {
            header: ok_count,
            counted,
        });
    }
    let mut columns = Vec::with_capacity(cols);
    let mut at = body_at + count;
    for _ in 0..cols {
        let mut col = Vec::with_capacity(count);
        for _ in 0..count {
            col.push(f64::from_le_bytes([
                bytes[at],
                bytes[at + 1],
                bytes[at + 2],
                bytes[at + 3],
                bytes[at + 4],
                bytes[at + 5],
                bytes[at + 6],
                bytes[at + 7],
            ]));
            at += 8;
        }
        columns.push(col);
    }
    Ok(DecodedFrame {
        deadline_exceeded: flags & FLAG_DEADLINE_EXCEEDED != 0,
        id,
        count,
        cols,
        ok_count,
        elapsed_ns,
        codes,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::DelaySummary;
    use crate::PointError;
    use std::time::Duration;

    fn moments_batch(n: usize) -> BatchBody {
        let results: Vec<PointResult> = (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    Err(PointError::numeric("injected"))
                } else {
                    Ok(PointValue::Moments(vec![
                        i as f64 + 0.125,
                        -(i as f64) * 1e-9,
                        1.0 / (i as f64 + 1.0),
                        f64::MIN_POSITIVE * (i as f64 + 1.0),
                    ]))
                }
            })
            .collect();
        let ok_count = results.iter().filter(|r| r.is_ok()).count() as u64;
        BatchBody {
            head: vec![
                ("ok", Content::Bool(true)),
                ("count", Content::U64(n as u64)),
                ("ok_count", Content::U64(ok_count)),
            ],
            id: None,
            results,
            cols: 4,
            ok_count,
            elapsed_ns: 123_456,
            deadline_exceeded: false,
            deadline: None,
        }
    }

    #[test]
    fn negotiation_rules() {
        let none: Content = serde_json::from_str(r#"{"cmd":"batch"}"#).unwrap();
        assert_eq!(negotiate(&none).unwrap(), WireEncoding::Ndjson);
        let nd: Content = serde_json::from_str(r#"{"encoding":"ndjson"}"#).unwrap();
        assert_eq!(negotiate(&nd).unwrap(), WireEncoding::Ndjson);
        let bin: Content = serde_json::from_str(r#"{"encoding":"binary-v1"}"#).unwrap();
        assert_eq!(negotiate(&bin).unwrap(), WireEncoding::BinaryV1);
        for bad in [r#"{"encoding":"binary-v2"}"#, r#"{"encoding":42}"#] {
            let req: Content = serde_json::from_str(bad).unwrap();
            let e = negotiate(&req).unwrap_err();
            assert_eq!(e.code(), ErrorCode::BadRequest, "{bad}");
            assert!(e.to_string().contains("ndjson|binary-v1"), "{e}");
        }
    }

    #[test]
    fn ndjson_fields_match_content_tree_serialization() {
        let fields = vec![
            ("ok", Content::Bool(true)),
            ("name", Content::Str("a \"quoted\" name\n".into())),
            ("x", Content::F64(0.1)),
            ("n", Content::I64(-3)),
        ];
        let mut out = Vec::new();
        NdjsonEncoder
            .encode_response(&ResponseBody::Fields(fields.clone()), &mut out)
            .unwrap();
        let tree = Content::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        assert_eq!(
            String::from_utf8(out).unwrap(),
            serde_json::to_string(&tree).unwrap()
        );
    }

    #[test]
    fn streamed_point_values_match_content_form() {
        let deg = Degradation {
            from_order: 3,
            to_order: 2,
            reason: "unstable \"fit\"".into(),
        };
        let values = [
            PointValue::Moments(vec![1.5e-9, -2.0, 0.0]),
            PointValue::DcGain(0.9999999999999999),
            PointValue::Step {
                samples: vec![0.0, 0.5, 1.0],
                degraded: Some(deg.clone()),
            },
            PointValue::Step {
                samples: vec![],
                degraded: None,
            },
            PointValue::Rom(crate::RomSummary {
                poles_re: vec![-1e9, -2e9],
                poles_im: vec![0.0, 0.0],
                residues_re: vec![0.5, 0.5],
                residues_im: vec![0.0, -0.0],
                dc_gain: 1.0,
                stable: true,
                delay_50: None,
                degraded: Some(deg),
            }),
            PointValue::Delays(DelaySummary {
                elmore: 3e-6,
                ln2_elmore: 2.1e-6,
                d2m: 2.9e-6,
                two_pole: None,
            }),
        ];
        for v in values {
            let mut streamed = Vec::new();
            write_point_value(&v, &mut streamed);
            let streamed = String::from_utf8(streamed).unwrap();
            let tree = serde_json::to_string(&point_value_content(&v)).unwrap();
            assert_eq!(streamed, tree, "{v:?}");
            // And the streamed form is valid JSON.
            serde_json::from_str::<Content>(&streamed).unwrap();
        }
        let mut err = Vec::new();
        write_point_result(&Err(PointError::numeric("NaN \"moments\"")), &mut err);
        let c: Content = serde_json::from_slice(&err).unwrap();
        assert_eq!(
            c.get("code").and_then(Content::as_str),
            Some("numeric_unstable")
        );
    }

    #[test]
    fn binary_round_trips_bit_exactly() {
        let b = moments_batch(53);
        let mut out = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
        let frame = decode_frame(&out).unwrap();
        assert_eq!(frame.count, 53);
        assert_eq!(frame.cols, 4);
        assert!(!frame.deadline_exceeded);
        assert_eq!(frame.elapsed_ns, 123_456);
        let b = moments_batch(53);
        for (i, r) in b.results.iter().enumerate() {
            match r {
                Ok(PointValue::Moments(m)) => {
                    assert_eq!(frame.codes[i], 0);
                    for (c, &want) in m.iter().enumerate() {
                        assert_eq!(
                            frame.columns[c][i].to_bits(),
                            want.to_bits(),
                            "point {i} col {c}"
                        );
                    }
                }
                Err(e) => {
                    assert_eq!(frame.code(i), Some(point_code(e)));
                    assert!(frame.columns.iter().all(|col| col[i].is_nan()));
                }
                Ok(other) => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn binary_golden_frame_bytes() {
        let b = BatchBody {
            head: vec![],
            id: None,
            results: vec![
                Ok(PointValue::DcGain(1.0)),
                Err(PointError::deadline("late")),
            ],
            cols: 1,
            ok_count: 1,
            elapsed_ns: 0x0102030405060708,
            deadline_exceeded: true,
            deadline: None,
        };
        let mut out = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
        let mut want = Vec::new();
        want.extend_from_slice(b"AWSB");
        want.extend_from_slice(&1u16.to_le_bytes()); // version
        want.extend_from_slice(&1u16.to_le_bytes()); // flags: deadline
        want.extend_from_slice(&2u32.to_le_bytes()); // count
        want.extend_from_slice(&1u32.to_le_bytes()); // cols
        want.extend_from_slice(&1u32.to_le_bytes()); // ok_count
        want.extend_from_slice(&0x0102030405060708u64.to_le_bytes());
        want.push(0); // point 0 ok
        want.push(ErrorCode::DeadlineExceeded.wire_byte());
        want.extend_from_slice(&1.0f64.to_le_bytes());
        want.extend_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(out, want);
        assert!(decode_frame(&out).unwrap().deadline_exceeded);
    }

    #[test]
    fn id_section_round_trips_and_absent_id_keeps_legacy_layout() {
        // No id: the flag stays clear and the decoded id is None.
        let mut plain = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(moments_batch(5)), &mut plain)
            .unwrap();
        assert_eq!(le_u16(&plain, 6) & FLAG_HAS_ID, 0);
        assert_eq!(decode_frame(&plain).unwrap().id, None);

        // Ids of every envelope-legal JSON shape survive the frame.
        let ids = [
            Content::U64(42),
            Content::Str("req-\"7\"-β".into()),
            Content::I64(-3),
        ];
        for want in ids {
            let mut b = moments_batch(5);
            b.id = Some(want.clone());
            let mut out = Vec::new();
            BinaryEncoder
                .encode_response(&ResponseBody::Batch(b), &mut out)
                .unwrap();
            assert_ne!(le_u16(&out, 6) & FLAG_HAS_ID, 0);
            let frame = decode_frame(&out).unwrap();
            // Compare as JSON text: the parser may pick a different
            // integer variant (I64 vs U64) for the same value.
            assert_eq!(
                frame.id.as_ref().map(|v| serde_json::to_string(v).unwrap()),
                Some(serde_json::to_string(&want).unwrap())
            );
            // The body decodes identically to the id-free frame
            // (bitwise — error points are NaN).
            let plain_frame = decode_frame(&plain).unwrap();
            assert_eq!(frame.codes, plain_frame.codes);
            for (a, b) in frame
                .columns
                .iter()
                .flatten()
                .zip(plain_frame.columns.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // The id section is pure insertion: header plus tail match
            // the id-free frame byte for byte.
            assert_eq!(out[8..BINARY_HEADER_LEN], plain[8..BINARY_HEADER_LEN]);
            let id_len = le_u32(&out, BINARY_HEADER_LEN) as usize;
            assert_eq!(
                out[BINARY_HEADER_LEN + 4 + id_len..],
                plain[BINARY_HEADER_LEN..]
            );
        }
    }

    #[test]
    fn id_section_defects_are_typed() {
        let mut b = moments_batch(3);
        b.id = Some(Content::Str("corr-9".into()));
        let mut out = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
        // Truncating inside the id length prefix or the id bytes reports
        // Truncated, never a panic.
        for cut in [BINARY_HEADER_LEN + 2, BINARY_HEADER_LEN + 5] {
            assert!(
                matches!(decode_frame(&out[..cut]), Err(FrameError::Truncated { .. })),
                "cut at {cut}"
            );
        }
        // Corrupting the id's JSON is a typed BadId.
        let mut bad = out.clone();
        bad[BINARY_HEADER_LEN + 4] = b'x'; // opening quote -> garbage
        assert_eq!(decode_frame(&bad), Err(FrameError::BadId));
        // The pristine frame still decodes.
        assert_eq!(
            decode_frame(&out).unwrap().id,
            Some(Content::Str("corr-9".into()))
        );
    }

    #[test]
    fn corrupted_frames_are_rejected_with_typed_reasons() {
        let mut out = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(moments_batch(9)), &mut out)
            .unwrap();
        // Every truncation point fails (sampled densely near the header).
        for cut in (0..out.len()).step_by(7).chain([out.len() - 1]) {
            assert!(
                matches!(decode_frame(&out[..cut]), Err(FrameError::Truncated { .. })),
                "cut at {cut}"
            );
        }
        let mut bad = out.clone();
        bad[0] ^= 0x40;
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic(_))));
        let mut bad = out.clone();
        bad[4] = 9;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadVersion(9)));
        let mut bad = out.clone();
        bad.push(0);
        assert_eq!(decode_frame(&bad), Err(FrameError::TrailingBytes(1)));
        let mut bad = out.clone();
        bad[BINARY_HEADER_LEN] = 250; // point 0's status byte
        assert_eq!(
            decode_frame(&bad),
            Err(FrameError::BadErrorCode {
                index: 0,
                byte: 250
            })
        );
        let mut bad = out.clone();
        bad[16] ^= 1; // ok_count low byte
        assert!(matches!(
            decode_frame(&bad),
            Err(FrameError::OkCountMismatch { .. })
        ));
        // The pristine frame still decodes.
        decode_frame(&out).unwrap();
    }

    #[test]
    fn encode_deadline_trips_mid_encode_unless_already_reported() {
        let past = Instant::now() - Duration::from_millis(5);
        let mut b = moments_batch(DEADLINE_CHECK_STRIDE * 3);
        b.deadline = Some((past, 7));
        let mut out = Vec::new();
        let err = NdjsonEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::DeadlineExceeded);
        assert!(err.to_string().contains("7 ms"), "{err}");

        let mut b = moments_batch(DEADLINE_CHECK_STRIDE * 3);
        b.deadline = Some((past, 7));
        let mut out = Vec::new();
        let err = BinaryEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::DeadlineExceeded);

        // When evaluation already reported the deadline, the response IS
        // the deadline report and must encode fully.
        let mut b = moments_batch(DEADLINE_CHECK_STRIDE * 3);
        b.deadline = Some((past, 7));
        b.deadline_exceeded = true;
        let mut out = Vec::new();
        NdjsonEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
        let mut b = moments_batch(DEADLINE_CHECK_STRIDE * 3);
        b.deadline = Some((past, 7));
        b.deadline_exceeded = true;
        let mut out = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
        decode_frame(&out).unwrap();
        // A generous deadline encodes fine.
        let mut b = moments_batch(DEADLINE_CHECK_STRIDE * 3);
        b.deadline = Some((Instant::now() + Duration::from_secs(3600), 3_600_000));
        let mut out = Vec::new();
        NdjsonEncoder
            .encode_response(&ResponseBody::Batch(b), &mut out)
            .unwrap();
    }

    #[test]
    fn fields_fall_back_to_ndjson_on_the_binary_encoder() {
        let fields = vec![
            ("ok", Content::Bool(false)),
            ("error", Content::Str("bad request: nope".into())),
            ("code", Content::Str("bad_request".into())),
        ];
        let mut bin = Vec::new();
        BinaryEncoder
            .encode_response(&ResponseBody::Fields(fields.clone()), &mut bin)
            .unwrap();
        let mut nd = Vec::new();
        NdjsonEncoder
            .encode_response(&ResponseBody::Fields(fields), &mut nd)
            .unwrap();
        assert_eq!(bin, nd, "errors are NDJSON on both encoders");
        assert!(bin.starts_with(b"{"));
    }

    #[test]
    fn stats_encode_as_ndjson_on_both() {
        let stats: Content = serde_json::from_str(r#"{"stats":true,"requests":3}"#).unwrap();
        let mut a = Vec::new();
        NdjsonEncoder.encode_stats(&stats, &mut a);
        let mut b = Vec::new();
        BinaryEncoder.encode_stats(&stats, &mut b);
        assert_eq!(a, b);
        assert_eq!(serde_json::from_slice::<Content>(&a).unwrap(), stats);
    }
}
