//! Sharded, supervised fleet serving: crash isolation between models.
//!
//! Model names hash to shards ([`shard_of`]); each shard owns
//!
//! - a **tiered registry** ([`TieredRegistry`]): a warm LRU tier backed
//!   by a cold LRU tier — warm evictions demote instead of dropping,
//!   cold hits promote back, so a burst of new models doesn't instantly
//!   forget the fleet's working set;
//! - a **persistent worker pool** ([`crate::WorkerPool`]) with
//!   supervised restart;
//! - a **circuit breaker** ([`CircuitBreaker`]): repeated worker
//!   crashes flip the shard to `open`, where requests are refused
//!   immediately with `unavailable` + `retry_after_ms` instead of
//!   feeding a crash loop; after a cooldown one probe request
//!   (`half-open`) decides between closing and re-opening with a doubled
//!   cooldown;
//! - a **bounded queue** with depth-aware shedding: beyond
//!   `max_queue` concurrent jobs the shard sheds with an adaptive
//!   backoff hint ([`adaptive_retry_after_ms`]) that grows with how far
//!   past the budget the queue is;
//! - a **draining flag** for graceful shutdown (`drain` command): a
//!   draining shard refuses new evaluation work but finishes what it
//!   has.
//!
//! Everything a shard does is observable: per-shard counters and
//! per-shard copies of the request-stage histograms are registered on
//! the server's metrics registry under `shard{i}_…` names, which is how
//! the chaos harness and `bench_gate` read cross-shard interference
//! directly from stats.
//!
//! The per-point panic guard in [`crate::evaluate_batch`] already
//! isolates *point* failures; this layer isolates *model/worker*
//! failures (a model whose tape replay reliably dies, a poisoned
//! evaluator) to the shard that owns them.

use crate::batch::{BatchOutcome, BatchOutput};
use crate::error::ServeError;
use crate::pool::{PoolConfig, WorkerPool};
use crate::registry::{ModelRegistry, RegistryStats};
use crate::stats::STAGE_EDGES_NS;
use awesym_obs::{Counter, Histogram, Registry};
use awesym_partition::CompiledModel;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// FNV-1a over the model name: stable across runs and platforms, so a
/// client can predict (and tests can pin) name→shard placement.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard that owns `name` in a fleet of `shards` shards.
pub fn shard_of(name: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (fnv1a(name) % shards as u64) as usize
}

/// Adaptive overload backoff: the configured base hint, scaled by how
/// far past its budget the queue is. At the budget boundary the hint is
/// exactly `base_ms` (so a lightly-loaded shed retries quickly); a queue
/// at 3x its budget hints 3x the base. Capped at 64x so a pathological
/// depth cannot tell clients to go away for minutes.
pub fn adaptive_retry_after_ms(base_ms: u64, depth: usize, budget: usize) -> u64 {
    let base = base_ms.max(1);
    if budget == 0 {
        return base;
    }
    let ratio = depth.div_ceil(budget).clamp(1, 64) as u64;
    base.saturating_mul(ratio)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Tiered registry
// ---------------------------------------------------------------------

/// Counter snapshot of one shard's two registry tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TieredStats {
    /// The warm tier's counters.
    pub warm: RegistryStats,
    /// The cold tier's counters.
    pub cold: RegistryStats,
    /// Cold-tier hits promoted back to warm.
    pub promotions: u64,
    /// Warm-tier evictions demoted to cold (instead of dropped).
    pub demotions: u64,
}

/// A warm LRU tier over a cold LRU tier. Lookups hit warm first; a cold
/// hit promotes the model back to warm (possibly demoting warm's LRU
/// entry). Only a cold-tier eviction actually forgets a model.
pub struct TieredRegistry {
    warm: ModelRegistry,
    cold: ModelRegistry,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

impl TieredRegistry {
    /// A tiered registry with the given per-tier capacities (each min 1).
    pub fn new(warm_capacity: usize, cold_capacity: usize) -> Self {
        TieredRegistry {
            warm: ModelRegistry::new(warm_capacity),
            cold: ModelRegistry::new(cold_capacity),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }

    /// The warm tier (single-shard servers expose this as *the*
    /// registry for backward compatibility).
    pub fn warm(&self) -> &ModelRegistry {
        &self.warm
    }

    /// Inserts a model into the warm tier; a warm eviction demotes into
    /// cold. Returns the name of a model that fell out of the cold tier
    /// (i.e. was truly forgotten), if any.
    pub fn insert(&self, name: &str, model: CompiledModel) -> Option<String> {
        self.insert_arc(name, Arc::new(model))
    }

    /// [`TieredRegistry::insert`] for an already-shared model.
    pub fn insert_arc(&self, name: &str, model: Arc<CompiledModel>) -> Option<String> {
        // Replacing a name that sits in cold must not leave the stale
        // copy shadowed there.
        self.cold.take(name);
        let (demoted_name, demoted) = self.warm.insert_arc(name, model)?;
        self.demotions.fetch_add(1, Ordering::Relaxed);
        let (lost, _) = self.cold.insert_arc(&demoted_name, demoted)?;
        Some(lost)
    }

    /// Looks up a model: warm first, then cold (promoting a cold hit
    /// back to warm).
    pub fn get(&self, name: &str) -> Option<Arc<CompiledModel>> {
        if let Some(m) = self.warm.get(name) {
            return Some(m);
        }
        let model = self.cold.take(name)?;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        if let Some((demoted_name, demoted)) = self.warm.insert_arc(name, Arc::clone(&model)) {
            self.demotions.fetch_add(1, Ordering::Relaxed);
            self.cold.insert_arc(&demoted_name, demoted);
        }
        Some(model)
    }

    /// Removes a model from both tiers; true when either held it.
    pub fn remove(&self, name: &str) -> bool {
        let warm = self.warm.remove(name);
        let cold = self.cold.remove(name);
        warm || cold
    }

    /// Resident model names across both tiers, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v = self.warm.names();
        v.extend(self.cold.names());
        v.sort();
        v.dedup();
        v
    }

    /// Resident model count across both tiers.
    pub fn len(&self) -> usize {
        self.warm.len() + self.cold.len()
    }

    /// True when neither tier holds a model.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of both tiers' counters.
    pub fn stats(&self) -> TieredStats {
        TieredStats {
            warm: self.warm.stats(),
            cold: self.cold.stats(),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker tuning: how many consecutive crash-failures open it and how
/// long it stays open before probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed jobs (worker deaths) that trip the breaker.
    pub threshold: u32,
    /// First open-state cooldown; doubles per consecutive re-open.
    pub cooldown: Duration,
    /// Cooldown ceiling.
    pub max_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 8,
            cooldown: Duration::from_millis(250),
            max_cooldown: Duration::from_secs(10),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open {
        until: Instant,
    },
    /// One probe request is in flight; its outcome decides the phase.
    HalfOpen {
        probing: bool,
    },
}

struct BreakerState {
    phase: BreakerPhase,
    consecutive_failures: u32,
    cooldown: Duration,
}

/// Per-shard circuit breaker over *worker-crash* failures (per-point
/// errors are already handled gracefully and do not count). States:
/// closed → open (after `threshold` consecutive crash-jobs) → half-open
/// (after the cooldown; one probe allowed) → closed on probe success or
/// back to open with a doubled, capped cooldown on probe failure.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<BreakerState>,
    opened_total: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Mutex::new(BreakerState {
                phase: BreakerPhase::Closed,
                consecutive_failures: 0,
                cooldown: config.cooldown,
            }),
            opened_total: AtomicU64::new(0),
        }
    }

    /// Admits or refuses a request. `Err(retry_after_ms)` means the
    /// breaker is open (or another probe is already in flight).
    pub fn admit(&self) -> Result<(), u64> {
        let mut s = lock(&self.state);
        match s.phase {
            BreakerPhase::Closed => Ok(()),
            BreakerPhase::Open { until } => {
                let now = Instant::now();
                if now < until {
                    Err(until.saturating_duration_since(now).as_millis().max(1) as u64)
                } else {
                    s.phase = BreakerPhase::HalfOpen { probing: true };
                    Ok(())
                }
            }
            BreakerPhase::HalfOpen { probing: false } => {
                s.phase = BreakerPhase::HalfOpen { probing: true };
                Ok(())
            }
            BreakerPhase::HalfOpen { probing: true } => {
                // A probe is already deciding the shard's fate; don't
                // pile more requests onto a possibly-crashing pool.
                Err(s.cooldown.as_millis().max(1) as u64)
            }
        }
    }

    /// Reports an admitted request that completed without worker
    /// crashes.
    pub fn record_success(&self) {
        let mut s = lock(&self.state);
        s.consecutive_failures = 0;
        s.cooldown = self.config.cooldown;
        s.phase = BreakerPhase::Closed;
    }

    /// Reports an admitted request during which pool workers died.
    pub fn record_failure(&self) {
        let mut s = lock(&self.state);
        match s.phase {
            BreakerPhase::HalfOpen { .. } => {
                // Failed probe: straight back to open, doubled cooldown.
                s.cooldown = (s.cooldown * 2).min(self.config.max_cooldown);
                s.phase = BreakerPhase::Open {
                    until: Instant::now() + s.cooldown,
                };
                self.opened_total.fetch_add(1, Ordering::Relaxed);
            }
            BreakerPhase::Closed => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.config.threshold {
                    s.phase = BreakerPhase::Open {
                        until: Instant::now() + s.cooldown,
                    };
                    self.opened_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerPhase::Open { .. } => {}
        }
    }

    /// The current phase as a stable wire string: `"closed"`, `"open"`,
    /// or `"half_open"`.
    pub fn phase_name(&self) -> &'static str {
        match lock(&self.state).phase {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open { until } if Instant::now() < until => "open",
            // An expired open is one admit() away from half-open.
            BreakerPhase::Open { .. } | BreakerPhase::HalfOpen { .. } => "half_open",
        }
    }

    /// Times the breaker transitioned into open.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------

/// Per-shard tuning, derived from the server config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Warm-tier model capacity.
    pub warm_capacity: usize,
    /// Cold-tier model capacity.
    pub cold_capacity: usize,
    /// Pool workers per shard.
    pub workers: usize,
    /// Concurrent jobs (queued + running) before depth-aware shedding;
    /// 0 disables the bound.
    pub max_queue: usize,
    /// Base overload backoff hint, scaled by queue depth.
    pub retry_after_ms: u64,
    /// Worker restart backoff (base).
    pub restart_backoff: Duration,
    /// Worker restart backoff (ceiling).
    pub max_restart_backoff: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            warm_capacity: 16,
            cold_capacity: 64,
            workers: crate::batch::default_workers(),
            max_queue: 64,
            retry_after_ms: 50,
            restart_backoff: Duration::from_millis(10),
            max_restart_backoff: Duration::from_secs(2),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Per-shard metrics, registered on the server's obs registry under
/// `shard{i}_…` names — including a per-shard copy of every request
/// stage histogram, so cross-shard interference is readable straight
/// from stats.
pub(crate) struct ShardMetrics {
    pub(crate) requests: Arc<Counter>,
    pub(crate) errors: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) unavailable: Arc<Counter>,
    pub(crate) restarts: Arc<Counter>,
    pub(crate) worker_deaths: Arc<Counter>,
    pub(crate) breaker_opened: Arc<Counter>,
    pub(crate) latency_us: Arc<Histogram>,
    pub(crate) stages: [Arc<Histogram>; 5],
}

impl ShardMetrics {
    fn new(registry: &Registry, shard: usize) -> Self {
        let c = |name: &str| registry.counter(&format!("shard{shard}_{name}"));
        let stages = crate::stats::STAGES.map(|s| {
            registry.histogram(
                &format!("shard{shard}_request_stage_{}_ns", s.as_str()),
                &STAGE_EDGES_NS,
            )
        });
        ShardMetrics {
            requests: c("requests_total"),
            errors: c("request_errors_total"),
            shed: c("requests_shed_total"),
            unavailable: c("requests_unavailable_total"),
            restarts: c("worker_restarts_total"),
            worker_deaths: c("worker_deaths_total"),
            breaker_opened: c("breaker_opened_total"),
            latency_us: registry.histogram(
                &format!("shard{shard}_request_latency_us"),
                &crate::stats::BUCKET_EDGES_US,
            ),
            stages,
        }
    }
}

/// Health summary of one shard (the `health` command's per-shard row).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: u64,
    /// Breaker phase: `closed`, `open`, `half_open`.
    pub breaker: String,
    /// Configured pool workers.
    pub workers: u64,
    /// Pool workers currently alive.
    pub alive: u64,
    /// Supervisor-driven worker restarts.
    pub restarts: u64,
    /// Worker threads that died.
    pub worker_deaths: u64,
    /// Times the breaker opened.
    pub breaker_opened: u64,
    /// Jobs queued or running right now.
    pub queue_depth: u64,
    /// Draining for shutdown?
    pub draining: bool,
    /// Models resident (both tiers).
    pub models: u64,
}

/// One shard: tiered registry + supervised pool + breaker + bounded
/// queue. See the module docs for the full design.
pub struct Shard {
    id: usize,
    config: ShardConfig,
    registry: TieredRegistry,
    pool: WorkerPool,
    breaker: CircuitBreaker,
    queue_depth: AtomicUsize,
    draining: AtomicBool,
    pub(crate) metrics: ShardMetrics,
}

impl Shard {
    /// Builds shard `id`, registering its metrics on `registry`.
    pub fn new(id: usize, config: ShardConfig, registry: &Registry) -> Self {
        Shard {
            id,
            config,
            registry: TieredRegistry::new(config.warm_capacity, config.cold_capacity),
            pool: WorkerPool::new(
                id,
                PoolConfig {
                    workers: config.workers,
                    restart_backoff: config.restart_backoff,
                    max_restart_backoff: config.max_restart_backoff,
                },
            ),
            breaker: CircuitBreaker::new(config.breaker),
            queue_depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            metrics: ShardMetrics::new(registry, id),
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's model registry.
    pub fn registry(&self) -> &TieredRegistry {
        &self.registry
    }

    /// The shard's worker pool (restart counters, liveness).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The shard's circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Starts refusing new evaluation work (in-flight jobs finish).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// True when the shard is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Jobs queued or running right now.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Admission control shared by every evaluation-class request bound
    /// for this shard: draining and breaker checks, then the bounded
    /// queue. On success the queue depth has been taken; release it via
    /// the returned guard going out of scope.
    fn admit(&self) -> Result<DepthGuard<'_>, ServeError> {
        if self.is_draining() {
            self.metrics.unavailable.inc();
            return Err(ServeError::Unavailable {
                shard: self.id as u64,
                reason: "draining".to_string(),
                retry_after_ms: self.config.retry_after_ms,
            });
        }
        if let Err(retry_after_ms) = self.breaker.admit() {
            self.metrics.unavailable.inc();
            return Err(ServeError::Unavailable {
                shard: self.id as u64,
                reason: "circuit breaker open".to_string(),
                retry_after_ms,
            });
        }
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.max_queue > 0 && depth > self.config.max_queue {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            self.metrics.shed.inc();
            return Err(ServeError::Overloaded {
                inflight: depth as u64,
                max_inflight: self.config.max_queue as u64,
                retry_after_ms: adaptive_retry_after_ms(
                    self.config.retry_after_ms,
                    depth,
                    self.config.max_queue,
                ),
            });
        }
        Ok(DepthGuard { shard: self })
    }

    /// Evaluates a batch on this shard's pool, with admission control
    /// and breaker accounting. The model must already be resolved (the
    /// caller counts lookup time separately).
    pub fn evaluate(
        &self,
        model: Arc<CompiledModel>,
        points: Arc<Vec<Vec<f64>>>,
        output: BatchOutput,
        deadline: Option<Instant>,
        max_workers: Option<usize>,
    ) -> Result<BatchOutcome, ServeError> {
        let _depth = self.admit()?;
        let deaths_before = self.pool.deaths();
        let restarts_before = self.pool.restarts();
        let outcome = self
            .pool
            .run_batch(model, points, output, deadline, max_workers);
        let deaths = self.pool.deaths() - deaths_before;
        let restarts = self.pool.restarts() - restarts_before;
        if restarts > 0 {
            self.metrics.restarts.add(restarts);
        }
        if deaths > 0 {
            self.metrics.worker_deaths.add(deaths);
            let opened_before = self.breaker.opened_total();
            self.breaker.record_failure();
            if self.breaker.opened_total() > opened_before {
                self.metrics.breaker_opened.inc();
            }
        } else {
            self.breaker.record_success();
        }
        Ok(outcome)
    }

    /// One supervision pass on the pool (also run implicitly on every
    /// submission); returns workers respawned.
    pub fn supervise(&self) -> usize {
        let respawned = self.pool.supervise();
        if respawned > 0 {
            self.metrics.restarts.add(respawned as u64);
        }
        respawned
    }

    /// Health snapshot for the `health` command.
    pub fn health(&self) -> ShardHealth {
        ShardHealth {
            shard: self.id as u64,
            breaker: self.breaker.phase_name().to_string(),
            workers: self.pool.workers() as u64,
            alive: self.pool.alive() as u64,
            restarts: self.pool.restarts(),
            worker_deaths: self.pool.deaths(),
            breaker_opened: self.breaker.opened_total(),
            queue_depth: self.queue_depth() as u64,
            draining: self.is_draining(),
            models: self.registry.len() as u64,
        }
    }

    /// Ready to take traffic: breaker closed, not draining, pool fully
    /// alive (after a supervision pass).
    pub fn is_ready(&self) -> bool {
        self.supervise();
        !self.is_draining()
            && self.breaker.phase_name() == "closed"
            && self.pool.alive() >= self.pool.workers()
    }
}

/// RAII release of one unit of shard queue depth.
struct DepthGuard<'a> {
    shard: &'a Shard,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.shard.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::generators::fig1_rc;
    use awesym_partition::SymbolBinding;

    fn tiny_model() -> CompiledModel {
        let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
    }

    #[test]
    fn shard_placement_is_stable_and_covers_all_shards() {
        assert_eq!(shard_of("anything", 1), 0);
        // Pinned: placement is part of the observable contract (clients
        // may pre-shard); a hash change must be a conscious decision.
        assert_eq!(shard_of("opamp741", 4), shard_of("opamp741", 4));
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[shard_of(&format!("model-{i}"), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn adaptive_hint_grows_with_depth_and_respects_base() {
        // At (or under) the budget boundary the hint is the base — the
        // contract the server's legacy shed test pins at 77 ms.
        assert_eq!(adaptive_retry_after_ms(50, 1, 4), 50);
        assert_eq!(adaptive_retry_after_ms(50, 4, 4), 50);
        // Deeper queues hint longer, monotonically.
        let hints: Vec<u64> = [4, 8, 9, 16, 64, 256]
            .iter()
            .map(|&d| adaptive_retry_after_ms(50, d, 4))
            .collect();
        assert_eq!(hints, [50, 100, 150, 200, 800, 3200]);
        for w in hints.windows(2) {
            assert!(w[0] <= w[1], "{hints:?}");
        }
        // Capped at 64x, zero-budget and zero-base degenerate sanely.
        assert_eq!(adaptive_retry_after_ms(50, 1_000_000, 4), 50 * 64);
        assert_eq!(adaptive_retry_after_ms(50, 10, 0), 50);
        assert_eq!(adaptive_retry_after_ms(0, 10, 2), 5);
    }

    #[test]
    fn tiered_registry_demotes_and_promotes() {
        let reg = TieredRegistry::new(2, 2);
        reg.insert("a", tiny_model());
        reg.insert("b", tiny_model());
        assert!(reg.insert("c", tiny_model()).is_none(), "demoted, not lost");
        // "a" was LRU in warm → demoted to cold; still findable.
        assert_eq!(reg.names(), ["a", "b", "c"]);
        assert_eq!(reg.stats().demotions, 1);
        assert!(reg.get("a").is_some(), "cold hit");
        let s = reg.stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.demotions, 2, "promotion demoted warm's LRU");
        // Overflowing both tiers finally forgets the oldest.
        reg.insert("d", tiny_model());
        reg.insert("e", tiny_model());
        let lost = reg.insert("f", tiny_model());
        assert!(lost.is_some());
        assert_eq!(reg.len(), 4);
        assert!(reg.remove("f"));
        assert!(!reg.remove("f"));
    }

    #[test]
    fn tiered_insert_replaces_cold_shadow() {
        let reg = TieredRegistry::new(1, 2);
        reg.insert("a", tiny_model());
        reg.insert("b", tiny_model()); // "a" demoted to cold
        let first = reg.get("b").unwrap();
        // Re-inserting "a" must not leave a stale cold copy shadowed.
        reg.insert("a", tiny_model());
        let again = reg.get("a").unwrap();
        assert!(!Arc::ptr_eq(&first, &again));
        assert_eq!(reg.names(), ["a", "b"]);
    }

    #[test]
    fn breaker_walks_closed_open_half_open() {
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(20),
            max_cooldown: Duration::from_millis(100),
        });
        assert_eq!(b.phase_name(), "closed");
        assert!(b.admit().is_ok());
        b.record_failure();
        assert_eq!(b.phase_name(), "closed", "one failure under threshold");
        b.record_failure();
        assert_eq!(b.phase_name(), "open");
        assert_eq!(b.opened_total(), 1);
        let retry = b.admit().unwrap_err();
        assert!((1..=20).contains(&retry), "{retry}");
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown over: one probe admitted, a second refused.
        assert!(b.admit().is_ok());
        assert!(b.admit().is_err());
        // Failed probe → open again with doubled cooldown.
        b.record_failure();
        assert_eq!(b.phase_name(), "open");
        assert_eq!(b.opened_total(), 2);
        std::thread::sleep(Duration::from_millis(45));
        assert!(b.admit().is_ok());
        b.record_success();
        assert_eq!(b.phase_name(), "closed");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn shard_sheds_beyond_queue_budget_with_adaptive_hint() {
        let obs = Registry::new();
        let shard = Shard::new(
            0,
            ShardConfig {
                max_queue: 1,
                workers: 1,
                retry_after_ms: 30,
                ..ShardConfig::default()
            },
            &obs,
        );
        // Hold the single queue slot, then watch the next admit shed.
        let guard = shard.admit().unwrap();
        match shard.admit() {
            Err(ServeError::Overloaded {
                retry_after_ms,
                inflight,
                max_inflight,
            }) => {
                assert_eq!((inflight, max_inflight), (2, 1));
                assert_eq!(retry_after_ms, 60, "2x budget → 2x base hint");
            }
            Err(other) => panic!("expected Overloaded, got {other:?}"),
            Ok(_) => panic!("expected Overloaded, got admission"),
        }
        drop(guard);
        assert_eq!(shard.queue_depth(), 0);
        assert!(shard.admit().is_ok());
    }

    #[test]
    fn draining_shard_refuses_with_unavailable() {
        let obs = Registry::new();
        let shard = Shard::new(0, ShardConfig::default(), &obs);
        assert!(shard.is_ready());
        shard.drain();
        assert!(!shard.is_ready());
        match shard.evaluate(
            Arc::new(tiny_model()),
            Arc::new(vec![vec![1e-9, 1e3]]),
            BatchOutput::Moments,
            None,
            None,
        ) {
            Err(ServeError::Unavailable { reason, .. }) => assert_eq!(reason, "draining"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let health = shard.health();
        assert!(health.draining);
        assert_eq!(health.breaker, "closed");
    }

    #[test]
    fn healthy_shard_evaluates_and_reports() {
        let obs = Registry::new();
        let shard = Shard::new(
            3,
            ShardConfig {
                workers: 2,
                ..ShardConfig::default()
            },
            &obs,
        );
        shard.registry().insert("m", tiny_model());
        let model = shard.registry().get("m").unwrap();
        let out = shard
            .evaluate(
                model,
                Arc::new(vec![vec![1e-9, 1e3], vec![2e-9, 2e3]]),
                BatchOutput::Moments,
                None,
                None,
            )
            .unwrap();
        assert_eq!(out.results.len(), 2);
        assert!(out.results.iter().all(Result::is_ok));
        let health = shard.health();
        assert_eq!(health.shard, 3);
        assert_eq!(health.models, 1);
        assert_eq!(health.worker_deaths, 0);
        assert_eq!(health.queue_depth, 0);
        // Per-shard metrics registered under the shard{i}_ prefix.
        assert!(obs
            .to_ndjson()
            .contains("\"metric\":\"shard3_requests_total\""));
    }
}
