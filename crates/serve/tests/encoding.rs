//! Wire-format equivalence over the real serve loop: the same batch
//! requested as NDJSON and as binary-v1 through one session must produce
//! value-identical responses (bit-for-bit on every float), binary frames
//! must interleave with NDJSON lines without framing ambiguity, and a
//! frame corrupted anywhere on the wire must be rejected with a typed
//! reason. This is the test the CI wire-equivalence matrix leg runs.

use awesym_serve::encode::{BINARY_HEADER_LEN, FLAG_HAS_ID};
use awesym_serve::{decode_frame, FrameError, Server};
use serde::Content;

const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

fn compile_line() -> String {
    format!(
        r#"{{"cmd":"compile","name":"m","netlist":{},"input":"vin","output":"2","symbols":["C1","R2:r"],"order":2}}"#,
        serde_json::to_string(&NETLIST.to_string()).unwrap()
    )
}

fn points_json(points: usize) -> String {
    let pts: Vec<String> = (0..points)
        .map(|i| {
            let t = i as f64 / points as f64;
            format!("[{:e},{:e}]", 0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t)
        })
        .collect();
    pts.join(",")
}

fn batch_line(points: usize, kind: &str, encoding: Option<&str>) -> String {
    let enc = encoding.map_or(String::new(), |e| format!(r#""encoding":"{e}","#));
    format!(
        r#"{{"cmd":"batch","model":"m",{enc}"points":[{}],"kind":"{kind}","workers":2}}"#,
        points_json(points)
    )
}

/// Reads one `\n`-terminated line off the front of the stream.
fn take_line(bytes: &mut &[u8]) -> String {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("stream has a newline-terminated line");
    let line = String::from_utf8(bytes[..nl].to_vec()).expect("NDJSON line is UTF-8");
    *bytes = &bytes[nl + 1..];
    line
}

/// Reads one self-delimiting binary frame off the front of the stream,
/// sizing it from its own header (the only way a client can, since
/// frames carry no trailing newline).
fn take_frame(bytes: &mut &[u8]) -> Vec<u8> {
    assert!(bytes.len() >= BINARY_HEADER_LEN, "truncated header");
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let cols = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let id_section = if flags & FLAG_HAS_ID != 0 {
        assert!(bytes.len() >= BINARY_HEADER_LEN + 4, "truncated id length");
        let id_len = u32::from_le_bytes(
            bytes[BINARY_HEADER_LEN..BINARY_HEADER_LEN + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        4 + id_len
    } else {
        0
    };
    let len = BINARY_HEADER_LEN + id_section + count + 8 * count * cols;
    assert!(bytes.len() >= len, "truncated frame body");
    let frame = bytes[..len].to_vec();
    *bytes = &bytes[len..];
    frame
}

/// Runs one session over the serve loop and returns the raw output bytes.
fn run_session(lines: &[String]) -> Vec<u8> {
    let server = Server::default();
    let input = lines.join("\n") + "\n";
    let mut out = Vec::new();
    server.serve(input.as_bytes(), &mut out).unwrap();
    out
}

#[test]
fn binary_frames_match_ndjson_bit_for_bit_over_the_wire() {
    const POINTS: usize = 500;
    for (kind, expect_cols) in [("moments", 4usize), ("dc_gain", 1), ("delays", 4)] {
        let out = run_session(&[
            compile_line(),
            batch_line(POINTS, kind, None),
            batch_line(POINTS, kind, Some("binary-v1")),
            r#"{"cmd":"shutdown"}"#.to_string(),
        ]);
        let mut rest = out.as_slice();
        let compile: Content = serde_json::from_str(&take_line(&mut rest)).unwrap();
        assert_eq!(compile.get("ok").and_then(Content::as_bool), Some(true));
        let nd: Content = serde_json::from_str(&take_line(&mut rest)).unwrap();
        assert_eq!(nd.get("ok").and_then(Content::as_bool), Some(true));
        let frame = decode_frame(&take_frame(&mut rest)).expect("well-formed frame");
        let bye: Content = serde_json::from_str(&take_line(&mut rest)).unwrap();
        assert_eq!(bye.get("ok").and_then(Content::as_bool), Some(true));
        assert!(rest.is_empty(), "{} trailing bytes", rest.len());

        assert_eq!(frame.count, POINTS, "{kind}");
        assert_eq!(frame.cols, expect_cols, "{kind}");
        assert_eq!(frame.ok_count, POINTS as u64, "{kind}");
        assert_eq!(
            Some(frame.ok_count),
            nd.get("ok_count").and_then(Content::as_u64)
        );
        let results = nd.get("results").and_then(Content::as_seq).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert!(frame.code(i).is_none(), "{kind} point {i} not ok");
            // Flatten the NDJSON value object to its column scalars in
            // wire order.
            let nd_vals: Vec<f64> = match kind {
                "moments" => r
                    .get("moments")
                    .and_then(Content::as_seq)
                    .unwrap()
                    .iter()
                    .map(|m| m.as_f64().unwrap())
                    .collect(),
                "dc_gain" => vec![r.get("dc_gain").and_then(Content::as_f64).unwrap()],
                "delays" => ["elmore", "ln2_elmore", "d2m", "two_pole"]
                    .iter()
                    .map(|k| {
                        r.get(k)
                            .map(|v| v.as_f64().unwrap_or(f64::NAN))
                            .unwrap_or(f64::NAN)
                    })
                    .collect(),
                other => unreachable!("{other}"),
            };
            let bin_vals = frame.point(i);
            assert_eq!(nd_vals.len(), bin_vals.len(), "{kind} point {i}");
            for (c, (a, b)) in nd_vals.iter().zip(&bin_vals).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{kind} point {i} col {c}: {a:e} vs {b:e}"
                );
            }
        }
    }
}

/// A request `id` must survive the binary path end to end: the server
/// carries it in the frame's id section, the decoder hands it back, and
/// id-free frames stay on the legacy layout with no id flag.
#[test]
fn request_id_survives_the_binary_path_over_the_wire() {
    let with_id = format!(
        r#"{{"cmd":"batch","model":"m","id":"corr-\"x\"-17","encoding":"binary-v1","points":[{}],"kind":"moments","workers":2}}"#,
        points_json(25)
    );
    let numeric_id = format!(
        r#"{{"cmd":"batch","model":"m","id":9007,"encoding":"binary-v1","points":[{}],"kind":"dc_gain"}}"#,
        points_json(10)
    );
    let out = run_session(&[
        compile_line(),
        with_id,
        numeric_id,
        batch_line(25, "moments", Some("binary-v1")),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ]);
    let mut rest = out.as_slice();
    let _compile = take_line(&mut rest);

    let frame = decode_frame(&take_frame(&mut rest)).expect("id frame decodes");
    assert_eq!(frame.id, Some(Content::Str("corr-\"x\"-17".into())));
    assert_eq!(frame.count, 25);
    assert_eq!(frame.ok_count, 25);

    let frame = decode_frame(&take_frame(&mut rest)).expect("numeric-id frame decodes");
    assert_eq!(frame.id.as_ref().and_then(Content::as_u64), Some(9007));
    assert_eq!(frame.count, 10);

    // The id-free request still produces a legacy frame: no flag, no id.
    let raw = take_frame(&mut rest);
    assert_eq!(
        u16::from_le_bytes(raw[6..8].try_into().unwrap()) & FLAG_HAS_ID,
        0
    );
    assert_eq!(decode_frame(&raw).unwrap().id, None);

    let bye: Content = serde_json::from_str(&take_line(&mut rest)).unwrap();
    assert_eq!(bye.get("ok").and_then(Content::as_bool), Some(true));
    assert!(rest.is_empty(), "{} trailing bytes", rest.len());
}

/// Every corruption of a wire-captured frame — truncation at any point,
/// bit flips in header or body framing fields — must be a typed
/// `FrameError`, never a wrong silent decode.
#[test]
fn wire_captured_frames_reject_corruption() {
    let out = run_session(&[
        compile_line(),
        batch_line(40, "moments", Some("binary-v1")),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ]);
    let mut rest = out.as_slice();
    let _compile = take_line(&mut rest);
    let frame = take_frame(&mut rest);
    assert!(decode_frame(&frame).is_ok());

    // Truncation at every prefix length must fail typed.
    for cut in (0..frame.len()).step_by(13) {
        assert!(
            matches!(
                decode_frame(&frame[..cut]),
                Err(FrameError::Truncated { .. })
            ),
            "cut at {cut}"
        );
    }
    // Trailing garbage.
    let mut long = frame.clone();
    long.push(0);
    assert!(matches!(
        decode_frame(&long),
        Err(FrameError::TrailingBytes(1))
    ));
    // Magic and version flips.
    let mut bad = frame.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic(_))));
    let mut bad = frame.clone();
    bad[4] ^= 0xFF;
    assert!(matches!(decode_frame(&bad), Err(FrameError::BadVersion(_))));
    // A status byte outside the error-code table.
    let mut bad = frame.clone();
    bad[BINARY_HEADER_LEN] = 200;
    assert!(matches!(
        decode_frame(&bad),
        Err(FrameError::BadErrorCode {
            index: 0,
            byte: 200
        })
    ));
    // An ok_count that disagrees with the status column.
    let mut bad = frame;
    bad[16] ^= 0x01;
    assert!(matches!(
        decode_frame(&bad),
        Err(FrameError::OkCountMismatch { .. })
    ));
}
