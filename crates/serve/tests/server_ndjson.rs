//! End-to-end NDJSON serving: compile a model over the wire, push a
//! 1000+-point batch through it deterministically, and check the
//! observability counters — the PR's acceptance scenario.

use awesym_serve::Server;
use serde::Content;

const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

fn compile_line() -> String {
    format!(
        r#"{{"cmd":"compile","name":"m","netlist":{},"input":"vin","output":"2","symbols":["C1","R2:r"],"order":2}}"#,
        serde_json::to_string(&NETLIST.to_string()).unwrap()
    )
}

fn batch_line(points: usize, workers: usize) -> String {
    let pts: Vec<String> = (0..points)
        .map(|i| {
            let t = i as f64 / points as f64;
            format!("[{:e},{:e}]", 0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t)
        })
        .collect();
    format!(
        r#"{{"cmd":"batch","model":"m","points":[{}],"kind":"moments","workers":{workers}}}"#,
        pts.join(",")
    )
}

fn run_session(lines: &[String]) -> Vec<String> {
    let server = Server::default();
    let input = lines.join("\n") + "\n";
    let mut out = Vec::new();
    server.serve(input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn get<'a>(c: &'a Content, key: &str) -> &'a Content {
    c.get(key).unwrap_or_else(|| panic!("missing {key}: {c:?}"))
}

#[test]
fn thousand_point_batch_is_deterministic_with_live_stats() {
    const POINTS: usize = 1200;
    let session: Vec<String> = vec![
        compile_line(),
        batch_line(POINTS, 4),
        r#"{"cmd":"stats"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let replies = run_session(&session);
    assert_eq!(replies.len(), 4);

    let batch: Content = serde_json::from_str(&replies[1]).unwrap();
    assert_eq!(get(&batch, "ok").as_bool(), Some(true));
    assert_eq!(get(&batch, "count").as_u64(), Some(POINTS as u64));
    assert_eq!(get(&batch, "ok_count").as_u64(), Some(POINTS as u64));
    assert!(get(&batch, "points_per_sec").as_f64().unwrap() > 0.0);
    let results = get(&batch, "results").as_seq().unwrap();
    assert_eq!(results.len(), POINTS);
    // Every point carries 2q = 4 finite moments.
    for r in results {
        let m = get(r, "moments").as_seq().unwrap();
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|v| v.as_f64().unwrap().is_finite()));
    }

    // Stats counters are live and nonzero after the batch.
    let stats: Content = serde_json::from_str(&replies[2]).unwrap();
    let server = get(&stats, "server");
    assert!(get(server, "requests").as_u64().unwrap() >= 2);
    assert_eq!(get(server, "batch_points").as_u64(), Some(POINTS as u64));
    assert!(get(server, "batch_points_per_sec").as_f64().unwrap() > 0.0);
    let total_latency: u64 = get(server, "latency")
        .as_seq()
        .unwrap()
        .iter()
        .map(|b| get(b, "count").as_u64().unwrap())
        .sum();
    assert_eq!(total_latency, get(server, "requests").as_u64().unwrap());
    let registry = get(&stats, "registry");
    assert!(get(registry, "hits").as_u64().unwrap() >= 1);
    assert_eq!(get(registry, "resident").as_u64(), Some(1));

    // Determinism: an identical session (even at another worker count)
    // produces byte-identical batch results.
    let replies2 = run_session(&[
        compile_line(),
        batch_line(POINTS, 1),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ]);
    let b1: Content = serde_json::from_str(&replies[1]).unwrap();
    let b2: Content = serde_json::from_str(&replies2[1]).unwrap();
    assert_eq!(get(&b1, "results"), get(&b2, "results"));
}

#[test]
fn save_then_load_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("awesym_ndjson_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let art = dir.join("wire.awesym");
    let art_json = serde_json::to_string(&art.display().to_string()).unwrap();
    let replies = run_session(&[
        compile_line(),
        format!(r#"{{"cmd":"save","model":"m","path":{art_json}}}"#),
        format!(r#"{{"cmd":"load","name":"m2","path":{art_json}}}"#),
        r#"{"cmd":"eval","model":"m2","values":[1e-9,1000.0],"kind":"delays"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ]);
    for (i, line) in replies.iter().enumerate() {
        let c: Content = serde_json::from_str(line).unwrap();
        assert_eq!(
            c.get("ok").and_then(Content::as_bool),
            Some(true),
            "line {i}: {line}"
        );
    }
    let eval: Content = serde_json::from_str(&replies[3]).unwrap();
    let elmore = get(get(&eval, "result"), "elmore").as_f64().unwrap();
    assert!(elmore > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
