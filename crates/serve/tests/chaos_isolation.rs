//! Cross-shard chaos harness: storms aimed at one shard must not leak
//! into its neighbors.
//!
//! Runs only with `--features fault-injection` (CI has a dedicated
//! `chaos-isolation` job). Every storm is a seeded [`FaultPlan`] with
//! `target_shard` set, so the victim's suffering is deterministic and
//! the healthy shard's responses can be compared bit-for-bit against a
//! fault-free baseline — the acceptance bar for the sharded fleet:
//!
//! - **panic/NaN storm** on the victim: the healthy shard's batch
//!   results stay bit-identical to a run with no faults installed;
//! - **deadline storm** (every victim point sleeps past its deadline):
//!   victim requests report `deadline_exceeded`, healthy requests don't
//!   even notice;
//! - **worker-kill storm**: the victim pool's threads die and the shard
//!   supervisor restarts them (visible in per-shard restart counters in
//!   `health`), while the healthy shard serves zero failed responses;
//! - **crash loop**: enough consecutive kill-jobs trip the victim's
//!   circuit breaker to `open` (typed `unavailable` + `retry_after_ms`)
//!   and the shard recovers to `closed` once the storm stops.

use awesym_serve::faults::{self, FaultPlan};
use awesym_serve::{
    shard_of, BatchOutput, BreakerConfig, ServeError, Server, ServerConfig, Shard, ShardConfig,
};
use serde::Content;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The fault plan is process-global state, so tests touching it must not
/// interleave. Poisoning is ignored: a failed test must not cascade.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_guard() -> std::sync::MutexGuard<'static, ()> {
    PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with panic output silenced (injected panics would otherwise
/// spam the test log), restoring the hook afterwards.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

fn compile_line(name: &str) -> String {
    format!(
        r#"{{"cmd":"compile","name":"{name}","netlist":{netlist},"input":"vin","output":"2","symbols":["C1","R2:r"],"order":2}}"#,
        netlist = serde_json::to_string(&Content::Str(NETLIST.into())).unwrap()
    )
}

fn batch_line(model: &str, n: usize, extra: &str) -> String {
    let pts: Vec<String> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            format!("[{:e},{:e}]", 0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t)
        })
        .collect();
    format!(
        r#"{{"cmd":"batch","model":"{model}","points":[{}],"workers":2{extra}}}"#,
        pts.join(",")
    )
}

fn parse(server: &Server, line: &str) -> Content {
    let resp = server.handle_line(line).expect("non-empty request line");
    serde_json::from_str(resp.text()).expect("response is JSON")
}

fn ok_of(c: &Content) -> bool {
    c.get("ok").and_then(Content::as_bool).unwrap_or(false)
}

/// The `results` subtree re-serialized — the bit-identity comparison
/// unit (the head also carries wall-clock fields that legitimately vary
/// between runs).
fn results_json(c: &Content) -> String {
    serde_json::to_string(c.get("results").expect("batch has results")).unwrap()
}

/// First generated model name that [`shard_of`] places on `want`.
fn name_on_shard(shards: usize, want: usize) -> String {
    (0..)
        .map(|i| format!("chaos-{i}"))
        .find(|n| shard_of(n, shards) == want)
        .expect("some name lands on every shard")
}

fn health_row(server: &Server, shard: usize) -> Content {
    let h = parse(server, r#"{"cmd":"health"}"#);
    h.get("shards")
        .and_then(Content::as_seq)
        .expect("health has shards")
        .iter()
        .find(|s| s.get("shard").and_then(Content::as_u64) == Some(shard as u64))
        .cloned()
        .expect("shard row present")
}

fn sharded_server() -> (Server, String, String) {
    let server = Server::with_config(ServerConfig {
        shards: 2,
        shard_workers: 2,
        ..ServerConfig::default()
    });
    let victim = name_on_shard(2, 0);
    let healthy = name_on_shard(2, 1);
    assert!(ok_of(&parse(&server, &compile_line(&victim))));
    assert!(ok_of(&parse(&server, &compile_line(&healthy))));
    (server, victim, healthy)
}

/// Panic/NaN storm on shard 0: the victim answers every point (faulted
/// points as typed errors), and shard 1's responses stay bit-identical
/// to the fault-free baseline while the storm rages.
#[test]
fn panic_storm_on_one_shard_keeps_the_other_bit_identical() {
    let _guard = plan_guard();
    faults::clear();
    let (server, victim, healthy) = sharded_server();
    let healthy_req = batch_line(&healthy, 600, "");
    let victim_req = batch_line(&victim, 600, "");

    let baseline = parse(&server, &healthy_req);
    assert!(ok_of(&baseline), "{baseline:?}");
    let baseline_results = results_json(&baseline);

    faults::install(FaultPlan {
        seed: 0xC4A05,
        panic_rate_pct: 10,
        nan_rate_pct: 10,
        target_shard: Some(0),
        ..FaultPlan::default()
    });
    let (victim_resp, healthy_resps) = quiet_panics(|| {
        let v = parse(&server, &victim_req);
        let h: Vec<Content> = (0..3).map(|_| parse(&server, &healthy_req)).collect();
        (v, h)
    });
    faults::clear();

    // The victim degrades, never drops: every point answered.
    assert!(ok_of(&victim_resp), "{victim_resp:?}");
    assert_eq!(
        victim_resp.get("count").and_then(Content::as_u64),
        Some(600)
    );
    let victim_ok = victim_resp
        .get("ok_count")
        .and_then(Content::as_u64)
        .unwrap();
    assert!(victim_ok < 600, "storm must fault some victim points");
    assert!(victim_ok > 300, "most victim points still healthy");

    // The healthy shard never noticed: bit-identical results mid-storm.
    for (i, resp) in healthy_resps.iter().enumerate() {
        assert!(ok_of(resp), "storm round {i}: {resp:?}");
        assert_eq!(resp.get("ok_count").and_then(Content::as_u64), Some(600));
        assert_eq!(
            results_json(resp),
            baseline_results,
            "storm round {i}: healthy shard results drifted"
        );
    }
    assert_eq!(
        health_row(&server, 1)
            .get("worker_deaths")
            .and_then(Content::as_u64),
        Some(0)
    );
}

/// Deadline storm on shard 0: every victim point sleeps past the
/// request deadline, yet the healthy shard's undeadlined requests stay
/// bit-identical and its metrics stay clean.
#[test]
fn deadline_storm_on_one_shard_does_not_slow_the_other() {
    let _guard = plan_guard();
    faults::clear();
    let (server, victim, healthy) = sharded_server();
    let healthy_req = batch_line(&healthy, 400, "");
    let victim_req = batch_line(&victim, 64, r#","deadline_ms":10"#);

    let baseline_results = {
        let b = parse(&server, &healthy_req);
        assert!(ok_of(&b));
        results_json(&b)
    };

    faults::install(FaultPlan {
        seed: 0xD00D,
        slow_rate_pct: 100,
        slow: Duration::from_millis(25),
        target_shard: Some(0),
        ..FaultPlan::default()
    });
    let victim_resp = parse(&server, &victim_req);
    let healthy_resp = parse(&server, &healthy_req);
    faults::clear();

    assert!(ok_of(&victim_resp), "{victim_resp:?}");
    assert_eq!(
        victim_resp
            .get("deadline_exceeded")
            .and_then(Content::as_bool),
        Some(true),
        "{victim_resp:?}"
    );
    assert!(ok_of(&healthy_resp), "{healthy_resp:?}");
    assert_eq!(results_json(&healthy_resp), baseline_results);
}

/// Worker-kill storm on shard 0: its pool threads die and the shard
/// supervisor restarts them — visible in the `health` command's
/// per-shard restart counters — while shard 1 serves zero failed
/// responses throughout.
#[test]
fn worker_kill_storm_restarts_victim_workers_and_other_shard_never_fails() {
    let _guard = plan_guard();
    faults::clear();
    let (server, victim, healthy) = sharded_server();
    let victim_req = batch_line(&victim, 300, "");
    let healthy_req = batch_line(&healthy, 300, "");

    faults::install(FaultPlan {
        seed: 0x5110,
        worker_kill_rate_pct: 100,
        target_shard: Some(0),
        ..FaultPlan::default()
    });
    let victim_resps: Vec<Content> = quiet_panics(|| {
        (0..3)
            .map(|_| {
                // Interleave: every victim request is followed by a
                // healthy one while the victim pool is (re)dying.
                let v = parse(&server, &victim_req);
                let h = parse(&server, &healthy_req);
                assert!(ok_of(&h), "healthy shard failed mid-storm: {h:?}");
                assert_eq!(
                    h.get("ok_count").and_then(Content::as_u64),
                    Some(300),
                    "healthy shard dropped points mid-storm"
                );
                std::thread::sleep(Duration::from_millis(15));
                v
            })
            .collect()
    });
    faults::clear();

    // Every victim request still answered every point (killed chunks as
    // typed internal errors, the rest drained by the submitter).
    for (i, v) in victim_resps.iter().enumerate() {
        assert!(ok_of(v), "round {i}: {v:?}");
        assert_eq!(v.get("count").and_then(Content::as_u64), Some(300));
    }

    // Supervision brings the victim pool back: poll health until ready
    // (restart backoff is a few tens of ms at this point).
    let mut ready = false;
    for _ in 0..100 {
        let h = parse(&server, r#"{"cmd":"health"}"#);
        if h.get("ready").and_then(Content::as_bool) == Some(true) {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ready, "victim shard never recovered");
    let victim_health = health_row(&server, 0);
    assert!(
        victim_health
            .get("restarts")
            .and_then(Content::as_u64)
            .unwrap()
            > 0,
        "supervisor restarts must be visible: {victim_health:?}"
    );
    assert!(
        victim_health
            .get("worker_deaths")
            .and_then(Content::as_u64)
            .unwrap()
            > 0
    );
    let healthy_health = health_row(&server, 1);
    assert_eq!(
        healthy_health
            .get("worker_deaths")
            .and_then(Content::as_u64),
        Some(0),
        "{healthy_health:?}"
    );
    assert_eq!(
        healthy_health.get("restarts").and_then(Content::as_u64),
        Some(0)
    );

    // And the victim is fully serviceable again.
    let v = parse(&server, &victim_req);
    assert!(ok_of(&v), "{v:?}");
    assert_eq!(v.get("ok_count").and_then(Content::as_u64), Some(300));
}

/// A sustained crash loop trips the victim shard's circuit breaker:
/// requests are refused with typed `unavailable` + `retry_after_ms`
/// instead of feeding the loop, and the breaker walks back to `closed`
/// once the crashes stop. Uses a standalone [`Shard`] with an aggressive
/// breaker so the test stays fast; the shard id is one nothing else in
/// this binary targets.
#[test]
fn crash_loop_trips_the_breaker_and_recovery_closes_it() {
    let _guard = plan_guard();
    faults::clear();
    const SHARD: usize = 4242;
    let obs = awesym_obs::Registry::new();
    let shard = Shard::new(
        SHARD,
        ShardConfig {
            workers: 2,
            restart_backoff: Duration::from_millis(1),
            max_restart_backoff: Duration::from_millis(20),
            breaker: BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(40),
                max_cooldown: Duration::from_millis(200),
            },
            ..ShardConfig::default()
        },
        &obs,
    );
    let model = {
        let w = awesym_circuit::generators::fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let bindings = [
            awesym_partition::SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
            awesym_partition::SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
        ];
        Arc::new(
            awesym_partition::CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap(),
        )
    };
    let points = Arc::new(
        (0..300usize)
            .map(|i| vec![0.5e-9 + 1e-11 * i as f64, 300.0 + i as f64])
            .collect::<Vec<_>>(),
    );
    let run = |shard: &Shard| {
        shard.evaluate(
            Arc::clone(&model),
            Arc::clone(&points),
            BatchOutput::Moments,
            None,
            None,
        )
    };

    faults::install(FaultPlan {
        seed: 9,
        worker_kill_rate_pct: 100,
        target_shard: Some(SHARD),
        ..FaultPlan::default()
    });
    // Two consecutive crash-jobs trip the threshold-2 breaker. Each job
    // still completes (drained by the submitter), but its worker deaths
    // count as breaker failures.
    let opened = quiet_panics(|| {
        for i in 0..10 {
            match run(&shard) {
                Ok(out) => {
                    assert_eq!(out.results.len(), 300, "job {i}");
                    // Give supervision a chance to respawn victims so
                    // the next job has workers to lose again.
                    std::thread::sleep(Duration::from_millis(5));
                    shard.supervise();
                }
                Err(ServeError::Unavailable {
                    shard: s,
                    reason,
                    retry_after_ms,
                }) => {
                    assert_eq!(s, SHARD as u64);
                    assert_eq!(reason, "circuit breaker open");
                    assert!(retry_after_ms >= 1, "{retry_after_ms}");
                    return true;
                }
                Err(other) => panic!("job {i}: unexpected {other:?}"),
            }
        }
        false
    });
    faults::clear();
    assert!(opened, "breaker never opened under a 100% crash loop");
    assert_eq!(shard.breaker().phase_name(), "open");
    assert!(shard.breaker().opened_total() >= 1);

    // Storm over: wait out the cooldown, let supervision respawn the
    // pool, and the half-open probe closes the breaker.
    let mut closed = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        shard.supervise();
        if let Ok(out) = run(&shard) {
            assert!(out.results.iter().all(Result::is_ok));
            closed = true;
            break;
        }
    }
    assert!(closed, "breaker never recovered after the storm");
    assert_eq!(shard.breaker().phase_name(), "closed");
    assert!(shard.health().restarts > 0);
}
