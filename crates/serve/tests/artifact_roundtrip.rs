//! Artifact persistence: save → load must reproduce evaluation results
//! bit-for-bit across representative circuits, and tampered or
//! wrong-version files must be rejected with typed errors.

use awesym_circuit::generators::{fig1_rc, rc_ladder, rc_tree, Workload};
use awesym_partition::{CompiledModel, SymbolBinding};
use awesym_serve::{
    from_artifact_str, load_artifact, load_model_file, save_artifact, ServeError, FORMAT_VERSION,
};

/// Minimal self-cleaning temp dir (avoids a dev-dependency).
struct TempDirLite(std::path::PathBuf);
impl TempDirLite {
    fn new(prefix: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "{prefix}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDirLite(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for TempDirLite {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Three structurally different circuits, each with two symbols.
fn cases() -> Vec<(&'static str, Workload, Vec<SymbolBinding>)> {
    let mut v = Vec::new();
    let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let b = vec![
        SymbolBinding::capacitance("c1", vec![w.circuit.find("C1").unwrap()]),
        SymbolBinding::resistance("r2", vec![w.circuit.find("R2").unwrap()]),
    ];
    v.push(("fig1_rc", w, b));
    let w = rc_ladder(6, 100.0, 0.5e-12);
    let b = vec![
        SymbolBinding::resistance("r1", vec![w.circuit.find("R1").unwrap()]),
        SymbolBinding::capacitance("cend", vec![w.circuit.find("C6").unwrap()]),
    ];
    v.push(("rc_ladder", w, b));
    let w = rc_tree(3, 50.0, 0.2e-12);
    let b = vec![
        SymbolBinding::resistance("rdrv", vec![w.circuit.find("Rdrv").unwrap()]),
        SymbolBinding::capacitance("cleaf", vec![w.circuit.find("Ct7").unwrap()]),
    ];
    v.push(("rc_tree", w, b));
    v
}

/// A few evaluation points spread around each model's nominal values.
fn probe_points(model: &CompiledModel) -> Vec<Vec<f64>> {
    let nominal = model.nominal().to_vec();
    [0.5, 1.0, 1.7, 3.0]
        .iter()
        .map(|&f| nominal.iter().map(|&v| v * f).collect())
        .collect()
}

#[test]
fn save_load_round_trip_is_bit_identical() {
    let dir = TempDirLite::new("awesym_artifact_rt");
    for (name, w, bindings) in cases() {
        let model = CompiledModel::build(&w.circuit, w.input, w.output, &bindings, 2).unwrap();
        let path = dir.path().join(format!("{name}.awesym"));
        save_artifact(&model, &path).unwrap();
        let back = load_artifact(&path).unwrap();
        assert_eq!(back.op_count(), model.op_count(), "{name}");
        assert_eq!(back.order(), model.order(), "{name}");
        for vals in probe_points(&model) {
            // Moments must agree to the bit, not just approximately.
            assert_eq!(
                back.eval_moments(&vals),
                model.eval_moments(&vals),
                "{name}"
            );
            let (r1, r2) = (model.rom(&vals).unwrap(), back.rom(&vals).unwrap());
            let bits = |x: f64| x.to_bits();
            assert_eq!(r1.dc_gain().to_bits(), r2.dc_gain().to_bits(), "{name}");
            assert_eq!(r1.poles().len(), r2.poles().len(), "{name}");
            for (p, q) in r1.poles().iter().zip(r2.poles()) {
                assert_eq!((bits(p.re), bits(p.im)), (bits(q.re), bits(q.im)), "{name}");
            }
            for (p, q) in r1.residues().iter().zip(r2.residues()) {
                assert_eq!((bits(p.re), bits(p.im)), (bits(q.re), bits(q.im)), "{name}");
            }
        }
    }
}

fn fig1_model() -> CompiledModel {
    let (_, w, bindings) = cases().remove(0);
    CompiledModel::build(&w.circuit, w.input, w.output, &bindings, 2).unwrap()
}

#[test]
fn corrupted_payload_is_rejected() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    // Flip one digit inside the payload without breaking the JSON.
    let pos = text.find("\"payload\"").unwrap();
    let digit = text[pos..].find(|c: char| c.is_ascii_digit()).unwrap() + pos;
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'5' { b'6' } else { b'5' };
    let tampered = String::from_utf8(bytes).unwrap();
    match from_artifact_str(&tampered) {
        Err(ServeError::ChecksumMismatch { expected, actual }) => assert_ne!(expected, actual),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

/// A partially-written artifact (e.g. a crash mid-`save`) must be a
/// typed `BadFormat`, never a panic or a half-loaded model.
#[test]
fn truncated_artifact_is_rejected_at_any_cut() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    for keep in [0, 1, text.len() / 10, text.len() / 2, text.len() - 1] {
        let cut = &text[..keep];
        match from_artifact_str(cut) {
            Err(ServeError::BadFormat { .. }) => {}
            other => panic!("cut at {keep}: expected BadFormat, got {other:?}"),
        }
    }
}

/// A single flipped digit anywhere in the envelope must fail one of the
/// typed validation gates (usually the checksum).
#[test]
fn bit_flipped_artifact_is_rejected() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    let digit_positions: Vec<usize> = text
        .bytes()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    // Sample a spread of positions rather than all of them (artifacts
    // carry thousands of digits).
    for &pos in digit_positions.iter().step_by(digit_positions.len() / 16) {
        let mut bytes = text.clone().into_bytes();
        bytes[pos] ^= 0x01; // 0↔1, 2↔3, … — still a digit, new value
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(
            from_artifact_str(&tampered).is_err(),
            "flip at byte {pos} was accepted"
        );
    }
}

/// NaN survives a JSON round trip as `null` → NaN, so an artifact can be
/// internally consistent (checksum included) yet numerically poisoned.
/// The loader must reject it with the typed `ArtifactNumeric` error.
#[test]
fn non_finite_payload_values_are_rejected_with_typed_error() {
    let model = fig1_model();
    let payload = serde_json::to_string(&model).unwrap();
    let nominal = model.nominal()[0];
    let needle = serde_json::to_string(&serde::Content::F64(nominal)).unwrap();
    assert!(payload.contains(&needle), "nominal not found in payload");
    let poisoned_payload = payload.replacen(&needle, "null", 1);
    // Re-envelope with a *correct* checksum: only the numeric gate can
    // catch this one.
    let envelope = serde::Content::Map(vec![
        ("format".into(), serde::Content::Str("awesym-model".into())),
        ("version".into(), serde::Content::U64(1)),
        (
            "checksum".into(),
            serde::Content::Str(awesym_serve::checksum(&poisoned_payload)),
        ),
        ("payload".into(), serde::Content::Str(poisoned_payload)),
    ]);
    let text = serde_json::to_string(&envelope).unwrap();
    match from_artifact_str(&text) {
        Err(ServeError::ArtifactNumeric { what }) => {
            assert!(what.contains("non-finite"), "{what}")
        }
        other => panic!("expected ArtifactNumeric, got {other:?}"),
    }
    // The raw-model loading path applies the same gate.
    let dir = TempDirLite::new("awesym_artifact_nan");
    let raw = dir.path().join("poisoned.json");
    std::fs::write(&raw, payload.replacen(&needle, "null", 1)).unwrap();
    assert!(matches!(
        load_model_file(&raw),
        Err(ServeError::ArtifactNumeric { .. })
    ));
}

#[test]
fn wrong_version_is_rejected() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    let needle = format!("\"version\":{FORMAT_VERSION}");
    assert!(text.contains(&needle), "{text:.80}");
    let newer = text.replace(&needle, &format!("\"version\":{}", FORMAT_VERSION + 1));
    match from_artifact_str(&newer) {
        Err(ServeError::VersionMismatch { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// Reconstructs the minor-0 artifact encoding: no `minor`/`opt_level`
/// envelope fields, and a payload whose tape carries only `ops` (implicit
/// `dst[i] = i`, no `n_regs`/`raw_ops`/`opt_level`) — the format written
/// before the tape optimizer existed. Such artifacts must still load.
#[test]
fn legacy_minor0_artifact_still_loads() {
    use serde::Content;

    // An unoptimized model has an SSA tape, so stripping the new fields
    // yields exactly what the old serializer wrote.
    let (_, w, bindings) = cases().remove(0);
    let model = CompiledModel::build_with_options(
        &w.circuit,
        w.input,
        w.output,
        &bindings,
        awesym_partition::ModelOptions::order(2).with_opt_level(awesym_partition::OptLevel::None),
    )
    .unwrap();

    fn strip(c: Content, drop: &[&str]) -> Content {
        match c {
            Content::Map(entries) => Content::Map(
                entries
                    .into_iter()
                    .filter(|(k, _)| !drop.contains(&k.as_str()))
                    .map(|(k, v)| (k, strip(v, drop)))
                    .collect(),
            ),
            Content::Seq(items) => {
                Content::Seq(items.into_iter().map(|v| strip(v, drop)).collect())
            }
            other => other,
        }
    }

    let payload_content: Content =
        serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
    let legacy_payload = serde_json::to_string(&strip(
        payload_content,
        &["dst", "n_regs", "raw_ops", "opt_level"],
    ))
    .unwrap();
    let envelope = Content::Map(vec![
        ("format".into(), Content::Str("awesym-model".into())),
        ("version".into(), Content::U64(1)),
        (
            "checksum".into(),
            Content::Str(awesym_serve::checksum(&legacy_payload)),
        ),
        ("payload".into(), Content::Str(legacy_payload)),
    ]);
    let legacy_text = serde_json::to_string(&envelope).unwrap();
    assert!(!legacy_text.contains("minor"));

    let back = from_artifact_str(&legacy_text).unwrap();
    assert_eq!(back.opt_level(), awesym_partition::OptLevel::None);
    for vals in probe_points(&model) {
        assert_eq!(back.eval_moments(&vals), model.eval_moments(&vals));
    }
    // A future minor within the same major is also accepted…
    let future_minor = legacy_text.replace("\"version\":1", "\"version\":1,\"minor\":99");
    assert!(from_artifact_str(&future_minor).is_ok());
    // …but a different major stays a typed error.
    let major2 = legacy_text.replace("\"version\":1", "\"version\":2");
    assert!(matches!(
        from_artifact_str(&major2),
        Err(ServeError::VersionMismatch {
            found: 2,
            supported: 1
        })
    ));
}

#[test]
fn garbage_and_missing_fields_are_bad_format() {
    for bad in [
        "not json",
        "{}",
        r#"{"format":"something-else","version":1}"#,
        r#"{"format":"awesym-model"}"#,
        r#"{"format":"awesym-model","version":1}"#,
        r#"{"format":"awesym-model","version":1,"checksum":"fnv1a64:0"}"#,
    ] {
        match from_artifact_str(bad) {
            Err(ServeError::BadFormat { .. }) => {}
            other => panic!("{bad}: expected BadFormat, got {other:?}"),
        }
    }
}

/// Minor-2 artifacts carry every model float bit-exactly in the hex
/// `f64_data` pool; the JSON payload holds only marker strings. The
/// loader must restore the pool and the envelope text must advertise the
/// new fields.
#[test]
fn minor2_artifact_pools_floats_out_of_the_json_payload() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    assert!(text.contains("\"minor\":2"), "{:.120}", text);
    assert!(text.contains("\"f64_data\":\""));
    // The pool is non-empty (models always carry nominal values) and the
    // markers land in the payload in its place.
    let envelope: serde::Content = serde_json::from_str(&text).unwrap();
    let count = envelope
        .get("f64_count")
        .and_then(serde::Content::as_u64)
        .unwrap();
    assert!(count > 0);
    let data = envelope
        .get("f64_data")
        .and_then(serde::Content::as_str)
        .unwrap();
    assert_eq!(data.len() as u64, 16 * count);
    assert!(data.bytes().all(|b| b.is_ascii_hexdigit()));
    let payload = envelope
        .get("payload")
        .and_then(serde::Content::as_str)
        .unwrap();
    // The marker's U+0001 prefix is JSON-escaped inside the payload text.
    assert!(payload.contains("\\u0001f64:0"));
    // No float literal survives in the payload: every number left is an
    // integer (indices, counts, op codes).
    assert!(!payload.contains(|c: char| c == '.'));
    let back = from_artifact_str(&text).unwrap();
    let vals = model.nominal().to_vec();
    assert_eq!(back.eval_moments(&vals), model.eval_moments(&vals));
}

/// Tampering with the float pool — flipped hex, truncated pool, or an
/// inconsistent `f64_count` — must be a typed rejection, never a model
/// with silently perturbed coefficients.
#[test]
fn minor2_f64_data_tampering_is_rejected() {
    let model = fig1_model();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    // 1) Flip one hex digit inside f64_data: checksum catches it.
    let pos = text.find("\"f64_data\":\"").unwrap() + "\"f64_data\":\"".len();
    let mut bytes = text.clone().into_bytes();
    bytes[pos] = if bytes[pos] == b'5' { b'6' } else { b'5' };
    let tampered = String::from_utf8(bytes).unwrap();
    assert!(matches!(
        from_artifact_str(&tampered),
        Err(ServeError::ChecksumMismatch { .. })
    ));
    // Rebuild envelopes with *correct* checksums so only the structural
    // gates can reject them. The minor-2 checksum is FNV over the payload
    // bytes followed by the pool bytes — i.e. over their concatenation.
    let envelope: serde::Content = serde_json::from_str(&text).unwrap();
    let payload = envelope
        .get("payload")
        .and_then(serde::Content::as_str)
        .unwrap();
    let data = envelope
        .get("f64_data")
        .and_then(serde::Content::as_str)
        .unwrap();
    let count = envelope
        .get("f64_count")
        .and_then(serde::Content::as_u64)
        .unwrap();
    let reenvelope = |payload: &str, data: &str, count: u64| {
        serde_json::to_string(&serde::Content::Map(vec![
            ("format".into(), serde::Content::Str("awesym-model".into())),
            ("version".into(), serde::Content::U64(1)),
            ("minor".into(), serde::Content::U64(2)),
            (
                "checksum".into(),
                serde::Content::Str(awesym_serve::checksum(&format!("{payload}{data}"))),
            ),
            ("f64_count".into(), serde::Content::U64(count)),
            ("f64_data".into(), serde::Content::Str(data.into())),
            ("payload".into(), serde::Content::Str(payload.into())),
        ]))
        .unwrap()
    };
    // Sanity: a faithful re-envelope loads, proving the checksum recipe.
    assert!(from_artifact_str(&reenvelope(payload, data, count)).is_ok());
    // 2) Pool truncated by one value, count left stale: length gate.
    let truncated = reenvelope(payload, &data[..data.len() - 16], count);
    assert!(matches!(
        from_artifact_str(&truncated),
        Err(ServeError::BadFormat { .. })
    ));
    // 3) Count understates the pool: markers point past the pool.
    let undercount = reenvelope(payload, &data[..16], 1);
    assert!(matches!(
        from_artifact_str(&undercount),
        Err(ServeError::BadFormat { .. })
    ));
    // 4) Non-hex bytes in a right-sized pool.
    let mut garbled: Vec<u8> = data.into();
    garbled[0] = b'z';
    let garbled = reenvelope(payload, std::str::from_utf8(&garbled).unwrap(), count);
    assert!(matches!(
        from_artifact_str(&garbled),
        Err(ServeError::BadFormat { .. })
    ));
}

/// A model whose strings could be mistaken for float markers (only
/// reachable with adversarial symbol names) must fall back to the legacy
/// inline-float envelope rather than corrupt itself.
#[test]
fn marker_colliding_names_fall_back_to_legacy_form() {
    let (_, w, _) = cases().remove(0);
    let bindings = vec![SymbolBinding::capacitance(
        "\u{1}f64:0",
        vec![w.circuit.find("C1").unwrap()],
    )];
    let model = CompiledModel::build(&w.circuit, w.input, w.output, &bindings, 2).unwrap();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    assert!(!text.contains("f64_data"), "{:.120}", text);
    assert!(text.contains("\"minor\":1"));
    let back = from_artifact_str(&text).unwrap();
    let vals = model.nominal().to_vec();
    assert_eq!(back.eval_moments(&vals), model.eval_moments(&vals));
}

#[test]
fn load_model_file_accepts_raw_model_json_too() {
    let dir = TempDirLite::new("awesym_artifact_raw");
    let model = fig1_model();
    let raw = dir.path().join("raw.json");
    std::fs::write(&raw, serde_json::to_string(&model).unwrap()).unwrap();
    let back = load_model_file(&raw).unwrap();
    let vals = model.nominal().to_vec();
    assert_eq!(back.eval_moments(&vals), model.eval_moments(&vals));
    // But a real artifact still goes through strict validation.
    let art = dir.path().join("m.awesym");
    save_artifact(&model, &art).unwrap();
    assert!(load_model_file(&art).is_ok());
    let text = std::fs::read_to_string(&art).unwrap();
    let bad = text.replace("fnv1a64:", "fnv1a64:0");
    std::fs::write(&art, bad).unwrap();
    assert!(matches!(
        load_model_file(&art),
        Err(ServeError::ChecksumMismatch { .. })
    ));
    // Missing file reports an Io error, not a panic.
    assert!(matches!(
        load_artifact(dir.path().join("nope.awesym")),
        Err(ServeError::Io { .. })
    ));
}
