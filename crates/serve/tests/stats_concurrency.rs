//! Counter exactness under contention: `ServerStats` is updated from
//! every worker thread on the request path, so its counters must not
//! lose increments when hammered concurrently — an undercounted
//! `panics_caught` would mask real instability in production.

use awesym_serve::ServerStats;
use std::sync::Barrier;
use std::time::Duration;

const THREADS: usize = 8;
const ROUNDS: usize = 1000;

#[test]
fn eight_threads_of_updates_count_exactly() {
    let stats = ServerStats::new();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stats = &stats;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    stats
                        .record_request(Duration::from_micros((t * ROUNDS + i) as u64), i % 4 != 0);
                    stats.record_batch(3, Duration::from_nanos(10));
                    stats.record_panics_caught(2);
                    stats.record_degradations(1);
                    if i % 2 == 0 {
                        stats.record_deadline_exceeded();
                    }
                    if i % 5 == 0 {
                        stats.record_request_shed();
                    }
                }
            });
        }
    });
    let snap = stats.snapshot();
    let n = (THREADS * ROUNDS) as u64;
    assert_eq!(snap.requests, n);
    assert_eq!(snap.errors, n / 4);
    assert_eq!(snap.latency.iter().map(|b| b.count).sum::<u64>(), n);
    assert_eq!(snap.batch_points, 3 * n);
    assert_eq!(snap.panics_caught, 2 * n);
    assert_eq!(snap.degradations, n);
    assert_eq!(snap.deadlines_exceeded, n / 2);
    assert_eq!(snap.requests_shed, n / 5);
}

#[test]
fn concurrent_snapshots_never_tear_backwards() {
    // Readers running alongside writers must see monotonically
    // non-decreasing counters (each counter is monotone; relaxed loads
    // may lag but never run backwards).
    let stats = ServerStats::new();
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for _ in 0..ROUNDS {
                stats.record_panics_caught(1);
                stats.record_request_shed();
            }
        });
        let mut last = 0;
        while !writer.is_finished() {
            let now = stats.snapshot().panics_caught;
            assert!(now >= last, "{now} < {last}");
            last = now;
        }
    });
    assert_eq!(stats.snapshot().panics_caught, ROUNDS as u64);
}
