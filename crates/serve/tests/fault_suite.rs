//! Fault-injection suite: proves the serving stack keeps its promises
//! while evaluation is actively failing underneath it.
//!
//! Runs only with `--features fault-injection` (`ci.sh` has a
//! `fault_suite` stage). All faults come from a seeded
//! [`FaultPlan`], so every run faults exactly the same points: faulted
//! runs can be compared bit-for-bit against fault-free baselines.
//!
//! Invariants exercised here:
//! - every batch point gets an answer — panics become `internal` point
//!   errors, NaN moments become `numeric_unstable`, and healthy points
//!   are bit-identical to a fault-free run;
//! - a request that outlives its deadline is cut short with
//!   `deadline_exceeded` and does not block the next request;
//! - past the in-flight budget, requests are shed with `overloaded` and a
//!   `retry_after_ms` hint;
//! - an unstable Padé fit degrades to a lower order and says so.

use awesym_circuit::generators::fig1_rc;
use awesym_partition::{CompiledModel, SymbolBinding};
use awesym_serve::faults::{self, Fault, FaultPlan};
use awesym_serve::{evaluate_batch, evaluate_batch_guarded, BatchOutput, Server, ServerConfig};
use serde::Content;
use std::sync::Mutex;
use std::time::Duration;

/// The fault plan is process-global state, so tests touching it must not
/// interleave. Poisoning is ignored: a failed test must not cascade.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_guard() -> std::sync::MutexGuard<'static, ()> {
    PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with panic output silenced (injected panics would otherwise
/// spam the test log), restoring the hook afterwards.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

fn model2() -> CompiledModel {
    let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let c = &w.circuit;
    let bindings = [
        SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
        SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
    ];
    CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
}

fn grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            vec![0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t]
        })
        .collect()
}

const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

fn compile_line(name: &str, order: u64) -> String {
    format!(
        r#"{{"cmd":"compile","name":"{name}","netlist":{netlist},"input":"vin","output":"2","symbols":["C1","R2:r"],"order":{order}}}"#,
        netlist = serde_json::to_string(&Content::Str(NETLIST.into())).unwrap()
    )
}

fn batch_line(model: &str, points: Vec<Vec<f64>>, extra: &[(&str, Content)]) -> String {
    let mut fields = vec![
        ("cmd".to_string(), Content::Str("batch".into())),
        ("model".to_string(), Content::Str(model.into())),
        (
            "points".to_string(),
            Content::Seq(
                points
                    .into_iter()
                    .map(|p| Content::Seq(p.into_iter().map(Content::F64).collect()))
                    .collect(),
            ),
        ),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    serde_json::to_string(&Content::Map(fields)).unwrap()
}

fn parse(server: &Server, line: &str) -> Content {
    let resp = server.handle_line(line).expect("non-empty request line");
    serde_json::from_str(resp.text()).expect("response is JSON")
}

fn ok_of(c: &Content) -> bool {
    c.get("ok").and_then(Content::as_bool).unwrap()
}

fn server_counter(server: &Server, key: &str) -> u64 {
    parse(server, r#"{"cmd":"stats"}"#)
        .get("server")
        .and_then(|s| s.get(key))
        .and_then(Content::as_u64)
        .unwrap()
}

#[test]
fn faulted_batch_answers_every_point_and_healthy_points_are_bit_identical() {
    let _guard = plan_guard();
    let model = model2();
    let points = grid(1200);

    // Fault-free baseline first (no plan installed).
    faults::clear();
    let baseline = evaluate_batch(&model, &points, &BatchOutput::Moments, Some(4));

    // 10% panics + 10% NaN moments, seeded.
    let plan = FaultPlan {
        seed: 0xA11CE,
        panic_rate_pct: 10,
        nan_rate_pct: 10,
        ..FaultPlan::default()
    };
    faults::install(plan);
    let outcome = quiet_panics(|| {
        evaluate_batch_guarded(&model, &points, &BatchOutput::Moments, Some(4), None)
    });
    faults::clear();

    // Every point answered.
    assert_eq!(outcome.results.len(), points.len());
    let mut panicked = 0u64;
    let mut poisoned = 0u64;
    for (i, (got, base)) in outcome.results.iter().zip(&baseline).enumerate() {
        match plan.fault_for(i) {
            None => {
                // Healthy points: bit-identical to the fault-free run
                // (the faulted run takes the per-point path, the baseline
                // the SoA kernel — the two must agree to the bit).
                assert_eq!(got, base, "point {i}");
            }
            Some(Fault::Panic) => {
                let e = got.as_ref().unwrap_err();
                assert_eq!(e.code, "internal", "point {i}: {e}");
                assert!(e.message.contains("panicked"), "point {i}: {e}");
                panicked += 1;
            }
            Some(Fault::NanMoments) => {
                let e = got.as_ref().unwrap_err();
                assert_eq!(e.code, "numeric_unstable", "point {i}: {e}");
                poisoned += 1;
            }
            Some(Fault::Slow(_)) => unreachable!("no slow faults in this plan"),
        }
    }
    assert!(panicked > 60, "{panicked}");
    assert!(poisoned > 60, "{poisoned}");
    assert_eq!(outcome.panics_caught, panicked);
    assert!(!outcome.deadline_exceeded);
}

#[test]
fn server_answers_faulted_batches_and_counts_panics() {
    let _guard = plan_guard();
    let server = Server::default();
    assert!(ok_of(&parse(&server, &compile_line("m", 2))));
    let req = batch_line("m", grid(300), &[("workers", Content::U64(4))]);

    faults::install(FaultPlan {
        seed: 7,
        panic_rate_pct: 10,
        nan_rate_pct: 10,
        ..FaultPlan::default()
    });
    let c = quiet_panics(|| parse(&server, &req));
    faults::clear();

    assert!(ok_of(&c), "{c:?}");
    assert_eq!(c.get("count").and_then(Content::as_u64), Some(300));
    let results = c.get("results").and_then(Content::as_seq).unwrap();
    assert_eq!(results.len(), 300);
    let coded = results
        .iter()
        .filter(|r| {
            matches!(
                r.get("code").and_then(Content::as_str),
                Some("internal") | Some("numeric_unstable")
            )
        })
        .count() as u64;
    let ok_count = c.get("ok_count").and_then(Content::as_u64).unwrap();
    assert_eq!(ok_count + coded, 300);
    assert!(coded > 30, "{coded}");

    // The server is still healthy and the counters saw the panics.
    assert!(server_counter(&server, "panics_caught") > 10);
    assert!(ok_of(&parse(
        &server,
        r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#
    )));
}

#[test]
fn deadline_cuts_a_slow_batch_short_without_blocking_the_next_request() {
    let _guard = plan_guard();
    let server = Server::default();
    assert!(ok_of(&parse(&server, &compile_line("m", 2))));
    // Every point sleeps 25 ms against a 10 ms deadline: at most the
    // first point per worker lands, the rest are cut off between points.
    let req = batch_line(
        "m",
        grid(32),
        &[
            ("workers", Content::U64(2)),
            ("deadline_ms", Content::U64(10)),
        ],
    );
    faults::install(FaultPlan {
        seed: 1,
        slow_rate_pct: 100,
        slow: Duration::from_millis(25),
        ..FaultPlan::default()
    });
    let c = parse(&server, &req);
    faults::clear();

    assert!(ok_of(&c), "{c:?}");
    assert_eq!(
        c.get("deadline_exceeded").and_then(Content::as_bool),
        Some(true)
    );
    let results = c.get("results").and_then(Content::as_seq).unwrap();
    assert_eq!(results.len(), 32);
    let expired = results
        .iter()
        .filter(|r| r.get("code").and_then(Content::as_str) == Some("deadline_exceeded"))
        .count();
    assert!(expired >= 28, "{expired} of 32 expired");

    // Deadline damage is confined to that request.
    let c = parse(&server, r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#);
    assert!(ok_of(&c), "{c:?}");
    assert_eq!(server_counter(&server, "deadlines_exceeded"), 1);
}

#[test]
fn inflight_budget_sheds_concurrent_load_with_retry_hint() {
    let _guard = plan_guard();
    let server = Server::with_config(ServerConfig {
        max_inflight: 1,
        retry_after_ms: 25,
        ..ServerConfig::default()
    });
    assert!(ok_of(&parse(&server, &compile_line("m", 2))));

    // The in-flight request sleeps 400 ms per point; a second request
    // arriving meanwhile must be shed, not queued.
    faults::install(FaultPlan {
        seed: 2,
        slow_rate_pct: 100,
        slow: Duration::from_millis(400),
        ..FaultPlan::default()
    });
    let shed = std::thread::scope(|s| {
        let slow = s.spawn(|| parse(&server, r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#));
        std::thread::sleep(Duration::from_millis(100));
        let c = parse(&server, r#"{"cmd":"eval","model":"m","values":[2e-9,2e3]}"#);
        let slow_resp = slow.join().unwrap();
        assert!(ok_of(&slow_resp), "{slow_resp:?}");
        c
    });
    faults::clear();

    assert!(!ok_of(&shed), "{shed:?}");
    assert_eq!(
        shed.get("code").and_then(Content::as_str),
        Some("overloaded")
    );
    assert_eq!(
        shed.get("retry_after_ms").and_then(Content::as_u64),
        Some(25)
    );
    // The budget frees up once the slow request finishes.
    let c = parse(&server, r#"{"cmd":"eval","model":"m","values":[1e-9,1e3]}"#);
    assert!(ok_of(&c), "{c:?}");
    assert_eq!(server_counter(&server, "requests_shed"), 1);
}

#[test]
fn overfit_model_degrades_to_lower_order_and_reports_it() {
    // No fault plan needed: the instability is the circuit's own — a
    // two-pole RC compiled at order 3 makes the q=3 Hankel system
    // singular, so the ladder must fall back to q=2 and say so.
    let _guard = plan_guard();
    faults::clear();
    let server = Server::default();
    assert!(ok_of(&parse(&server, &compile_line("m3", 3))));
    let c = parse(
        &server,
        r#"{"cmd":"eval","model":"m3","values":[1e-9,1e3],"kind":"rom"}"#,
    );
    assert!(ok_of(&c), "{c:?}");
    let degraded = c
        .get("result")
        .and_then(|r| r.get("degraded"))
        .expect("degraded report present");
    assert_eq!(
        degraded.get("from_order").and_then(Content::as_u64),
        Some(3)
    );
    assert_eq!(degraded.get("to_order").and_then(Content::as_u64), Some(2));
    assert!(degraded
        .get("reason")
        .and_then(Content::as_str)
        .unwrap()
        .contains("order 3"));
    assert_eq!(server_counter(&server, "degradations"), 1);
}

/// Acceptance gate for the binary wire format: on the same seeded
/// 1200-point faulted batch, the binary-v1 frame must carry exactly the
/// values and error codes the NDJSON response carries — healthy points
/// bit-identical, faulted points with matching typed codes and NaN value
/// slots.
#[test]
fn binary_frame_is_bit_identical_to_ndjson_on_a_faulted_batch() {
    let _guard = plan_guard();
    let server = Server::default();
    assert!(ok_of(&parse(&server, &compile_line("m", 2))));
    let plan = FaultPlan {
        seed: 0xBEEF,
        panic_rate_pct: 10,
        nan_rate_pct: 10,
        ..FaultPlan::default()
    };
    let nd_req = batch_line("m", grid(1200), &[("workers", Content::U64(4))]);
    let bin_req = batch_line(
        "m",
        grid(1200),
        &[
            ("workers", Content::U64(4)),
            ("encoding", Content::Str("binary-v1".into())),
        ],
    );

    // Same plan for both runs: faults are a pure function of the point
    // index, so the two responses describe identical evaluations.
    faults::install(plan);
    let nd = quiet_panics(|| parse(&server, &nd_req));
    faults::clear();
    faults::install(plan);
    let bin = quiet_panics(|| {
        server
            .handle_line(&bin_req)
            .expect("non-empty request line")
    });
    faults::clear();

    assert!(ok_of(&nd), "{nd:?}");
    let frame = awesym_serve::decode_frame(&bin.body).expect("well-formed binary frame");
    assert_eq!(frame.count, 1200);
    assert_eq!(frame.cols, 4, "2q moment columns at order 2");
    assert_eq!(
        Some(frame.ok_count),
        nd.get("ok_count").and_then(Content::as_u64)
    );
    let results = nd.get("results").and_then(Content::as_seq).unwrap();
    assert_eq!(results.len(), 1200);
    let mut faulted = 0usize;
    for (i, r) in results.iter().enumerate() {
        match r.get("code").and_then(Content::as_str) {
            Some(code) => {
                let wire = frame.code(i).expect("known error code");
                assert_eq!(wire.as_str(), code, "point {i}");
                assert!(
                    frame.point(i).iter().all(|v| v.is_nan()),
                    "point {i}: error slots must be NaN"
                );
                faulted += 1;
            }
            None => {
                let moments = r
                    .get("moments")
                    .and_then(Content::as_seq)
                    .unwrap_or_else(|| panic!("point {i}: missing moments"));
                let nd_bits: Vec<u64> = moments
                    .iter()
                    .map(|m| m.as_f64().unwrap().to_bits())
                    .collect();
                let bin_bits: Vec<u64> = frame.point(i).iter().map(|v| v.to_bits()).collect();
                assert_eq!(nd_bits, bin_bits, "point {i}");
            }
        }
    }
    assert!(faulted > 120, "{faulted} faulted of 1200");
}

#[test]
fn corrupted_artifacts_are_rejected_via_helpers() {
    // The corruption helpers live behind the feature too; prove they
    // drive the loader's typed rejection paths.
    let model = model2();
    let text = awesym_serve::to_artifact_string(&model).unwrap();
    let flipped = faults::bit_flip_digit(&text, 99);
    assert!(matches!(
        awesym_serve::from_artifact_str(&flipped),
        Err(awesym_serve::ServeError::ChecksumMismatch { .. })
            | Err(awesym_serve::ServeError::BadFormat { .. })
            | Err(awesym_serve::ServeError::VersionMismatch { .. })
    ));
    for frac in [0.1, 0.5, 0.9] {
        let cut = faults::truncate_at(&text, frac);
        assert!(matches!(
            awesym_serve::from_artifact_str(&cut),
            Err(awesym_serve::ServeError::BadFormat { .. })
        ));
    }
}
