//! Property tests for the shortest-round-trip float formatter behind
//! every wire encoder (ISSUE satellite c): any finite `f64` — drawn as
//! raw IEEE bit patterns, so subnormals, extreme exponents and negative
//! zero are all on the table — must print to a string that parses back
//! to the *bitwise identical* value, both through the vendored `ryu`
//! buffer directly and through the `serde_json::write_f64` path the
//! NDJSON encoder uses.

use proptest::prelude::*;

/// Formats through the exact code path `NdjsonEncoder` uses and parses
/// back with the standard library.
fn json_round_trip(v: f64) -> f64 {
    let mut out = Vec::new();
    serde_json::write_f64(v, &mut out);
    std::str::from_utf8(&out)
        .expect("formatter output is ASCII")
        .parse()
        .expect("formatter output parses as f64")
}

proptest! {
    /// Raw bit patterns: the whole representable range, including
    /// subnormals and -0.0. Non-finite patterns are skipped (the wire
    /// maps them to `null` by design, tested separately below).
    #[test]
    fn random_bit_patterns_round_trip_bitwise(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            return;
        }
        let mut buf = ryu::Buffer::new();
        let s = buf.format_finite(v);
        let back: f64 = s.parse().expect("ryu output parses as f64");
        prop_assert_eq!(back.to_bits(), v.to_bits(), "{} -> {}", v, s);
        prop_assert_eq!(json_round_trip(v).to_bits(), v.to_bits());
    }

    /// Physically plausible magnitudes (circuit delays, conductances,
    /// moment coefficients span roughly these decades), denser than the
    /// uniform-bit sweep around the values the server actually emits.
    #[test]
    fn engineering_range_round_trips_bitwise(
        mantissa in -1.0..1.0f64,
        log_scale in -30.0..30.0f64,
    ) {
        let v = mantissa * 10f64.powf(log_scale);
        let mut buf = ryu::Buffer::new();
        let back: f64 = buf.format_finite(v).parse().expect("parses");
        prop_assert_eq!(back.to_bits(), v.to_bits());
        prop_assert_eq!(json_round_trip(v).to_bits(), v.to_bits());
    }
}

/// The wire deliberately has no NaN/Inf literal: those encode as `null`.
#[test]
fn non_finite_values_encode_as_null() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut out = Vec::new();
        serde_json::write_f64(v, &mut out);
        assert_eq!(out, b"null");
    }
}

/// Boundary values that shortest-round-trip formatters historically get
/// wrong: keep them pinned outside the random sweep.
#[test]
fn boundary_values_round_trip_bitwise() {
    for v in [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,                     // smallest normal
        f64::from_bits(1),                     // smallest subnormal
        f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
        f64::MAX,
        f64::MIN,
        f64::EPSILON,
        1.0 + f64::EPSILON,
        5e-324,
        9.999999999999999e22, // classic Grisu boundary case
        1.7976931348623157e308,
    ] {
        let mut buf = ryu::Buffer::new();
        let s = buf.format_finite(v);
        let back: f64 = s.parse().unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {s}");
    }
}
