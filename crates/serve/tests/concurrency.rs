//! Concurrency invariants: a shared registry model evaluated from many
//! threads must give exactly the serial answers, and batch results must
//! not depend on the worker count.

use awesym_circuit::generators::fig1_rc;
use awesym_partition::{CompiledModel, SymbolBinding};
use awesym_serve::{evaluate_batch, BatchOutput, ModelRegistry, PointValue, TieredRegistry};
use std::sync::atomic::{AtomicBool, Ordering};

fn build_model() -> CompiledModel {
    let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let c = &w.circuit;
    let bindings = [
        SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
        SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
    ];
    CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
}

/// Deterministic evaluation point for (thread, iteration).
fn point(thread: usize, iter: usize) -> Vec<f64> {
    let t = (thread * 100 + iter) as f64 / 800.0;
    vec![0.5e-9 + 3.5e-9 * t, 200.0 + 4800.0 * t]
}

#[test]
fn eight_threads_times_hundred_evals_match_serial() {
    const THREADS: usize = 8;
    const EVALS: usize = 100;
    let registry = ModelRegistry::new(4);
    registry.insert("shared", build_model());

    // Serial reference, computed on a private model instance.
    let reference_model = build_model();
    let expected: Vec<Vec<Vec<f64>>> = (0..THREADS)
        .map(|t| {
            (0..EVALS)
                .map(|i| reference_model.eval_moments(&point(t, i)))
                .collect()
        })
        .collect();

    let got: Vec<Vec<Vec<f64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let registry = &registry;
                s.spawn(move || {
                    // Every thread hits the registry for each eval to
                    // exercise the lock, not just the Arc.
                    (0..EVALS)
                        .map(|i| {
                            let m = registry.get("shared").expect("model resident");
                            m.eval_moments(&point(t, i))
                        })
                        .collect::<Vec<Vec<f64>>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(got, expected);
    let stats = registry.stats();
    assert_eq!(stats.hits, (THREADS * EVALS) as u64);
    assert_eq!(stats.misses, 0);
}

/// LRU eviction racing concurrent lookups: writers churn a capacity-2
/// registry hard enough that every insert evicts, while readers hammer
/// `get` on the same names and *evaluate through* any `Arc` they win —
/// proving a model stays fully usable after the registry forgets it,
/// lookups never see a torn entry, and the hit/miss/eviction counters
/// stay consistent under the race.
#[test]
fn lru_eviction_racing_lookups_keeps_arcs_valid_and_counters_consistent() {
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    const CHURNS: usize = 300;
    let names = ["m0", "m1", "m2", "m3"];
    let registry = ModelRegistry::new(2);
    let expected = build_model().eval_moments(&point(0, 0));
    let stop = AtomicBool::new(false);

    let reads = std::thread::scope(|s| {
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let registry = &registry;
                s.spawn(move || {
                    // Each insert of a fresh name on a full capacity-2
                    // registry evicts the LRU entry out from under the
                    // readers.
                    for i in 0..CHURNS {
                        let name = names[(w + i) % names.len()];
                        registry.insert(name, build_model());
                    }
                })
            })
            .collect();
        let reader_handles: Vec<_> = (0..READERS)
            .map(|r| {
                let registry = &registry;
                let stop = &stop;
                let expected = &expected;
                s.spawn(move || {
                    let mut hits = 0u64;
                    let mut misses = 0u64;
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        match registry.get(names[(r + i) % names.len()]) {
                            Some(m) => {
                                // The Arc outlives eviction: evaluating
                                // it must give the exact serial answer
                                // even if the entry was just evicted.
                                assert_eq!(&m.eval_moments(&point(0, 0)), expected);
                                hits += 1;
                            }
                            None => misses += 1,
                        }
                        i += 1;
                    }
                    (hits, misses)
                })
            })
            .collect();
        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    let (read_hits, read_misses) = reads
        .iter()
        .fold((0u64, 0u64), |(h, m), &(rh, rm)| (h + rh, m + rm));
    let stats = registry.stats();
    assert_eq!(stats.hits, read_hits, "every hit counted exactly once");
    assert_eq!(stats.misses, read_misses, "every miss counted exactly once");
    // Full churn on a capacity-2 registry: all but the 2 survivors of
    // WRITERS * CHURNS inserts were evicted (names collide across
    // writers, so inserts may replace instead of evict — but the floor
    // from distinct-name churn still dominates).
    assert!(
        stats.evictions > 0,
        "churn must evict (got {})",
        stats.evictions
    );
    assert_eq!(stats.resident, 2, "capacity bound holds after the race");
    assert_eq!(registry.len(), 2);
}

/// The same race through the shard-facing two-tier registry: warm
/// evictions demote into the cold tier and cold hits promote back, all
/// while readers evaluate whatever `Arc` they catch mid-migration.
#[test]
fn tiered_eviction_racing_lookups_stays_consistent() {
    const CHURNS: usize = 200;
    let names = ["t0", "t1", "t2", "t3", "t4", "t5"];
    let tiered = TieredRegistry::new(2, 2);
    let expected = build_model().eval_moments(&point(0, 0));
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for i in 0..CHURNS {
                tiered.insert(names[i % names.len()], build_model());
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let tiered = &tiered;
                let stop = &stop;
                let expected = &expected;
                s.spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(m) = tiered.get(names[(r + i) % names.len()]) {
                            assert_eq!(&m.eval_moments(&point(0, 0)), expected);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
    });

    let stats = tiered.stats();
    assert!(stats.demotions > 0, "warm churn must demote into cold");
    assert!(
        stats.warm.resident + stats.cold.resident <= 4,
        "tier capacities hold: {} warm + {} cold",
        stats.warm.resident,
        stats.cold.resident
    );
    assert!(tiered.len() <= 4);
}

#[test]
fn batch_results_are_worker_count_invariant() {
    let model = build_model();
    let points: Vec<Vec<f64>> = (0..1200).map(|i| point(i % 8, i / 8)).collect();
    let serial = evaluate_batch(&model, &points, &BatchOutput::Moments, Some(1));
    for workers in [2, 4, 8] {
        let parallel = evaluate_batch(&model, &points, &BatchOutput::Moments, Some(workers));
        assert_eq!(parallel, serial, "workers={workers}");
    }
    // And the serial results equal direct model calls, in input order.
    for (r, p) in serial.iter().zip(&points) {
        assert_eq!(
            r.as_ref().unwrap(),
            &PointValue::Moments(model.eval_moments(p))
        );
    }
}

#[test]
fn rom_batches_are_worker_count_invariant() {
    let model = build_model();
    let points: Vec<Vec<f64>> = (0..160).map(|i| point(i % 8, i / 8)).collect();
    let serial = evaluate_batch(&model, &points, &BatchOutput::Rom, Some(1));
    let parallel = evaluate_batch(&model, &points, &BatchOutput::Rom, Some(8));
    assert_eq!(parallel, serial);
}
