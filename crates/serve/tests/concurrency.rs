//! Concurrency invariants: a shared registry model evaluated from many
//! threads must give exactly the serial answers, and batch results must
//! not depend on the worker count.

use awesym_circuit::generators::fig1_rc;
use awesym_partition::{CompiledModel, SymbolBinding};
use awesym_serve::{evaluate_batch, BatchOutput, ModelRegistry, PointValue};

fn build_model() -> CompiledModel {
    let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let c = &w.circuit;
    let bindings = [
        SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
        SymbolBinding::resistance("r2", vec![c.find("R2").unwrap()]),
    ];
    CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap()
}

/// Deterministic evaluation point for (thread, iteration).
fn point(thread: usize, iter: usize) -> Vec<f64> {
    let t = (thread * 100 + iter) as f64 / 800.0;
    vec![0.5e-9 + 3.5e-9 * t, 200.0 + 4800.0 * t]
}

#[test]
fn eight_threads_times_hundred_evals_match_serial() {
    const THREADS: usize = 8;
    const EVALS: usize = 100;
    let registry = ModelRegistry::new(4);
    registry.insert("shared", build_model());

    // Serial reference, computed on a private model instance.
    let reference_model = build_model();
    let expected: Vec<Vec<Vec<f64>>> = (0..THREADS)
        .map(|t| {
            (0..EVALS)
                .map(|i| reference_model.eval_moments(&point(t, i)))
                .collect()
        })
        .collect();

    let got: Vec<Vec<Vec<f64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let registry = &registry;
                s.spawn(move || {
                    // Every thread hits the registry for each eval to
                    // exercise the lock, not just the Arc.
                    (0..EVALS)
                        .map(|i| {
                            let m = registry.get("shared").expect("model resident");
                            m.eval_moments(&point(t, i))
                        })
                        .collect::<Vec<Vec<f64>>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(got, expected);
    let stats = registry.stats();
    assert_eq!(stats.hits, (THREADS * EVALS) as u64);
    assert_eq!(stats.misses, 0);
}

#[test]
fn batch_results_are_worker_count_invariant() {
    let model = build_model();
    let points: Vec<Vec<f64>> = (0..1200).map(|i| point(i % 8, i / 8)).collect();
    let serial = evaluate_batch(&model, &points, &BatchOutput::Moments, Some(1));
    for workers in [2, 4, 8] {
        let parallel = evaluate_batch(&model, &points, &BatchOutput::Moments, Some(workers));
        assert_eq!(parallel, serial, "workers={workers}");
    }
    // And the serial results equal direct model calls, in input order.
    for (r, p) in serial.iter().zip(&points) {
        assert_eq!(
            r.as_ref().unwrap(),
            &PointValue::Moments(model.eval_moments(p))
        );
    }
}

#[test]
fn rom_batches_are_worker_count_invariant() {
    let model = build_model();
    let points: Vec<Vec<f64>> = (0..160).map(|i| point(i % 8, i / 8)).collect();
    let serial = evaluate_batch(&model, &points, &BatchOutput::Rom, Some(1));
    let parallel = evaluate_batch(&model, &points, &BatchOutput::Rom, Some(8));
    assert_eq!(parallel, serial);
}
