//! Exactness of the lock-free metrics under concurrency, mirroring the
//! serve crate's `stats_concurrency` suite: 8 threads hammer shared
//! counters and histograms and every single update must be visible in
//! the final snapshot — relaxed ordering trades *ordering* guarantees,
//! never *counting* ones.

use awesym_obs::{Histogram, Registry, Tracer};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counters_are_exact_under_8_threads() {
    let reg = Registry::new();
    let counter = reg.counter("hits");
    let gauge = reg.gauge("level");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.add(-1);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(gauge.get(), 0);
}

#[test]
fn histogram_count_and_buckets_are_exact_under_8_threads() {
    let h = Histogram::new(&[9, 99, 999]);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across all four buckets.
                    h.observe((i * 7 + t as u64) % 2000);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    let snap = h.snapshot();
    assert_eq!(snap.count, total);
    let bucket_sum: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_sum, total, "every observation landed in a bucket");
    // Recompute the expected distribution serially and compare exactly.
    let expect = Histogram::new(&[9, 99, 999]);
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            expect.observe((i * 7 + t) % 2000);
        }
    }
    assert_eq!(snap, expect.snapshot());
}

#[test]
fn registry_registration_races_converge_on_one_handle() {
    let reg = Registry::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = &reg;
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    reg.counter("shared").inc();
                }
            });
        }
    });
    assert_eq!(reg.counter("shared").get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_bucket_boundaries() {
    let h = Histogram::new(&[0, 1, 1_000]);
    for v in [0, 1, 2, 999, 1_000, 1_001, u64::MAX] {
        h.observe(v);
    }
    let snap = h.snapshot();
    assert_eq!(
        snap.buckets,
        vec![
            (Some(0), 1),     // exactly 0
            (Some(1), 1),     // exactly the edge: inclusive
            (Some(1_000), 3), // 2, 999, 1000
            (None, 2),        // 1001 and u64::MAX overflow
        ]
    );
}

#[test]
fn tracer_accepts_concurrent_recorders_without_losing_more_than_capacity() {
    let t = Tracer::new(256);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let t = &t;
            s.spawn(move || {
                for i in 0..1_000u64 {
                    t.record("w", i, 1);
                }
            });
        }
    });
    let recorded = t.drain().len() as u64;
    let total = THREADS as u64 * 1_000;
    assert_eq!(recorded, 256, "ring keeps exactly its capacity");
    assert_eq!(t.dropped(), total - 256);
}
