//! The `1/N` sampling guard behind always-compiled profiling hooks.
//!
//! Feature-gated profiling (`#[cfg(feature = "profile")]`) splits the
//! build matrix and means the numbers you can get are never the numbers
//! production runs. Instead, hooks stay compiled in and hide behind a
//! [`Sampler`]: one relaxed `fetch_add` decides whether this call pays
//! for clock reads and tallies. At `1/64` the steady-state cost on the
//! hot path is a single uncontended atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Admits every `N`-th call (the first call is always admitted, so short
/// runs still produce data).
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    tick: AtomicU64,
}

impl Sampler {
    /// A sampler admitting one call in `every` (0 is treated as 1:
    /// admit everything).
    pub const fn new(every: u64) -> Self {
        Sampler {
            every: if every == 0 { 1 } else { every },
            tick: AtomicU64::new(0),
        }
    }

    /// True when this call should be profiled.
    #[inline]
    pub fn sample(&self) -> bool {
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// Calls admitted so far out of `total` ticks: `(admitted, total)`.
    pub fn progress(&self) -> (u64, u64) {
        let total = self.tick.load(Ordering::Relaxed);
        (total.div_ceil(self.every), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_one_in_n() {
        let s = Sampler::new(4);
        let admitted = (0..12).filter(|_| s.sample()).count();
        assert_eq!(admitted, 3);
        assert_eq!(s.progress(), (3, 12));
    }

    #[test]
    fn first_call_always_admitted() {
        assert!(Sampler::new(1_000_000).sample());
        assert!(Sampler::new(0).sample());
    }
}
