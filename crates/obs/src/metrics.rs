//! Lock-free counters, gauges, and fixed-bucket histograms behind a
//! named registry.
//!
//! Hot paths ([`Counter::add`], [`Gauge::set`], [`Histogram::observe`])
//! are single relaxed atomic RMWs — safe to call from every worker
//! thread on every request. Registration hands out `Arc` handles so
//! callers hold their metrics directly and never touch the registry map
//! after startup; [`Registry::snapshot`] and [`Registry::to_ndjson`] walk
//! the map under its lock, off the request path.
//!
//! Histograms use caller-chosen inclusive upper bucket edges plus an
//! implicit unbounded overflow bucket, and track `count` and `sum` so
//! snapshots can report a mean alongside the distribution.

use crate::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const: usable in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A settable signed value (e.g. resident models, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (const: usable in statics).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: inclusive upper edges plus an overflow
/// bucket, with total count and sum.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper edge per bucket; `None` is the overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// A histogram over the given strictly increasing inclusive upper
    /// edges (an overflow bucket is appended automatically).
    ///
    /// # Panics
    ///
    /// Panics when `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The configured inclusive upper edges (overflow excluded).
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Records one observation: the first bucket whose edge is `>= v`,
    /// or the overflow bucket.
    #[inline]
    pub fn observe(&self, v: u64) {
        // Linear scan: stage histograms have ≤ 8 edges, and the scan is
        // branch-predictable; a binary search would cost more in practice.
        let idx = self
            .edges
            .iter()
            .position(|&edge| v <= edge)
            .unwrap_or(self.edges.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies every bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (self.edges.get(i).copied(), b.load(Ordering::Relaxed)))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A registered metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Registration is idempotent per name/type — asking again returns the
/// same handle — and name order in snapshots is deterministic
/// (lexicographic), so NDJSON output diffs cleanly.
#[derive(Default)]
pub struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry lock only ever means a panic mid-snapshot;
        // the map itself is always structurally sound.
        match self.map.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name`, creating it with `edges` on first use
    /// (later calls ignore `edges` and return the existing histogram).
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different type, or
    /// on invalid `edges` at first registration.
    pub fn histogram(&self, name: &str, edges: &[u64]) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(edges))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Every metric's current value, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.lock()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// One NDJSON line per metric:
    /// `{"metric":"...","type":"counter","value":N}` (histograms carry
    /// `buckets`/`count`/`sum`/`mean`).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            out.push_str("{\"metric\":");
            json_escape(&mut out, &name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(",\"type\":\"histogram\",\"buckets\":[");
                    for (i, (edge, count)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match edge {
                            Some(e) => out.push_str(&format!("{{\"le\":{e},\"count\":{count}}}")),
                            None => {
                                out.push_str(&format!("{{\"le\":\"inf\",\"count\":{count}}}"));
                            }
                        }
                    }
                    out.push_str(&format!(
                        "],\"count\":{},\"sum\":{},\"mean\":{:.1}}}",
                        h.count,
                        h.sum,
                        h.mean()
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_bucket_selection_is_inclusive() {
        let h = Histogram::new(&[10, 100]);
        h.observe(0);
        h.observe(10); // inclusive: lands in the first bucket
        h.observe(11);
        h.observe(100);
        h.observe(101); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(Some(10), 2), (Some(100), 2), (None, 1)]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 222);
        assert!((s.mean() - 44.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.add(3);
        assert_eq!(b.get(), 3);
        r.gauge("inflight").set(2);
        r.histogram("lat", &[1, 2]).observe(2);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["inflight", "lat", "requests"], "sorted");
        let text = r.to_ndjson();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"metric\":\"requests\",\"type\":\"counter\",\"value\":3"));
        assert!(text.contains("{\"le\":\"inf\",\"count\":0}"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn registry_rejects_type_confusion() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
