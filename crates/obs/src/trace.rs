//! Structured span tracing with a drainable ring-buffer sink.
//!
//! A [`Tracer`] records named spans — enter/exit pairs collapsed to
//! `(start_ns, dur_ns)` against the process monotonic epoch
//! ([`crate::now_ns`]) — tagged with a stable per-thread ordinal and a
//! global sequence number. Records land in a fixed-capacity ring buffer:
//! when full, the oldest records are overwritten and counted as
//! `dropped`, so the hot path never blocks on a slow consumer.
//!
//! Two recording styles:
//!
//! - scoped: [`Tracer::span`] returns a [`SpanGuard`] that records on
//!   drop — for code where the span brackets a lexical scope;
//! - explicit: [`Tracer::record`] takes `(name, start_ns, dur_ns)`
//!   directly — for stage breakdowns measured with plain `Instant`s and
//!   emitted later in canonical order (the serve loop does this so its
//!   five stage spans always appear as parse → lookup → eval → degrade →
//!   serialize regardless of measurement nesting).
//!
//! A disabled tracer ([`Tracer::set_enabled`]) skips the clock reads and
//! the ring push entirely; the guard becomes a no-op. This is how the
//! benches measure the observability layer's own overhead.

use crate::{json_escape, now_ns};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static so recording never allocates for the label).
    pub name: &'static str,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Stable ordinal of the recording thread (not the OS tid).
    pub thread: u64,
    /// Global record sequence number (drain order tie-breaker).
    pub seq: u64,
}

impl SpanRecord {
    /// The record as one NDJSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"span\":");
        json_escape(&mut s, self.name);
        s.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{},\"thread\":{},\"seq\":{}}}",
            self.start_ns, self.dur_ns, self.thread, self.seq
        ));
        s
    }
}

/// Stable small ordinal for the current thread.
///
/// `std::thread::ThreadId` has no stable integer accessor, so threads
/// draw one from a process counter the first time they record.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

struct Ring {
    buf: VecDeque<SpanRecord>,
    cap: usize,
}

/// The span sink: bounded, overwriting, drainable.
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// A tracer holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Tracer {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap),
                cap,
            }),
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Off is a true no-op path: no clock
    /// reads, no locking.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records cumulatively overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opens a scoped span; the guard records on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some((self, name, now_ns())),
        }
    }

    /// Records one completed span explicitly.
    pub fn record(&self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if !self.enabled() {
            return;
        }
        let rec = SpanRecord {
            name,
            start_ns,
            dur_ns,
            thread: thread_ordinal(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        let Ok(mut ring) = self.ring.lock() else {
            return; // poisoned: a panicking recorder loses its span, nothing else
        };
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(rec);
    }

    /// Removes and returns every buffered record, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match self.ring.lock() {
            Ok(mut ring) => ring.buf.drain(..).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Drains the buffer as NDJSON, one record per line (possibly empty).
    pub fn drain_ndjson(&self) -> String {
        let mut out = String::new();
        for rec in self.drain() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

/// Records its span on drop; a no-op when the tracer was disabled.
pub struct SpanGuard<'t> {
    inner: Option<(&'t Tracer, &'static str, u64)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((tracer, name, start)) = self.inner.take() {
            tracer.record(name, start, now_ns().saturating_sub(start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_spans_record_in_order() {
        let t = Tracer::new(16);
        {
            let _a = t.span("outer");
            let _b = t.span("inner");
        } // inner drops first
        let recs = t.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[1].name, "outer");
        assert!(recs[0].seq < recs[1].seq);
        assert!(recs[1].start_ns <= recs[0].start_ns);
        assert!(t.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5 {
            t.record(["a", "b", "c", "d", "e"][i], i as u64, 1);
        }
        assert_eq!(t.dropped(), 2);
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(names, ["c", "d", "e"]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        {
            let _g = t.span("ghost");
        }
        t.record("ghost", 0, 1);
        assert!(t.drain().is_empty());
        t.set_enabled(true);
        t.record("real", 0, 1);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn ndjson_lines_parse_shape() {
        let t = Tracer::new(4);
        t.record("parse", 10, 20);
        let text = t.drain_ndjson();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"span\":\"parse\""), "{line}");
        assert!(line.contains("\"start_ns\":10"));
        assert!(line.contains("\"dur_ns\":20"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let main = thread_ordinal();
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(main, other);
        assert_eq!(main, thread_ordinal(), "stable per thread");
    }
}
