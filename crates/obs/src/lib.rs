//! Observability substrate for the AWEsymbolic stack.
//!
//! The paper's pitch is microsecond evaluation; this crate exists to keep
//! that claim *visible* as the serving stack grows. It deliberately has
//! zero dependencies (not even the vendored serde stand-ins) so every
//! crate in the workspace — down to the symbolic tape evaluator — can
//! depend on it without cycles:
//!
//! - [`trace`]: structured span tracing. A [`trace::Tracer`] timestamps
//!   span enter/exit against a process-wide monotonic epoch, tags each
//!   record with a stable thread ordinal, and stores records in a
//!   fixed-capacity ring buffer that can be drained as NDJSON.
//! - [`metrics`]: a named registry of [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and fixed-bucket [`metrics::Histogram`]s. The
//!   hot paths are single relaxed atomic RMWs; registration and snapshots
//!   take a lock but happen off the request path.
//! - [`sample`]: [`sample::Sampler`], the cheap `1/N` guard that keeps
//!   always-compiled profiling hooks (no feature gates) out of the hot
//!   path's way.
//!
//! JSON is produced by a tiny built-in encoder ([`json_escape`]) so the
//! crate stays dependency-free; the output is plain NDJSON any tool can
//! ingest.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod metrics;
pub mod sample;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry};
pub use sample::Sampler;
pub use trace::{SpanGuard, SpanRecord, Tracer};

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic epoch (first call wins).
///
/// All span timestamps share this epoch, so records from different
/// threads and tracers order consistently.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
///
/// Handles the escapes NDJSON consumers care about: quotes, backslashes,
/// and control characters (as `\u00XX`).
pub fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn json_escape_covers_specials() {
        let mut s = String::new();
        json_escape(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
