//! Gate-chain timing models: a path of logic stages, each a linearized RC
//! driver/interconnect/load segment, compiled to per-stage analytic delay
//! tapes and composed into a single path-delay function over shared
//! process symbols.
//!
//! This is the "Symbolic Timing Analysis of Digital Circuits Using
//! Analytic Delay Functions" workload mapped onto AWEsymbolic: each stage
//! becomes a [`awesym_circuit::generators::gate_stage`] circuit whose
//! driver resistance and load capacitance carry symbols, compiled once via
//! the partition/symbolic/AWE pipeline (`symbolic::opt`-optimized tape),
//! and evaluated millions of times by the streaming Monte Carlo engine.
//!
//! ## Process-variation model
//!
//! Every sample draws, in a pinned order from the block's [`BlockRng`]:
//!
//! 1. `g_r`, `g_c` — **global** (chip-wide) log-normal factors shared by
//!    every stage's driver resistance / load capacitance;
//! 2. per stage, in path order: `l_r`, `l_c` — **local** (per-gate)
//!    log-normal factors.
//!
//! Stage `i` is then evaluated at `(Rdrv_i · g_r · l_r, Cload_i · g_c ·
//! l_c)`, and the path delay is the sum of per-stage 50 %-delay metrics
//! computed from each stage's compiled moments.

use crate::sample::BlockRng;
use crate::{BlockSpec, BlockWorker, McTask};
use awesym_circuit::generators::gate_stage;
use awesym_partition::{CompiledModel, ModelOptions, PartitionError, SymbolBinding};
use awesym_symbolic::Evaluator;

/// Which moment-based 50 %-delay metric each stage contributes.
///
/// See `awesym_awe::delay_estimates` for the family; the streaming engine
/// recomputes the chosen metric inline from the tape's moment outputs so
/// the per-sample cost stays a handful of flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DelayMetric {
    /// `ln2 · (−m₁)` — the step-delay Elmore heuristic. Cheapest.
    Elmore,
    /// `ln2 · m₁²/√m₂` (D2M), falling back to Elmore where `m₂ ≤ 0`.
    /// The default: markedly better than Elmore near resistance-dominated
    /// nodes at the same per-sample cost class.
    D2m,
    /// 50 % crossing of the two-pole reduced model (full Padé + Newton
    /// solve per stage per sample) — the accuracy reference, roughly an
    /// order of magnitude slower than the closed-form metrics.
    TwoPole,
}

impl std::str::FromStr for DelayMetric {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "elmore" => Ok(DelayMetric::Elmore),
            "d2m" => Ok(DelayMetric::D2m),
            "two-pole" | "two_pole" => Ok(DelayMetric::TwoPole),
            other => Err(format!(
                "unknown metric '{other}' (expected elmore|d2m|two-pole)"
            )),
        }
    }
}

/// One logic stage of a path: linearized driver, lumped interconnect,
/// receiver load, plus the local variation sigmas.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSpec {
    /// Stage name (reported in the chain summary).
    pub name: String,
    /// Driver on-resistance (Ω).
    pub rdrv: f64,
    /// Lumped wire segments.
    pub segments: usize,
    /// Total wire resistance (Ω).
    pub r_wire: f64,
    /// Total wire-to-ground capacitance (F).
    pub c_wire: f64,
    /// Receiver input capacitance (F).
    pub cload: f64,
    /// Local log-normal sigma on the driver resistance.
    pub sigma_rdrv: f64,
    /// Local log-normal sigma on the load capacitance.
    pub sigma_cload: f64,
}

/// A full path specification: the stages plus the chip-wide variation
/// terms and modeling knobs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChainSpec {
    /// Stages in path order.
    pub stages: Vec<StageSpec>,
    /// Global log-normal sigma shared by every stage's driver resistance.
    pub sigma_global_r: f64,
    /// Global log-normal sigma shared by every stage's load capacitance.
    pub sigma_global_c: f64,
    /// AWE model order per stage (2 matches the paper's workhorse order).
    pub order: usize,
    /// Per-stage delay metric.
    pub metric: DelayMetric,
}

impl ChainSpec {
    /// A uniform `n`-stage chain with early-90s-flavored stage constants
    /// (120 Ω drivers, 80 Ω / 0.4 pF wires over 8 segments, 25 fF loads)
    /// and 8 % local / 5 % global sigmas — the default CLI and benchmark
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one stage");
        ChainSpec {
            stages: (0..n)
                .map(|i| StageSpec {
                    name: format!("stage{i}"),
                    rdrv: 120.0,
                    segments: 8,
                    r_wire: 80.0,
                    c_wire: 0.4e-12,
                    cload: 25e-15,
                    sigma_rdrv: 0.08,
                    sigma_cload: 0.08,
                })
                .collect(),
            sigma_global_r: 0.05,
            sigma_global_c: 0.05,
            order: 2,
            metric: DelayMetric::D2m,
        }
    }
}

/// A compiled stage: the optimized moment tape plus its nominal symbol
/// values and sigmas.
#[derive(Debug, Clone)]
pub struct CompiledStage {
    /// Stage name from the spec.
    pub name: String,
    /// Compiled symbolic model over `[rdrv, cload]`.
    pub model: CompiledModel,
    /// Nominal `(rdrv, cload)`.
    pub nominal: [f64; 2],
    /// Local `(sigma_rdrv, sigma_cload)`.
    pub sigma: [f64; 2],
}

/// The composed path-delay function: per-stage compiled tapes sharing the
/// global process symbols, plus everything the streaming engine needs to
/// turn a `(seed, block)` pair into a block of path delays.
#[derive(Debug, Clone)]
pub struct GateChain {
    spec: ChainSpec,
    stages: Vec<CompiledStage>,
    nominal_delay: f64,
}

impl GateChain {
    /// Builds each stage's circuit, binds `rdrv`/`cload` symbols, and
    /// compiles the per-stage moment tapes (shared-subexpression
    /// optimized, `symbolic::opt` full pipeline).
    ///
    /// # Errors
    ///
    /// Propagates model-compilation failures; rejects an empty spec or a
    /// stage whose nominal delay metric is not finite and positive.
    pub fn compile(spec: &ChainSpec) -> Result<Self, PartitionError> {
        if spec.stages.is_empty() {
            return Err(PartitionError::BadBinding {
                what: "chain has no stages".into(),
            });
        }
        let mut stages = Vec::with_capacity(spec.stages.len());
        let mut nominal_delay = 0.0;
        for s in &spec.stages {
            let w = gate_stage(s.rdrv, s.segments, s.r_wire, s.c_wire, s.cload);
            let rdrv = w.circuit.find("Rdrv").expect("gate_stage names Rdrv");
            let cload = w.circuit.find("Cload").expect("gate_stage names Cload");
            let bindings = [
                SymbolBinding::resistance("rdrv", vec![rdrv]),
                SymbolBinding::capacitance("cload", vec![cload]),
            ];
            let model = CompiledModel::build_with_options(
                &w.circuit,
                w.input,
                w.output,
                &bindings,
                ModelOptions::order(spec.order),
            )?;
            let m = model.eval_moments(&[s.rdrv, s.cload]);
            let d = stage_delay(&m, spec.metric);
            if !(d.is_finite() && d > 0.0) {
                return Err(PartitionError::BadBinding {
                    what: format!("stage '{}' has no valid nominal delay ({d})", s.name),
                });
            }
            nominal_delay += d;
            stages.push(CompiledStage {
                name: s.name.clone(),
                model,
                nominal: [s.rdrv, s.cload],
                sigma: [s.sigma_rdrv, s.sigma_cload],
            });
        }
        Ok(GateChain {
            spec: spec.clone(),
            stages,
            nominal_delay,
        })
    }

    /// The spec this chain was compiled from.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    /// The compiled stages, in path order.
    pub fn stages(&self) -> &[CompiledStage] {
        &self.stages
    }

    /// Path delay with every variation factor at its median (sum of
    /// per-stage nominal metrics) — the natural center for the quantile
    /// grid and the deadline default.
    pub fn nominal_delay(&self) -> f64 {
        self.nominal_delay
    }

    /// Total optimized tape instructions across stages.
    pub fn op_count(&self) -> usize {
        self.stages.iter().map(|s| s.model.op_count()).sum()
    }

    /// Path delay of one concrete sample given its variation factors —
    /// the scalar reference the streaming engine's batch path must match
    /// bit for bit (used by tests).
    pub fn sample_delay(&self, g: [f64; 2], locals: &[[f64; 2]]) -> f64 {
        assert_eq!(locals.len(), self.stages.len(), "one local pair per stage");
        let mut total = 0.0;
        for (stage, l) in self.stages.iter().zip(locals) {
            let vals = [
                stage.nominal[0] * g[0] * l[0],
                stage.nominal[1] * g[1] * l[1],
            ];
            let m = stage.model.eval_moments(&vals);
            total += stage_delay(&m, self.spec.metric);
        }
        total
    }
}

/// The chosen 50 %-delay metric from one stage's moment vector. Returns
/// NaN when the metric cannot be formed — the engine's invalid-sample
/// sentinel.
#[inline]
pub fn stage_delay(m: &[f64], metric: DelayMetric) -> f64 {
    let ln2 = std::f64::consts::LN_2;
    let elmore = -m[1];
    match metric {
        DelayMetric::Elmore => ln2 * elmore,
        DelayMetric::D2m => {
            if m.len() >= 3 && m[2] > 0.0 {
                ln2 * m[1] * m[1] / m[2].sqrt()
            } else {
                ln2 * elmore
            }
        }
        DelayMetric::TwoPole => awesym_awe::delay_estimates(m)
            .ok()
            .and_then(|d| d.two_pole)
            .unwrap_or(f64::NAN),
    }
}

/// Per-worker state for a [`GateChain`] run: one [`Evaluator`] per stage
/// (owned scratch, reused across every block the worker processes) plus
/// the SoA point/moment buffers.
pub struct ChainWorker<'a> {
    chain: &'a GateChain,
    evals: Vec<Evaluator<'a>>,
    /// Per stage: the block's symbol points (`count × 2`).
    points: Vec<Vec<Vec<f64>>>,
    moments: Vec<f64>,
}

impl<'a> ChainWorker<'a> {
    fn new(chain: &'a GateChain) -> Self {
        ChainWorker {
            evals: chain.stages.iter().map(|s| s.model.evaluator()).collect(),
            points: vec![Vec::new(); chain.stages.len()],
            moments: Vec::new(),
            chain,
        }
    }
}

impl BlockWorker for ChainWorker<'_> {
    fn run_block(&mut self, block: BlockSpec, out: &mut Vec<f64>) {
        let chain = self.chain;
        let n_stages = chain.stages.len();
        let count = block.count;
        for pts in &mut self.points {
            pts.resize_with(count, || vec![0.0; 2]);
        }
        // Draw order (per sample): global pair, then each stage's local
        // pair in path order. Pinned — see module docs.
        let mut rng = BlockRng::new(block.seed, block.index);
        for j in 0..count {
            let g_r = rng.log_normal(chain.spec.sigma_global_r);
            let g_c = rng.log_normal(chain.spec.sigma_global_c);
            for (s, stage) in chain.stages.iter().enumerate() {
                let l_r = rng.log_normal(stage.sigma[0]);
                let l_c = rng.log_normal(stage.sigma[1]);
                let p = &mut self.points[s][j];
                p[0] = stage.nominal[0] * g_r * l_r;
                p[1] = stage.nominal[1] * g_c * l_c;
            }
        }
        out.clear();
        out.resize(count, 0.0);
        for s in 0..n_stages {
            let ev = &self.evals[s];
            let n_out = ev.n_outputs();
            self.moments.resize(count * n_out, 0.0);
            ev.eval_batch(&self.points[s][..count], &mut self.moments);
            for (j, o) in out.iter_mut().enumerate() {
                let m = &self.moments[j * n_out..(j + 1) * n_out];
                // NaN from any stage poisons the sample's sum, which the
                // accumulator then counts as invalid.
                *o += stage_delay(m, chain.spec.metric);
            }
        }
    }
}

impl McTask for GateChain {
    type Worker<'a> = ChainWorker<'a>;
    fn make_worker(&self) -> ChainWorker<'_> {
        ChainWorker::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ChainSpec {
        let mut spec = ChainSpec::uniform(3);
        for s in &mut spec.stages {
            s.segments = 2;
        }
        spec
    }

    #[test]
    fn compile_and_nominal_delay() {
        let chain = GateChain::compile(&tiny_spec()).unwrap();
        assert_eq!(chain.stages().len(), 3);
        assert!(chain.nominal_delay() > 0.0);
        assert!(chain.op_count() > 0);
        // Uniform chain: nominal = 3 × single-stage delay.
        let single = GateChain::compile(&ChainSpec {
            stages: tiny_spec().stages[..1].to_vec(),
            ..tiny_spec()
        })
        .unwrap();
        let ratio = chain.nominal_delay() / single.nominal_delay();
        assert!((ratio - 3.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn empty_chain_rejected() {
        let spec = ChainSpec {
            stages: Vec::new(),
            ..ChainSpec::uniform(1)
        };
        assert!(GateChain::compile(&spec).is_err());
    }

    #[test]
    fn block_worker_matches_scalar_reference() {
        let chain = GateChain::compile(&tiny_spec()).unwrap();
        let mut worker = chain.make_worker();
        let block = BlockSpec {
            index: 5,
            count: 23,
            seed: 0xFACE,
        };
        let mut out = Vec::new();
        worker.run_block(block, &mut out);
        assert_eq!(out.len(), 23);
        // Re-derive each sample with the scalar path from the same stream.
        let mut rng = BlockRng::new(0xFACE, 5);
        for (j, &batch) in out.iter().enumerate() {
            let g = [
                rng.log_normal(chain.spec().sigma_global_r),
                rng.log_normal(chain.spec().sigma_global_c),
            ];
            let locals: Vec<[f64; 2]> = chain
                .stages()
                .iter()
                .map(|s| [rng.log_normal(s.sigma[0]), rng.log_normal(s.sigma[1])])
                .collect();
            let scalar = chain.sample_delay(g, &locals);
            assert_eq!(batch, scalar, "sample {j}");
        }
    }

    #[test]
    fn metrics_order_sanely() {
        let chain_d2m = GateChain::compile(&tiny_spec()).unwrap();
        let spec_elm = ChainSpec {
            metric: DelayMetric::Elmore,
            ..tiny_spec()
        };
        let chain_elm = GateChain::compile(&spec_elm).unwrap();
        let spec_tp = ChainSpec {
            metric: DelayMetric::TwoPole,
            ..tiny_spec()
        };
        let chain_tp = GateChain::compile(&spec_tp).unwrap();
        // The three metrics estimate the same physical 50 % delay, so they
        // must agree to within tens of percent on a plain RC stage. (For a
        // single pole D2M equals ln2·Elmore exactly; distributed RC pushes
        // D2M slightly above it, m₂ < m₁².)
        let (d_tp, d_d2m, d_elm) = (
            chain_tp.nominal_delay(),
            chain_d2m.nominal_delay(),
            chain_elm.nominal_delay(),
        );
        assert!(d_tp > 0.0 && d_d2m > 0.0 && d_elm > 0.0);
        assert!(
            (d_d2m / d_elm - 1.0).abs() < 0.35,
            "d2m {d_d2m} vs elmore {d_elm}"
        );
        assert!(
            (d_d2m / d_tp - 1.0).abs() < 0.35,
            "d2m {d_d2m} vs tp {d_tp}"
        );
    }

    #[test]
    fn metric_parse() {
        assert_eq!("d2m".parse::<DelayMetric>().unwrap(), DelayMetric::D2m);
        assert_eq!(
            "two-pole".parse::<DelayMetric>().unwrap(),
            DelayMetric::TwoPole
        );
        assert!("bogus".parse::<DelayMetric>().is_err());
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = tiny_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ChainSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
