//! # awesym-timing
//!
//! Symbolic gate-chain timing analysis and a streaming Monte Carlo yield
//! engine on top of the AWEsymbolic compiled-model stack.
//!
//! The crate splits into four layers:
//!
//! - [`sample`] — counter-based per-block RNG ([`sample::BlockRng`]):
//!   `(seed, block_index)` fully determines every draw, so results never
//!   depend on thread scheduling;
//! - [`accum`] — merge-order-invariant online statistics
//!   ([`accum::YieldAccumulator`]): Welford moments via per-block partials
//!   folded in canonical order, fixed log-grid quantiles, exact
//!   yield/invalid counters — O(1) memory in the sample count;
//! - [`chain`] — the timing model ([`chain::GateChain`]): each logic stage
//!   compiles to an optimized moment tape over `rdrv`/`cload` symbols, and
//!   the path delay composes per-stage 50 %-delay metrics under shared
//!   global + per-stage process variation;
//! - [`engine`] — the persistent-pool streaming engine
//!   ([`engine::McEngine`]): threads spawn once, steal whole blocks from an
//!   atomic counter, drive the SoA batch evaluator, and deposit
//!   accumulators that merge bit-identically at any worker count.
//!
//! See `docs/timing.md` for the model, symbol conventions, the determinism
//! guarantee, and CLI usage (`awesym timing`).
//!
//! ```
//! use awesym_timing::{ChainSpec, GateChain, McConfig, McEngine, QuantileGrid};
//! use std::sync::Arc;
//!
//! let chain = GateChain::compile(&ChainSpec::uniform(2)).unwrap();
//! let grid = QuantileGrid::around(chain.nominal_delay(), 64.0, 512);
//! let deadline = 1.25 * chain.nominal_delay();
//! let registry = awesym_obs::Registry::new();
//! let engine = McEngine::new(Arc::new(chain), 2, &registry);
//! let report = engine.run(&McConfig::new(10_000, 42, grid).with_deadline(deadline));
//! assert_eq!(report.summary.samples, 10_000);
//! assert!(report.summary.yield_fraction.unwrap() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod chain;
pub mod engine;
pub mod sample;

pub use accum::{BlockPartial, QuantileGrid, Summary, Welford, YieldAccumulator};
pub use chain::{ChainSpec, CompiledStage, DelayMetric, GateChain, StageSpec};
pub use engine::{BlockSpec, BlockWorker, McConfig, McEngine, McReport, McTask};
pub use sample::BlockRng;
